//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro, `prop_assert*` / `prop_assume!`, strategies built from ranges,
//! [`strategy::Just`], tuples, `prop_oneof!`, [`collection::vec`],
//! [`option::weighted`], `any::<bool>()`, and the `prop_map` /
//! `prop_flat_map` combinators.
//!
//! Differences from upstream: cases are drawn from a fixed per-test seed (so
//! runs are deterministic), and failing cases are reported but **not
//! shrunk**.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then draws from a strategy derived from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union of the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.arms[rng.gen_range(0..self.arms.len())].new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for the types the workspace draws.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy returned by [`any`].
        type AnyStrategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::AnyStrategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::AnyStrategy {
        A::arbitrary()
    }

    /// Fair coin strategy backing `any::<bool>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type AnyStrategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty => $any:ident),*) => {$(
            /// Full-range integer strategy.
            #[derive(Debug, Clone, Copy)]
            pub struct $any;

            impl Strategy for $any {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }

            impl Arbitrary for $t {
                type AnyStrategy = $any;

                fn arbitrary() -> $any {
                    $any
                }
            }
        )*};
    }
    arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
                   i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Yields `Some` with the given probability, `None` otherwise.
    pub fn weighted<S: Strategy>(probability: f64, strategy: S) -> Weighted<S> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability {probability} not in [0, 1]"
        );
        Weighted {
            probability,
            strategy,
        }
    }

    /// See [`weighted`].
    pub struct Weighted<S> {
        probability: f64,
        strategy: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(self.probability) {
                Some(self.strategy.new_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! Configuration and plumbing used by the `proptest!` macro expansion.

    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::SmallRng;

    /// Per-block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion-failure error.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => f.write_str(reason),
            }
        }
    }

    /// Deterministic per-test RNG: FNV-1a over the test name seeds the
    /// stream, so every run draws the same cases.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategy = ($($strat,)+);
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::new_value(&__strategy, &mut __rng);
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(__e) = __outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} == {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    fn digits() -> impl Strategy<Value = u32> {
        (0u32..5).prop_flat_map(|hi| (Just(hi), 0u32..10).prop_map(|(hi, lo)| hi * 10 + lo))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_maps_compose(x in digits(), flip in any::<bool>()) {
            prop_assert!(x < 50, "x = {x}");
            let _ = flip;
        }

        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn oneof_draws_only_listed_values(r in prop_oneof![Just(54.0), Just(36.0), Just(6.0)]) {
            prop_assert!(r == 54.0 || r == 36.0 || r == 6.0);
        }

        #[test]
        fn weighted_option_obeys_extremes(
            always in crate::option::weighted(1.0, Just(1u8)),
            never in crate::option::weighted(0.0, Just(1u8)),
        ) {
            prop_assert_eq!(always, Some(1u8));
            prop_assert_eq!(never, None);
        }
    }

    #[test]
    fn draws_are_deterministic_per_test_name() {
        let s = (0u64..1000, 0u64..1000);
        let mut a = crate::test_runner::rng_for("fixed");
        let mut b = crate::test_runner::rng_for("fixed");
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
