//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde::Serialize` / `serde::Deserialize` traits
//! (which are JSON-tree based, see the vendored `serde` crate) for the shapes
//! the workspace actually uses: non-generic structs with named fields and
//! tuple structs. Single-field tuple structs serialize transparently as their
//! inner value, matching upstream serde's newtype behaviour.
//!
//! Parsing is done directly over `proc_macro::TokenStream` so the stub needs
//! neither `syn` nor `quote` (neither is available offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Fields of a parsed struct.
enum Shape {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
}

struct Struct {
    name: String,
    /// Lifetime parameters, e.g. `'a, 'b` (empty for non-generic structs).
    generics: String,
    shape: Shape,
}

impl Struct {
    /// `impl` header + self type, e.g. `impl<'a> $trait for Foo<'a>`.
    fn impl_header(&self, trait_path: &str) -> String {
        if self.generics.is_empty() {
            format!("impl {trait_path} for {}", self.name)
        } else {
            format!(
                "impl<{g}> {trait_path} for {}<{g}>",
                self.name,
                g = self.generics
            )
        }
    }
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, emit_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, emit_deserialize)
}

fn expand(input: TokenStream, emit: fn(&Struct) -> String) -> TokenStream {
    let code = match parse_struct(input) {
        Ok(s) => emit(&s),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("generated impl parses")
}

fn parse_struct(input: TokenStream) -> Result<Struct, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        _ => return Err("this serde stub derives structs only (no enums)".to_string()),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(name)) => {
            i += 1;
            name.to_string()
        }
        _ => return Err("expected a struct name".to_string()),
    };
    let mut generics = String::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                None => return Err("unclosed generics".to_string()),
                _ => {}
            }
            generics.push_str(&tokens[i].to_string());
            i += 1;
        }
        // Only lifetime parameters are supported: every comma-separated
        // param must be a `'ident` with no bounds.
        for param in generics.split(',') {
            let param = param.trim();
            if !param.starts_with('\'') || param.contains(':') {
                return Err(format!(
                    "this serde stub derives lifetime-only generics, found `{param}`"
                ));
            }
        }
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        _ => return Err("expected a struct body".to_string()),
    };
    Ok(Struct {
        name,
        generics,
        shape,
    })
}

/// Advances past any `#[...]` attributes (incl. doc comments) and an optional
/// `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(kw)) if kw.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Advances past a type, stopping at a top-level `,` or the end. Tracks
/// angle-bracket depth because generic arguments (`BTreeMap<String, V>`) keep
/// their commas at the same token-tree level.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(name)) => name.to_string(),
            None => break,
            Some(other) => return Err(format!("expected a field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        i += 1; // the `,` (or one past the end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1; // the `,` (or one past the end)
        count += 1;
    }
    count
}

fn emit_serialize(s: &Struct) -> String {
    let body = match &s.shape {
        Shape::Named(fields) => {
            let mut b = String::from("let mut m = serde::json::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "m.insert(String::from({f:?}), serde::Serialize::to_json(&self.{f}));\n"
                ));
            }
            b.push_str("serde::json::Value::Object(m)");
            b
        }
        // Newtype structs are transparent, like upstream serde.
        Shape::Tuple(1) => "serde::Serialize::to_json(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("serde::json::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "serde::json::Value::Null".to_string(),
    };
    format!(
        "{} {{\n\
         fn to_json(&self) -> serde::json::Value {{\n{body}\n}}\n}}",
        s.impl_header("serde::Serialize")
    )
}

fn emit_deserialize(s: &Struct) -> String {
    let name = &s.name;
    let body = match &s.shape {
        Shape::Named(fields) => {
            let mut b = format!(
                "let obj = value.as_object().ok_or_else(|| \
                 serde::json::FromJsonError::new(\"expected an object for {name}\"))?;\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&format!(
                    "{f}: serde::Deserialize::from_json(\
                     obj.get({f:?}).unwrap_or(&serde::json::Value::Null))\
                     .map_err(|e| e.in_field({f:?}))?,\n"
                ));
            }
            b.push_str("})");
            b
        }
        Shape::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_json(value)?))"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_json(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 serde::json::FromJsonError::new(\"expected an array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                 return Err(serde::json::FromJsonError::new(\"wrong arity for {name}\"));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Unit => format!("let _ = value; Ok({name})"),
    };
    format!(
        "{} {{\n\
         fn from_json(value: &serde::json::Value) -> \
         Result<Self, serde::json::FromJsonError> {{\n{body}\n}}\n}}",
        s.impl_header("serde::Deserialize")
    )
}
