//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::SmallRng`]
//! (xoshiro256++), [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is deterministic per seed (all workspace experiments remain
//! reproducible) but its stream intentionally makes no compatibility claim
//! with upstream `rand 0.8`.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}
float_range!(f32, f64);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is an absorbing fixed point for xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` for an empty slice.
        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let differs = (0..100).any(|_| a.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
