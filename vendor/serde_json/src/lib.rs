//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the JSON tree defined by the vendored `serde` stub
//! (`serde::json::Value`). The public functions mirror the upstream
//! signatures the workspace uses: [`to_value`], [`to_string`],
//! [`to_string_pretty`], and [`from_str`].

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::json::{Map, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::json::FromJsonError> for Error {
    fn from(e: serde::json::FromJsonError) -> Error {
        Error::new(e.to_string())
    }
}

/// Converts any [`serde::Serialize`] value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors the upstream signature.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors the upstream signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact_string())
}

/// Renders a value as pretty JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors the upstream signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Parses a JSON document into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = serde::json::parse(input)?;
    Ok(T::from_json(&value)?)
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string, to_string_pretty, to_value, Value};

    #[test]
    fn value_round_trip() {
        let v: Value = from_str(r#"{"x": 1, "y": [true, "s"]}"#).unwrap();
        assert_eq!(v["x"].as_u64(), Some(1));
        assert_eq!(v["y"][1].as_str(), Some("s"));
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = to_value(vec![1u32, 2]).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<f64> = from_str("[1, 2.5]").unwrap();
        assert_eq!(xs, vec![1.0, 2.5]);
        assert!(from_str::<Vec<f64>>("[1, \"no\"]").is_err());
    }
}
