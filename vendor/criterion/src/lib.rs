//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the bench sources compiling and producing useful numbers without
//! crates.io access: each benchmark runs a short warmup followed by
//! `sample_size` timed iterations and prints the mean per-iteration time.
//! There is no statistical analysis, outlier detection, or HTML report.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            label: name.to_string(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, name),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id.0),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `label/parameter`.
    pub fn new(label: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{label}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    label: String,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warmup call, then `sample_size` measured calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        let mean = start.elapsed() / self.sample_size as u32;
        println!(
            "{:<50} time: [{} per iter, {} samples]",
            self.label,
            format_duration(mean),
            self.sample_size
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_compose_labels() {
        let mut c = Criterion::default();
        let mut hits = 0;
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
            g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.bench_with_input(BenchmarkId::new("label", "p"), &1u8, |b, _| {
                hits += 1;
                b.iter(|| ())
            });
            g.finish();
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(format_duration(Duration::from_secs(4)), "4.00 s");
    }
}
