//! The JSON tree shared by the vendored `serde` and `serde_json` stubs.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: keys stay sorted, which makes rendered JSON
/// canonical per value (useful for content hashing).
pub type Map = BTreeMap<String, Value>;

/// A parsed JSON value.
///
/// Numbers are stored as `f64`; integers up to 2^53 round-trip exactly and
/// are rendered without a fractional part.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(Map),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The payload as a signed integer, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Renders compact JSON.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty JSON (two-space indent).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Object(map) => {
                let entries: Vec<(&String, &Value)> = map.iter().collect();
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (k, v) = entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity literal; fall back to null like the
        // tolerant mode of most encoders.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; missing keys and non-objects yield `Null`, matching
    /// `serde_json` semantics.
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access; out-of-range indices and non-arrays yield `Null`.
    fn index(&self, index: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

/// Shape mismatch reported by [`Deserialize`](crate::Deserialize).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromJsonError {
    message: String,
}

impl FromJsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> FromJsonError {
        FromJsonError {
            message: message.into(),
        }
    }

    /// Prefixes the message with a field path segment.
    #[must_use]
    pub fn in_field(self, field: &str) -> FromJsonError {
        FromJsonError {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for FromJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FromJsonError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`FromJsonError`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(input: &str) -> Result<Value, FromJsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> FromJsonError {
        FromJsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), FromJsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), FromJsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Value, FromJsonError> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, FromJsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, FromJsonError> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, FromJsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes to keep the common case cheap.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), FromJsonError> {
        let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect a following \uXXXX low half.
                    self.eat(b'\\')?;
                    self.eat(b'u')?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid surrogate pair"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, FromJsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, FromJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, Map, Value};

    #[test]
    fn round_trips_a_document() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true}, "s": "x\"\né", "n": null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_f64(), Some(-300.0));
        assert_eq!(v["b"]["nested"].as_bool(), Some(true));
        assert_eq!(v["s"].as_str(), Some("x\"\né"));
        assert!(v["n"].is_null());
        assert!(v["missing"].is_null());
        let again = parse(&v.to_compact_string()).unwrap();
        assert_eq!(v, again);
        let pretty = parse(&v.to_pretty_string()).unwrap();
        assert_eq!(v, pretty);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Number(27.0).to_compact_string(), "27");
        assert_eq!(Value::Number(16.2).to_compact_string(), "16.2");
        assert_eq!(Value::Number(-4.0).to_compact_string(), "-4");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn object_keys_are_sorted() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Number(1.0));
        m.insert("a".into(), Value::Number(2.0));
        assert_eq!(Value::Object(m).to_compact_string(), r#"{"a":2,"z":1}"#);
    }
}
