//! Offline stand-in for the `serde` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! drastically simplified serde: instead of the visitor-based
//! `Serializer`/`Deserializer` machinery, [`Serialize`] converts a value
//! straight to a [`json::Value`] tree and [`Deserialize`] reads one back.
//! `serde_json` (also vendored) renders and parses that tree. The `derive`
//! feature re-exports `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! proc-macros that target these traits, so downstream code keeps the
//! familiar `serde::Serialize` spelling.
//!
//! Only JSON is supported; that is the sole format the workspace uses.

#![forbid(unsafe_code)]

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types convertible to a JSON tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_json(&self) -> json::Value;
}

/// Types reconstructible from a JSON tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`json::FromJsonError`] when the value has the wrong shape.
    fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> json::Value {
        (**self).to_json()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

macro_rules! serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> json::Value {
                json::Value::Number(*self as f64)
            }
        }
    )*};
}
serialize_number!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for str {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> json::Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> json::Value {
        match self {
            Some(v) => v.to_json(),
            None => json::Value::Null,
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> json::Value {
                json::Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )*};
}
serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> json::Value {
        json::Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json(&self) -> json::Value {
        json::Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl Serialize for json::Value {
    fn to_json(&self) -> json::Value {
        self.clone()
    }
}

impl Deserialize for json::Value {
    fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
        Ok(value.clone())
    }
}

impl Deserialize for bool {
    fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
        value
            .as_bool()
            .ok_or_else(|| json::FromJsonError::new("expected a boolean"))
    }
}

impl Deserialize for String {
    fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| json::FromJsonError::new("expected a string"))
    }
}

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
                value
                    .as_f64()
                    .map(|n| n as $t)
                    .ok_or_else(|| json::FromJsonError::new("expected a number"))
            }
        }
    )*};
}
deserialize_float!(f32, f64);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| json::FromJsonError::new("expected a number"))?;
                if n.fract() != 0.0 {
                    return Err(json::FromJsonError::new("expected an integer"));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(json::FromJsonError::new("integer out of range"));
                }
                Ok(n as $t)
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
        value
            .as_array()
            .ok_or_else(|| json::FromJsonError::new("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
        match value {
            json::Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(value: &json::Value) -> Result<Self, json::FromJsonError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| json::FromJsonError::new("expected an array"))?;
                if items.len() != $len {
                    return Err(json::FromJsonError::new("tuple arity mismatch"));
                }
                Ok(($($t::from_json(&items[$n])?,)+))
            }
        }
    )*};
}
deserialize_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}
