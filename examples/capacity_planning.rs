//! Capacity planning with shadow prices: the Eq. 6 LP's dual values tell an
//! operator *which* background flow to move and *how much* it would help —
//! information the primal optimum alone does not expose.
//!
//! Run with `cargo run --release --example capacity_planning`.

use awb::core::{available_bandwidth, AvailableBandwidthOptions, Flow};
use awb::net::{LinkRateModel, Path, SinrModel, Topology};
use awb::phy::Phy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-hop backbone with two cross flows parked on different hops.
    let mut t = Topology::new();
    let backbone: Vec<_> = (0..5).map(|i| t.add_node(i as f64 * 70.0, 0.0)).collect();
    let mut hops = Vec::new();
    for w in backbone.windows(2) {
        hops.push(t.add_link(w[0], w[1])?);
    }
    let c1a = t.add_node(60.0, 90.0);
    let c1b = t.add_node(130.0, 90.0);
    let cross1 = t.add_link(c1a, c1b)?;
    let c2a = t.add_node(200.0, -90.0);
    let c2b = t.add_node(270.0, -90.0);
    let cross2 = t.add_link(c2a, c2b)?;
    let model = SinrModel::new(t, Phy::paper_default());

    let path = Path::new(model.topology(), hops.clone())?;
    let background = vec![
        Flow::new(Path::new(model.topology(), vec![cross1])?, 12.0)?,
        Flow::new(Path::new(model.topology(), vec![cross2])?, 4.0)?,
    ];

    let out = available_bandwidth(
        &model,
        &background,
        &path,
        &AvailableBandwidthOptions::default(),
    )?;
    println!(
        "backbone available bandwidth with both cross flows: {:.3} Mbps",
        out.bandwidth_mbps()
    );
    println!(
        "airtime shadow price: {:.3} Mbps per extra unit of schedulable time",
        out.airtime_shadow_price()
    );
    println!("\nbinding links (scarcity = Mbps gained per Mbps of demand relieved):");
    for (link, scarcity) in out.bottleneck_links() {
        let kind = if link == cross1 {
            "cross flow 1"
        } else if link == cross2 {
            "cross flow 2"
        } else {
            "backbone hop"
        };
        println!("  {link} ({kind}): {scarcity:.3}");
    }

    // Act on the analysis: relieve the most scarce *cross* link and compare.
    let most_scarce_cross = out
        .bottleneck_links()
        .into_iter()
        .find(|&(l, _)| l == cross1 || l == cross2);
    if let Some((victim, scarcity)) = most_scarce_cross {
        let relieved: Vec<Flow> = background
            .iter()
            .map(|f| {
                if f.path().contains(victim) {
                    f.with_demand((f.demand_mbps() - 2.0).max(0.0))
                        .expect("demand is valid")
                } else {
                    f.clone()
                }
            })
            .collect();
        let after = available_bandwidth(
            &model,
            &relieved,
            &path,
            &AvailableBandwidthOptions::default(),
        )?;
        println!(
            "\nmoving 2 Mbps off {victim}: {:.3} -> {:.3} Mbps (dual predicted ≈ +{:.3})",
            out.bandwidth_mbps(),
            after.bandwidth_mbps(),
            2.0 * scarcity
        );
    } else {
        println!("\nno cross flow binds; the backbone itself is the bottleneck");
    }
    let _ = model.max_alone_rate(hops[0]);
    Ok(())
}
