//! The paper's headline counterexample (§3.1/§5.1, Scenario II), as a
//! walk-through: why the classic clique constraint stops being an upper
//! bound once links may change rates over time.
//!
//! Run with `cargo run --example clique_invalidity`.

use awb::core::bounds::{
    clique_time_share, clique_upper_bound, equal_throughput_clique_bound, UpperBoundOptions,
};
use awb::core::{available_bandwidth, AvailableBandwidthOptions};
use awb::phy::Rate;
use awb::sets::RatedSet;
use awb::workloads::ScenarioTwo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s = ScenarioTwo::new();
    let m = s.model();
    let [l1, l2, l3, l4] = s.links();
    let r54 = Rate::from_mbps(54.0);
    let r36 = Rate::from_mbps(36.0);

    println!("Four-link chain; every link supports 36 or 54 Mbps alone.");
    println!("Any two of {{L1,L2,L3}} conflict, any two of {{L2,L3,L4}} conflict,");
    println!("and L1 conflicts with L4 only when L1 transmits at 54 Mbps.\n");

    // Fixed-rate reasoning: pick a rate vector, find its tightest clique.
    let all54: Vec<_> = [l1, l2, l3, l4].into_iter().map(|l| (l, r54)).collect();
    let bound54 = equal_throughput_clique_bound(m, &all54).expect("assignment is non-empty");
    println!("rate vector (54,54,54,54): clique bound = {bound54:.3} Mbps");
    let mixed = vec![(l1, r36), (l2, r54), (l3, r54), (l4, r54)];
    let bound36 = equal_throughput_clique_bound(m, &mixed).expect("assignment is non-empty");
    println!("rate vector (36,54,54,54): clique bound = {bound36:.3} Mbps");

    // Adaptive scheduling: the Eq. 6 LP over rate-coupled independent sets.
    let out = available_bandwidth(m, &[], &s.path(), &AvailableBandwidthOptions::default())?;
    let f = out.bandwidth_mbps();
    println!("\noptimal end-to-end throughput with link adaptation: {f:.3} Mbps");
    println!("witness schedule:\n{}\n", out.schedule());

    // The violation: at the optimum, both fixed-rate cliques exceed unit
    // time share.
    let c1: RatedSet = [l1, l2, l3, l4].into_iter().map(|l| (l, r54)).collect();
    let c2: RatedSet = vec![(l1, r36), (l2, r54), (l3, r54)].into_iter().collect();
    println!(
        "clique time shares at f = {f:.1}: C1 = {:.3} (> 1), C2 = {:.3} (> 1)",
        clique_time_share(&c1, |_| f),
        clique_time_share(&c2, |_| f),
    );
    println!("=> the clique constraint does NOT hold for the feasible vector.");

    // The corrected Eq. 9 bound mixes per-rate-vector clique polytopes and
    // stays above the optimum.
    let eq9 = clique_upper_bound(m, &[], &s.path(), &UpperBoundOptions::default())?;
    println!("\ncorrected Eq. 9 upper bound: {eq9:.3} Mbps (≥ {f:.1})");
    Ok(())
}
