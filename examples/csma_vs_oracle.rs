//! Scenario I live: a CSMA MAC's carrier-sensed view of the channel versus
//! the scheduling oracle, sweeping background load (§1/Fig. 1 of the paper).
//!
//! Run with `cargo run --release --example csma_vs_oracle`.

use awb::core::{available_bandwidth, AvailableBandwidthOptions};
use awb::estimate::{Estimator, Hop, IdleMap};
use awb::sim::{SimConfig, Simulator};
use awb::workloads::ScenarioOne;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let s = ScenarioOne::new();
    let m = s.model();
    println!("Scenario I: L1 ⊥ L2, both conflict with (and are heard by) L3.");
    println!("Background load λ on L1 and on L2; how much can L3 still carry?\n");
    println!("  λ   oracle (LP)  idle-schedule est.  CSMA-measured est.");
    for lambda in [0.1, 0.2, 0.3, 0.4, 0.5] {
        // Oracle: the Eq. 6 LP overlaps L1 and L2 perfectly.
        let truth = available_bandwidth(
            m,
            &s.background(lambda),
            &s.new_path(),
            &AvailableBandwidthOptions::default(),
        )?
        .bandwidth_mbps();

        // Idle-time estimate against the worst case: L1 and L2 scheduled in
        // disjoint slots, as a contention MAC tends to leave them.
        let idle = IdleMap::from_schedule(m, &s.naive_background_schedule(lambda));
        let hops = Hop::for_path(m, &idle, &s.new_path()).expect("L3 is live");
        let naive = Estimator::BottleneckNode.estimate(m, &hops);

        // Behavioural: run the CSMA simulator and feed the measured ratios
        // into the same estimator.
        let mut sim = Simulator::new(
            m,
            SimConfig {
                slots: 40_000,
                ..SimConfig::default()
            },
        );
        for flow in s.background(lambda) {
            sim.add_flow(flow.path().clone(), Some(flow.demand_mbps()));
        }
        let report = sim.run(m);
        let sim_idle = IdleMap::from_ratios(report.node_idle_ratio);
        let sim_hops = Hop::for_path(m, &sim_idle, &s.new_path()).expect("L3 is live");
        let measured = Estimator::BottleneckNode.estimate(m, &sim_hops);

        println!("{lambda:>5.2}  {truth:>10.2}  {naive:>18.2}  {measured:>18.2}");
    }
    println!("\nCarrier sensing cannot see that L1 and L2 *could* overlap: the");
    println!("estimates fall up to 2x below the true available bandwidth.");
    Ok(())
}
