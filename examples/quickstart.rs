//! Quickstart: build a topology, inspect rate-coupled independent sets, and
//! compute the available bandwidth of a path under background traffic.
//!
//! Run with `cargo run --example quickstart`.

use awb::core::{available_bandwidth, AvailableBandwidthOptions, Flow};
use awb::net::{LinkRateModel, Path, SinrModel, Topology};
use awb::phy::Phy;
use awb::sets::{enumerate_admissible, EnumerationOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A physical layout: five nodes in a line, 70 m apart — each hop
    //    decodes 36 Mbps alone under the paper's 802.11a model.
    let mut topology = Topology::new();
    let nodes: Vec<_> = (0..5)
        .map(|i| topology.add_node(i as f64 * 70.0, 0.0))
        .collect();
    let mut links = Vec::new();
    for w in nodes.windows(2) {
        links.push(topology.add_link(w[0], w[1])?);
    }
    // A cross-traffic link off to the side.
    let bg_a = topology.add_node(100.0, 120.0);
    let bg_b = topology.add_node(170.0, 120.0);
    let bg_link = topology.add_link(bg_a, bg_b)?;

    // 2. The radio model: log-distance path loss (exponent 4), the paper's
    //    rate table {54, 36, 18, 6} Mbps, calibrated noise floor.
    let model = SinrModel::new(topology, Phy::paper_default());
    for &l in links.iter().chain([&bg_link]) {
        let rate = model.max_alone_rate(l).expect("all hops are in range");
        println!("link {l}: {rate} alone");
    }

    // 3. Rate-coupled independent sets of the 4-hop path + the cross link:
    //    which links can transmit simultaneously, and at what rates?
    let mut universe = links.clone();
    universe.push(bg_link);
    let sets = enumerate_admissible(&model, &universe, &EnumerationOptions::default());
    println!("\n{} undominated concurrent-transmission sets:", sets.len());
    for s in &sets {
        println!("  {s}");
    }

    // 4. Available bandwidth of the 4-hop path while the cross link carries
    //    10 Mbps of background traffic (Eq. 6 of the paper).
    let path = Path::new(model.topology(), links)?;
    let bg_path = Path::new(model.topology(), vec![bg_link])?;
    let background = vec![Flow::new(bg_path, 10.0)?];
    let result = available_bandwidth(
        &model,
        &background,
        &path,
        &AvailableBandwidthOptions::default(),
    )?;
    println!(
        "\navailable bandwidth of the 4-hop path with 10 Mbps background: {:.3} Mbps",
        result.bandwidth_mbps()
    );
    println!(
        "optimal link scheduling achieving it:\n{}",
        result.schedule()
    );
    Ok(())
}
