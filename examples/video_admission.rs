//! On-demand video monitoring over a sensor field (the application the
//! paper's introduction motivates): camera nodes stream 2 Mbps video to a
//! sink across a multihop 802.11a mesh, and the network must decide which
//! streams it can admit.
//!
//! Compares the three routing metrics of §5.2 and shows the per-stream
//! admission decisions, then uses the §4 estimators the way a distributed
//! implementation would (no global oracle).
//!
//! Run with `cargo run --release --example video_admission`.

use awb::core::{feasibility, Schedule};
use awb::estimate::{Estimator, Hop, IdleMap};
use awb::routing::{admit_sequentially, AdmissionConfig, RoutingMetric};
use awb::workloads::{connected_pairs, RandomTopology, RandomTopologyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const STREAM_MBPS: f64 = 2.0;
    let rt = RandomTopology::generate(RandomTopologyConfig::default());
    let model = rt.model();
    let cameras = connected_pairs(model, 8, 2..=4, 5);
    println!(
        "sensor field: {} nodes, {} directed links, {} camera streams of {STREAM_MBPS} Mbps\n",
        model.topology().num_nodes(),
        model.topology().num_links(),
        cameras.len(),
    );

    for metric in RoutingMetric::ALL {
        let outcomes = admit_sequentially(
            model,
            &cameras,
            metric,
            &AdmissionConfig {
                demand_mbps: STREAM_MBPS,
                stop_on_first_failure: false,
                ..AdmissionConfig::default()
            },
        )?;
        let admitted = outcomes.iter().filter(|o| o.admitted).count();
        println!(
            "routing by {metric}: {admitted}/{} streams admitted",
            cameras.len()
        );
        for o in &outcomes {
            match (&o.path, o.admitted) {
                (Some(p), true) => println!(
                    "  camera {}: {} hops, {:.2} Mbps available — streaming",
                    o.index + 1,
                    p.len(),
                    o.available_mbps
                ),
                (Some(p), false) => println!(
                    "  camera {}: {} hops, {:.2} Mbps available — REJECTED",
                    o.index + 1,
                    p.len(),
                    o.available_mbps
                ),
                (None, _) => println!("  camera {}: unroutable", o.index + 1),
            }
        }
        println!();
    }

    // A distributed node cannot run the LP oracle; it estimates from carrier
    // sensing. Show what the conservative clique constraint (the paper's
    // recommended estimator) would report for one more stream after three
    // are admitted under average-e2eD.
    let outcomes = admit_sequentially(
        model,
        &cameras,
        RoutingMetric::AverageE2eDelay,
        &AdmissionConfig {
            demand_mbps: STREAM_MBPS,
            stop_on_first_failure: false,
            ..AdmissionConfig::default()
        },
    )?;
    let background: Vec<_> = outcomes
        .iter()
        .filter(|o| o.admitted)
        .take(3)
        .map(|o| {
            awb::core::Flow::new(
                o.path.clone().expect("admitted flows have paths"),
                STREAM_MBPS,
            )
            .expect("stream demand is valid")
        })
        .collect();
    let schedule = if background.is_empty() {
        Schedule::empty()
    } else {
        feasibility::min_airtime(model, &background)?.1
    };
    let idle = IdleMap::from_schedule(model, &schedule);
    if let Some(next) = outcomes.iter().find(|o| o.index >= 3 && o.path.is_some()) {
        let path = next.path.as_ref().expect("filtered on is_some");
        let hops = Hop::for_path(model, &idle, path).expect("routed paths are live");
        println!("distributed view for camera {}:", next.index + 1);
        for e in Estimator::ALL {
            println!("  {e}: {:.2} Mbps", e.estimate(model, &hops));
        }
        println!("  (the LP oracle says {:.2} Mbps)", next.available_mbps);
    }
    Ok(())
}
