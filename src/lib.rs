//! `awb` — available bandwidth in multirate and multihop wireless sensor
//! networks.
//!
//! This is the facade crate of the workspace reproducing Chen, Zhai & Fang,
//! *Available Bandwidth in Multirate and Multihop Wireless Sensor Networks*
//! (ICDCS 2009). It re-exports every subsystem crate under a stable prefix so
//! examples and downstream users can depend on a single crate.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end tour: build a topology,
//! enumerate rate-coupled independent sets, and compute the available
//! bandwidth of a path with background traffic via the Eq. 6 linear program.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use awb_core as core;
pub use awb_estimate as estimate;
pub use awb_lp as lp;
pub use awb_net as net;
pub use awb_phy as phy;
pub use awb_routing as routing;
pub use awb_sets as sets;
pub use awb_sim as sim;
pub use awb_workloads as workloads;
