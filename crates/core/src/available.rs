//! The §2.5 linear program (Eq. 6): maximum throughput of a new path under
//! background traffic.

use crate::error::CoreError;
use crate::flow::Flow;
use crate::schedule::Schedule;
use awb_lp::{Direction, Problem, Relation};
use awb_net::{LinkId, LinkRateModel, Path};
use awb_sets::{EnumerationOptions, RatedSet};

/// Which LP solve strategy [`available_bandwidth`] uses. Both reach the
/// same optimum (certified by LP duality); they differ in how the
/// independent-set columns are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverKind {
    /// Enumerate every admissible rate-coupled independent set up front and
    /// solve one LP over the full pool. Exponential in the number of links,
    /// but the pool doubles as an exhaustive witness — kept as the
    /// equivalence reference.
    #[default]
    FullEnumeration,
    /// Delayed column generation (see [`crate::colgen`]): a restricted
    /// master seeded with singletons plus a greedy cover, extended by a
    /// branch-and-bound pricing oracle until no column has positive reduced
    /// cost. Orders of magnitude faster on topologies whose maximal-set
    /// pool is large.
    ColumnGeneration,
}

/// How the column-generation pricing rounds drive the max-weight oracle.
///
/// Both modes converge to the same certified optimum: the exact
/// branch-and-bound search is always the convergence judge (a round only
/// terminates the loop after the exact oracle fails to price a column in),
/// and the final answer is re-solved canonically from the converged support,
/// so the choice affects *cost*, not the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PricingMode {
    /// Run a cheap greedy/local-search column constructor first and fall
    /// back to the exact branch-and-bound only when the heuristic column
    /// fails the reduced-cost test — the expensive search then runs roughly
    /// once per converged component instead of once per round.
    #[default]
    HeuristicFirst,
    /// Run the exact branch-and-bound every round (the original behavior);
    /// kept as the certification reference and for A/B benchmarking.
    ExactOnly,
}

/// Options for [`available_bandwidth`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailableBandwidthOptions {
    /// How to enumerate the independent-set pool (unused under
    /// [`SolverKind::ColumnGeneration`], which never enumerates).
    pub enumeration: EnumerationOptions,
    /// Schedule entries with a smaller time share are dropped from the
    /// returned witness.
    pub dust_epsilon: f64,
    /// Split the link universe into potential-conflict components and
    /// enumerate each separately (see [`crate::decomposition`]). Exact for
    /// pairwise models; slightly optimistic for additive-interference models
    /// (cross-component interference residue is ignored). Off by default.
    pub decompose: bool,
    /// Which solve strategy to use. Defaults to
    /// [`SolverKind::FullEnumeration`].
    pub solver: SolverKind,
    /// How column-generation pricing rounds drive the oracle (unused under
    /// [`SolverKind::FullEnumeration`]).
    pub pricing: PricingMode,
    /// Dual-stabilization smoothing factor in `(0, 1]` for the stage-B
    /// pricing weights: the heuristic proposal is steered by
    /// `α·duals + (1−α)·previous duals`, damping the dual oscillation that
    /// inflates column-generation round counts. `1.0` disables smoothing.
    /// Exactness is unaffected — the reduced-cost accept test and the exact
    /// fallback always use the raw duals. Ignored under
    /// [`PricingMode::ExactOnly`].
    pub stab_alpha: f64,
    /// Worker threads for per-conflict-component pricing and stage-A solves
    /// under column generation (`0` = all available cores). Answers are
    /// bit-identical for any value. Only pays off with `decompose: true` on
    /// multi-component universes.
    pub pricing_threads: usize,
    /// Per-component cap on the stage-B restricted master's column pool
    /// under column generation (`0` = unbounded). Past the cap, columns
    /// whose λ has never left the basis floor are dropped and the master is
    /// rebuilt, so long-lived sessions never accumulate unbounded masters.
    /// Exactness is unaffected — an evicted column the optimum still needs
    /// is simply priced back in — but the column-discovery trajectory (and
    /// hence low-order float bits of the answer in degenerate ties) can
    /// differ from the unbounded run. Peak pool size and eviction counts
    /// are surfaced in [`crate::ColgenStats`].
    pub column_pool_cap: usize,
}

impl Default for AvailableBandwidthOptions {
    fn default() -> Self {
        AvailableBandwidthOptions {
            enumeration: EnumerationOptions::default(),
            dust_epsilon: 1e-9,
            decompose: false,
            solver: SolverKind::default(),
            pricing: PricingMode::default(),
            stab_alpha: 0.5,
            pricing_threads: 1,
            column_pool_cap: 0,
        }
    }
}

/// Result of [`available_bandwidth`]: the optimum of Eq. 6 plus its
/// scheduling witness.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailableBandwidth {
    bandwidth_mbps: f64,
    schedule: Schedule,
    universe: Vec<LinkId>,
    num_sets: usize,
    /// Simplex pivots spent producing this result.
    lp_pivots: usize,
    /// Shadow price of the unit time budget (max over components when
    /// decomposed).
    airtime_dual: f64,
    /// Scarcity price per universe link: how much the optimum would improve
    /// per Mbps of demand removed from that link (0 for slack links).
    link_scarcity: Vec<f64>,
}

impl AvailableBandwidth {
    /// Assembles a result from already-extracted LP pieces (shared by the
    /// enumeration and column-generation solve paths).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        bandwidth_mbps: f64,
        schedule: Schedule,
        universe: Vec<LinkId>,
        num_sets: usize,
        lp_pivots: usize,
        airtime_dual: f64,
        link_scarcity: Vec<f64>,
    ) -> AvailableBandwidth {
        AvailableBandwidth {
            bandwidth_mbps,
            schedule,
            universe,
            num_sets,
            lp_pivots,
            airtime_dual,
            link_scarcity,
        }
    }

    /// The maximum additional throughput of the new path, in Mbps
    /// (`f_{K+1}` at the LP optimum).
    pub fn bandwidth_mbps(&self) -> f64 {
        self.bandwidth_mbps
    }

    /// The optimal link scheduling achieving the optimum — the
    /// `{(E_i, R_i*, λ_i)}` of Eq. 2, dust-filtered.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The link universe the LP was built over (union of all involved
    /// paths' links, sorted).
    pub fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    /// Number of independent-set columns in the LP that produced this
    /// result. Under [`SolverKind::FullEnumeration`] this is the size of the
    /// exhaustively enumerated pool; under [`SolverKind::ColumnGeneration`]
    /// it counts the columns actually present in the final restricted
    /// master — typically a small fraction of the full pool, and exactly
    /// what the solve paid for.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Total simplex pivots spent producing this result — one solve's worth
    /// under [`SolverKind::FullEnumeration`], the sum across every master
    /// (including warm re-optimizations) under
    /// [`SolverKind::ColumnGeneration`].
    pub fn lp_pivots(&self) -> usize {
        self.lp_pivots
    }

    /// Shadow price of the scheduling period: the Mbps the new flow would
    /// gain per additional unit of schedulable time (the dual of the
    /// `Σ λ ≤ 1` budget; the maximum over components when the LP was
    /// decomposed). Zero when time is not the binding resource.
    pub fn airtime_shadow_price(&self) -> f64 {
        self.airtime_dual
    }

    /// The scarcity price of `link`: the rate at which the optimum improves
    /// per Mbps of background demand removed from that link (the negated
    /// dual of its delivery constraint). `None` if the link is not in the
    /// universe; `Some(0.0)` for non-binding links.
    pub fn link_scarcity(&self, link: LinkId) -> Option<f64> {
        self.universe
            .binary_search(&link)
            .ok()
            .map(|i| self.link_scarcity[i])
    }

    /// Links whose delivery constraints bind at the optimum, most scarce
    /// first — the bottlenecks an operator would relieve first.
    pub fn bottleneck_links(&self) -> Vec<(LinkId, f64)> {
        let mut out: Vec<(LinkId, f64)> = self
            .universe
            .iter()
            .copied()
            .zip(self.link_scarcity.iter().copied())
            .filter(|&(_, s)| s > 1e-9)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

/// The union of all links on the background paths and the new path, sorted
/// and deduplicated — the exact universe [`available_bandwidth`] enumerates
/// over. Public so callers that pre-enumerate set pools (e.g. a caching
/// service feeding [`available_bandwidth_with_sets`]) reproduce it verbatim.
pub fn link_universe(background: &[Flow], new_path: &Path) -> Vec<LinkId> {
    let mut universe = Vec::new();
    link_universe_into(background, new_path, &mut universe);
    universe
}

/// [`link_universe`] into a caller-owned buffer — the allocation-free form
/// the session query path uses.
pub(crate) fn link_universe_into(background: &[Flow], new_path: &Path, out: &mut Vec<LinkId>) {
    out.clear();
    out.extend(
        background
            .iter()
            .flat_map(|f| f.path().links().iter().copied())
            .chain(new_path.links().iter().copied()),
    );
    out.sort_unstable();
    out.dedup();
}

/// Per-universe-link demand from the background flows, into a caller-owned
/// buffer (shared by the enumeration, decomposition, and colgen solve
/// paths).
pub(crate) fn demand_into(
    universe: &[LinkId],
    background: &[Flow],
    out: &mut Vec<f64>,
) -> Result<(), CoreError> {
    out.clear();
    out.resize(universe.len(), 0.0);
    for flow in background {
        for link in flow.path().links() {
            let idx = universe
                .binary_search(link)
                .map_err(|_| CoreError::Invariant("universe contains all path links"))?;
            out[idx] += flow.demand_mbps();
        }
    }
    Ok(())
}

/// Computes the available bandwidth of `new_path` given `background` flows
/// (§2.5, Eq. 6): enumerates the admissible rate-coupled independent sets of
/// the involved links and maximizes the new flow's throughput over their
/// time shares, subject to every background demand being delivered.
///
/// This is the one-shot form of [`crate::Session`]: it compiles a
/// [`crate::CompiledInstance`] for the query's link universe, answers the
/// single query, and discards the instance. Callers issuing many queries
/// against the same model should hold a [`crate::Session`] instead and let
/// it reuse the compiled instance across queries — the results are
/// bit-for-bit identical either way.
///
/// # Errors
///
/// [`CoreError::BackgroundInfeasible`] when the background demands alone
/// cannot be scheduled, [`CoreError::EmptyUniverse`] when no involved link
/// exists, and [`CoreError::Solver`] on numerical failure.
pub fn available_bandwidth<M: LinkRateModel>(
    model: &M,
    background: &[Flow],
    new_path: &Path,
    options: &AvailableBandwidthOptions,
) -> Result<AvailableBandwidth, CoreError> {
    crate::session::Session::new(model, *options).query(background, new_path)
}

/// Eq. 6 over independent components and their pre-enumerated pools: one
/// joint LP with a unit time budget *per component* (parallel components
/// schedule independently), whose witness schedules are superimposed
/// afterwards.
pub(crate) fn solve_decomposed_with_pools(
    pools: &[&[RatedSet]],
    components: &[Vec<LinkId>],
    universe: &[LinkId],
    demand: &[f64],
    new_path: &Path,
    dust_epsilon: f64,
) -> Result<AvailableBandwidth, CoreError> {
    let mut lp = Problem::new(Direction::Maximize);
    let f = lp.add_var("f", 1.0);
    let lambdas: Vec<Vec<_>> = pools
        .iter()
        .enumerate()
        .map(|(ci, pool)| {
            (0..pool.len())
                .map(|i| lp.add_var(format!("l{ci}_{i}"), 0.0))
                .collect()
        })
        .collect();
    let mut constraint_index = 0usize;
    let mut budget_rows = Vec::new();
    for vars in &lambdas {
        if vars.is_empty() {
            continue;
        }
        let budget: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&budget, Relation::Le, 1.0)?;
        budget_rows.push(constraint_index);
        constraint_index += 1;
    }
    let mut link_rows = vec![usize::MAX; universe.len()];
    for (ci, component) in components.iter().enumerate() {
        for &link in component {
            let idx = universe
                .binary_search(&link)
                .map_err(|_| CoreError::Invariant("component is a subset of the universe"))?;
            let mut terms: Vec<_> = pools[ci]
                .iter()
                .zip(&lambdas[ci])
                .filter_map(|(set, &var)| set.rate_of(link).map(|r| (var, r.as_mbps())))
                .collect();
            if new_path.contains(link) {
                terms.push((f, -1.0));
            }
            lp.add_constraint(&terms, Relation::Ge, demand[idx])?;
            link_rows[idx] = constraint_index;
            constraint_index += 1;
        }
    }
    let solution = lp.solve().map_err(CoreError::from)?;
    let mut parts = Vec::with_capacity(components.len());
    for (ci, pool) in pools.iter().enumerate() {
        let entries: Vec<(RatedSet, f64)> = pool
            .iter()
            .zip(&lambdas[ci])
            .map(|(set, &var)| (set.clone(), solution.value(var)))
            .filter(|(_, share)| *share > dust_epsilon)
            .collect();
        let total: f64 = entries.iter().map(|(_, s)| s).sum();
        let entries = if total > 1.0 {
            entries
                .into_iter()
                .map(|(s, share)| (s, share / total))
                .collect()
        } else {
            entries
        };
        parts.push(Schedule::new(entries));
    }
    let schedule = crate::decomposition::merge_parallel_schedules(&parts);
    let airtime_dual = budget_rows
        .iter()
        .map(|&i| solution.dual(i).max(0.0))
        .fold(0.0, f64::max);
    let link_scarcity: Vec<f64> = link_rows
        .iter()
        .map(|&row| {
            if row == usize::MAX {
                0.0
            } else {
                (-solution.dual(row)).max(0.0)
            }
        })
        .collect();
    Ok(AvailableBandwidth {
        bandwidth_mbps: solution.objective(),
        schedule,
        universe: universe.to_vec(),
        num_sets: pools.iter().map(|p| p.len()).sum(),
        lp_pivots: solution.pivots(),
        airtime_dual,
        link_scarcity,
    })
}

/// The **path capacity**: available bandwidth with no background traffic —
/// the quantity studied by the paper's reference \[1\] (Zhai & Fang,
/// ICNP'06) and the base case of Eq. 6.
///
/// # Errors
///
/// As [`available_bandwidth`] (background infeasibility cannot occur).
pub fn path_capacity<M: LinkRateModel>(
    model: &M,
    path: &Path,
) -> Result<AvailableBandwidth, CoreError> {
    available_bandwidth(model, &[], path, &AvailableBandwidthOptions::default())
}

/// Like [`available_bandwidth`], but over a caller-supplied pool of
/// independent sets.
///
/// Passing a *subset* of the admissible sets yields the §3.3 **lower
/// bounds**; passing the full pool recovers the exact value. The caller is
/// responsible for the sets being admissible under its model.
///
/// # Errors
///
/// As [`available_bandwidth`].
pub fn available_bandwidth_with_sets(
    sets: &[RatedSet],
    background: &[Flow],
    new_path: &Path,
    options: &AvailableBandwidthOptions,
) -> Result<AvailableBandwidth, CoreError> {
    let universe = link_universe(background, new_path);
    if universe.is_empty() {
        return Err(CoreError::EmptyUniverse);
    }
    let mut demand = Vec::new();
    demand_into(&universe, background, &mut demand)?;
    solve_over_sets(sets, &universe, &demand, new_path, options.dust_epsilon)
}

/// The single-component Eq. 6 LP over a prepared pool and demand vector —
/// the common kernel of the enumeration solve path and the warm session
/// query path.
pub(crate) fn solve_over_sets(
    sets: &[RatedSet],
    universe: &[LinkId],
    demand: &[f64],
    new_path: &Path,
    dust_epsilon: f64,
) -> Result<AvailableBandwidth, CoreError> {
    let mut lp = Problem::new(Direction::Maximize);
    let f = lp.add_var("f", 1.0);
    let lambdas: Vec<_> = (0..sets.len())
        .map(|i| lp.add_var(format!("lambda{i}"), 0.0))
        .collect();

    // Σ λ_α ≤ 1.
    let budget: Vec<_> = lambdas.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&budget, Relation::Le, 1.0)?;

    // Per link: Σ_α λ_α R_α[e] − f·I_e(new) ≥ Σ_k x_k I_e(P_k).
    for (idx, &link) in universe.iter().enumerate() {
        let mut terms: Vec<_> = sets
            .iter()
            .zip(&lambdas)
            .filter_map(|(set, &var)| set.rate_of(link).map(|r| (var, r.as_mbps())))
            .collect();
        if new_path.contains(link) {
            terms.push((f, -1.0));
        }
        lp.add_constraint(&terms, Relation::Ge, demand[idx])?;
    }

    let solution = lp.solve().map_err(CoreError::from)?;
    let entries: Vec<(RatedSet, f64)> = sets
        .iter()
        .zip(&lambdas)
        .map(|(set, &var)| (set.clone(), solution.value(var)))
        .filter(|(_, share)| *share > 0.0)
        .collect();
    // Clamp accumulated roundoff so Schedule's invariant holds.
    let total: f64 = entries.iter().map(|(_, s)| s).sum();
    let entries = if total > 1.0 {
        entries
            .into_iter()
            .map(|(s, share)| (s, share / total))
            .collect()
    } else {
        entries
    };
    let schedule = Schedule::new(entries).without_dust(dust_epsilon);
    // Constraint 0 is the budget; constraints 1.. are per-link deliveries
    // (>= demand): their duals are non-positive, the negation is the
    // scarcity price.
    let airtime_dual = solution.dual(0).max(0.0);
    let link_scarcity: Vec<f64> = (0..universe.len())
        .map(|i| (-solution.dual(1 + i)).max(0.0))
        .collect();
    Ok(AvailableBandwidth {
        bandwidth_mbps: solution.objective(),
        schedule,
        universe: universe.to_vec(),
        num_sets: sets.len(),
        lp_pivots: solution.pivots(),
        airtime_dual,
        link_scarcity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;
    use awb_sets::enumerate_admissible;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// `n` links in a row of disjoint node pairs; conflicts as declared.
    fn line_model(
        n: usize,
        rates: &[Rate],
        conflicts: &[(usize, usize)],
    ) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, rates);
        }
        for &(i, j) in conflicts {
            b = b.conflict_all(links[i], links[j]);
        }
        (b.build(), links)
    }

    /// A 2-hop relay: nodes a-b-c with links a->b, b->c that conflict.
    fn relay() -> (DeclarativeModel, Path) {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(10.0, 0.0);
        let c = t.add_node(20.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let bc = t.add_link(b, c).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[r(54.0)])
            .alone_rates(bc, &[r(54.0)])
            .conflict_all(ab, bc)
            .build();
        let p = Path::new(m.topology(), vec![ab, bc]).unwrap();
        (m, p)
    }

    #[test]
    fn lone_link_gets_full_rate() {
        let (m, links) = line_model(1, &[r(54.0)], &[]);
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let out = available_bandwidth(&m, &[], &p, &AvailableBandwidthOptions::default()).unwrap();
        assert!((out.bandwidth_mbps() - 54.0).abs() < 1e-7);
        assert!(out.schedule().is_valid(&m));
        assert_eq!(out.universe(), &links[..]);
    }

    #[test]
    fn two_hop_relay_halves_capacity() {
        let (m, p) = relay();
        let out = available_bandwidth(&m, &[], &p, &AvailableBandwidthOptions::default()).unwrap();
        assert!((out.bandwidth_mbps() - 27.0).abs() < 1e-7);
        // The witness actually delivers 27 Mbps on both hops.
        for &l in p.links() {
            assert!(out.schedule().link_throughput(l) >= 27.0 - 1e-7);
        }
    }

    #[test]
    fn background_reduces_available_bandwidth() {
        let (m, links) = line_model(2, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        for bg in [0.0, 13.5, 27.0, 40.5] {
            let background = vec![Flow::new(bg_path.clone(), bg).unwrap()];
            let out = available_bandwidth(
                &m,
                &background,
                &new_path,
                &AvailableBandwidthOptions::default(),
            )
            .unwrap();
            let expected = 54.0 - bg;
            assert!(
                (out.bandwidth_mbps() - expected).abs() < 1e-6,
                "bg {bg}: got {}",
                out.bandwidth_mbps()
            );
            // Background must still be delivered by the witness schedule.
            assert!(out.schedule().link_throughput(links[0]) >= bg - 1e-6);
        }
    }

    #[test]
    fn non_interfering_background_costs_nothing() {
        let (m, links) = line_model(2, &[r(54.0)], &[]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 50.0).unwrap()];
        let out = available_bandwidth(
            &m,
            &background,
            &new_path,
            &AvailableBandwidthOptions::default(),
        )
        .unwrap();
        assert!((out.bandwidth_mbps() - 54.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_background_is_reported() {
        let (m, links) = line_model(2, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 60.0).unwrap()]; // > 54
        let err = available_bandwidth(
            &m,
            &background,
            &new_path,
            &AvailableBandwidthOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, CoreError::BackgroundInfeasible);
    }

    #[test]
    fn dead_link_on_new_path_gives_zero() {
        let (m0, links) = line_model(2, &[r(54.0)], &[]);
        // Rebuild with links[1] dead.
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        b = b.alone_rates(links[0], &[r(54.0)]);
        let m = b.build();
        let p = Path::new(m.topology(), vec![links[1]]).unwrap();
        let out = available_bandwidth(&m, &[], &p, &AvailableBandwidthOptions::default()).unwrap();
        assert_eq!(out.bandwidth_mbps(), 0.0);
    }

    #[test]
    fn lower_bound_from_subset_of_sets() {
        let (m, p) = relay();
        let universe = link_universe(&[], &p);
        let all = enumerate_admissible(&m, &universe, &EnumerationOptions::default());
        let exact =
            available_bandwidth_with_sets(&all, &[], &p, &AvailableBandwidthOptions::default())
                .unwrap();
        // Restrict to sets containing only the first hop: f = 0 (second hop
        // starves).
        let first_only: Vec<RatedSet> = all
            .iter()
            .filter(|s| s.links().all(|l| l == p.links()[0]))
            .cloned()
            .collect();
        let lower = available_bandwidth_with_sets(
            &first_only,
            &[],
            &p,
            &AvailableBandwidthOptions::default(),
        )
        .unwrap();
        assert!(lower.bandwidth_mbps() <= exact.bandwidth_mbps() + 1e-9);
        assert_eq!(lower.bandwidth_mbps(), 0.0);
    }

    #[test]
    fn empty_universe_is_an_error() {
        // A path cannot be empty by construction, so exercise the
        // with-sets variant with an empty background and... the only way to
        // get an empty universe is an empty path, which Path forbids; so
        // this verifies link_universe is non-empty for any real input.
        let (m, p) = relay();
        assert!(!link_universe(&[], &p).is_empty());
        let _ = m;
    }

    #[test]
    fn shadow_prices_identify_the_bottleneck() {
        // Background saturates link 0, which conflicts with the new link 1:
        // link 0's delivery binds and the time budget is the scarce
        // resource.
        let (m, links) = line_model(2, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 27.0).unwrap()];
        let out = available_bandwidth(
            &m,
            &background,
            &new_path,
            &AvailableBandwidthOptions::default(),
        )
        .unwrap();
        // Removing 1 Mbps of background frees exactly 1 Mbps for the flow.
        assert!(
            (out.link_scarcity(links[0]).unwrap() - 1.0).abs() < 1e-6,
            "scarcity {:?}",
            out.link_scarcity(links[0])
        );
        // An extra unit of airtime would be worth the full 54 Mbps rate.
        assert!((out.airtime_shadow_price() - 54.0).abs() < 1e-6);
        let bn = out.bottleneck_links();
        assert!(bn.iter().any(|&(l, _)| l == links[0]));
    }

    #[test]
    fn slack_links_have_zero_scarcity() {
        // Non-interfering background: its link does not bind.
        let (m, links) = line_model(2, &[r(54.0)], &[]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 10.0).unwrap()];
        let out = available_bandwidth(
            &m,
            &background,
            &new_path,
            &AvailableBandwidthOptions::default(),
        )
        .unwrap();
        assert_eq!(out.link_scarcity(links[0]), Some(0.0));
        assert_eq!(out.link_scarcity(LinkId::from_index(99)), None);
        assert!(out.bottleneck_links().iter().all(|&(l, _)| l != links[0]));
    }

    #[test]
    fn shared_link_between_background_and_new_path() {
        // Background and the new flow share the single link: they split it.
        let (m, links) = line_model(1, &[r(54.0)], &[]);
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let background = vec![Flow::new(p.clone(), 20.0).unwrap()];
        let out = available_bandwidth(&m, &background, &p, &AvailableBandwidthOptions::default())
            .unwrap();
        assert!((out.bandwidth_mbps() - 34.0).abs() < 1e-6);
    }
}
