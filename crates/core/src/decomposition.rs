//! Conflict-component decomposition of the available-bandwidth LP.
//!
//! Links whose couples never conflict at *any* rate combination can be
//! scheduled completely independently: the admissible sets of the union are
//! exactly the unions of per-component admissible sets, and any family of
//! per-component schedules (each within a unit period) can be superimposed.
//! Decomposing the universe into connected components of the *potential
//! conflict* graph therefore turns one exponential enumeration into several
//! small ones.
//!
//! Exactness caveat: in pairwise models ([`awb_net::DeclarativeModel`]) this
//! is an identity. In the physical model, links in different components
//! still leak *some* additive interference into each other; treating them as
//! independent ignores that residue, so decomposed results can be slightly
//! optimistic. The decomposition is therefore opt-in
//! ([`AvailableBandwidthOptions::decompose`](crate::AvailableBandwidthOptions)).

use crate::schedule::Schedule;
use awb_net::{LinkId, LinkRateModel};
use awb_sets::RatedSet;

/// The symmetric potential-conflict adjacency of `universe` as per-row
/// bitsets: row `i` has bit `j` set iff **some** pair of alone rates of
/// `universe[i]` and `universe[j]` conflicts.
///
/// This is the pairwise half of [`potential_conflict_components`], split out
/// so that incremental recompilation (`apply_delta`) can recompute only the
/// rows of links a delta touched and splice them into a stored adjacency.
pub fn potential_conflict_adjacency<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
) -> Vec<Vec<u64>> {
    let n = universe.len();
    let words = n.div_ceil(64);
    let mut adj = vec![vec![0u64; words]; n];
    let rates: Vec<Vec<awb_phy::Rate>> = universe.iter().map(|&l| model.alone_rates(l)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            let conflicting = rates[i].iter().any(|&ra| {
                rates[j]
                    .iter()
                    .any(|&rb| model.conflicts((universe[i], ra), (universe[j], rb)))
            });
            if conflicting {
                adj[i][j / 64] |= 1 << (j % 64);
                adj[j][i / 64] |= 1 << (i % 64);
            }
        }
    }
    adj
}

/// Connected components of a potential-conflict adjacency (as produced by
/// [`potential_conflict_adjacency`]) over `universe`. Dead links form
/// singleton components.
///
/// Components are returned with their links sorted, ordered by smallest
/// member — the exact partition and ordering of
/// [`potential_conflict_components`].
pub fn components_from_adjacency(universe: &[LinkId], adjacency: &[Vec<u64>]) -> Vec<Vec<LinkId>> {
    let n = universe.len();
    assert_eq!(adjacency.len(), n, "adjacency rows must match universe");
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for (i, row) in adjacency.iter().enumerate() {
        for (w, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let j = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if j <= i {
                    continue; // symmetric: each edge unions once, as (i, j>i)
                }
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<LinkId>> = Default::default();
    for (i, &link) in universe.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(link);
    }
    let mut out: Vec<Vec<LinkId>> = groups.into_values().collect();
    for g in &mut out {
        g.sort();
    }
    out.sort_by_key(|g| g[0]);
    out
}

/// Partitions `universe` into connected components of the potential-conflict
/// graph: two links are adjacent iff **some** pair of their alone rates
/// conflicts. Dead links form singleton components.
///
/// Components are returned with their links sorted, ordered by smallest
/// member.
pub fn potential_conflict_components<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
) -> Vec<Vec<LinkId>> {
    components_from_adjacency(universe, &potential_conflict_adjacency(model, universe))
}

/// Superimposes per-component schedules that run in *parallel* (their links
/// never conflict) into one joint [`Schedule`].
///
/// Each input schedule occupies at most one unit period; the merge sweeps a
/// common timeline, emitting one entry per maximal interval during which the
/// set of concurrently active component entries is constant. The result's
/// total share is the maximum of the inputs' totals.
///
/// # Panics
///
/// Panics if two input schedules share a link (they would not be parallel).
pub fn merge_parallel_schedules(parts: &[Schedule]) -> Schedule {
    // A link may appear in several entries of one part (time-sharing rated
    // sets of the same link), but never in two different parts — the parts
    // would not be parallel.
    let mut seen_links: std::collections::BTreeMap<LinkId, usize> = Default::default();
    for (pi, p) in parts.iter().enumerate() {
        for (set, _) in p.entries() {
            for l in set.links() {
                let owner = *seen_links.entry(l).or_insert(pi);
                assert!(owner == pi, "link {l} appears in two parallel schedules");
            }
        }
    }
    let mut breakpoints: Vec<f64> = vec![0.0];
    for p in parts {
        let mut t = 0.0;
        for (_, share) in p.entries() {
            t += share;
            breakpoints.push(t);
        }
    }
    breakpoints.sort_by(|a, b| a.total_cmp(b));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut entries: Vec<(RatedSet, f64)> = Vec::new();
    for w in breakpoints.windows(2) {
        let (start, end) = (w[0], w[1]);
        let mid = 0.5 * (start + end);
        let mut couples = Vec::new();
        for p in parts {
            let mut t = 0.0;
            for (set, share) in p.entries() {
                if mid >= t && mid < t + share {
                    couples.extend(set.couples().iter().copied());
                    break;
                }
                t += share;
            }
        }
        if !couples.is_empty() {
            entries.push((RatedSet::new(couples), end - start));
        }
    }
    Schedule::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// Links 0-1 conflict, links 2-3 conflict, the groups are independent.
    fn two_component_model() -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..4 {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0)]);
        }
        b = b
            .conflict_all(links[0], links[1])
            .conflict_all(links[2], links[3]);
        (b.build(), links)
    }

    #[test]
    fn components_split_on_potential_conflicts() {
        let (m, links) = two_component_model();
        let comps = potential_conflict_components(&m, &links);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![links[0], links[1]]);
        assert_eq!(comps[1], vec![links[2], links[3]]);
    }

    #[test]
    fn rate_dependent_conflicts_still_join_components() {
        let (m0, links) = two_component_model();
        // Join the two groups with a single high-rate-only conflict.
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0), r(36.0)]);
        }
        b = b.conflict_at(links[1], r(54.0), links[2], r(54.0));
        let m = b.build();
        let comps = potential_conflict_components(&m, &links);
        // links[1] and links[2] are potentially conflicting: one component
        // containing both, links[0] and links[3] now isolated.
        assert!(comps
            .iter()
            .any(|c| c.contains(&links[1]) && c.contains(&links[2])));
    }

    #[test]
    fn merge_overlays_parallel_parts() {
        let (m, links) = two_component_model();
        let s1 = Schedule::new(vec![
            (vec![(links[0], r(54.0))].into_iter().collect(), 0.6),
            (vec![(links[1], r(54.0))].into_iter().collect(), 0.4),
        ]);
        let s2 = Schedule::new(vec![
            (vec![(links[2], r(54.0))].into_iter().collect(), 0.5),
            (vec![(links[3], r(54.0))].into_iter().collect(), 0.5),
        ]);
        let merged = merge_parallel_schedules(&[s1.clone(), s2.clone()]);
        assert!(merged.is_valid(&m));
        assert!((merged.total_share() - 1.0).abs() < 1e-9);
        // Throughputs are preserved.
        for &l in &links {
            let want = s1.link_throughput(l) + s2.link_throughput(l);
            assert!(
                (merged.link_throughput(l) - want).abs() < 1e-9,
                "{l}: {} vs {want}",
                merged.link_throughput(l)
            );
        }
        // The merged entries mix links of both components.
        assert!(merged.entries().iter().any(|(set, _)| set.len() == 2));
    }

    #[test]
    #[should_panic(expected = "two parallel schedules")]
    fn merge_rejects_shared_links() {
        let (_, links) = two_component_model();
        let s = Schedule::new(vec![(vec![(links[0], r(54.0))].into_iter().collect(), 0.5)]);
        let _ = merge_parallel_schedules(&[s.clone(), s]);
    }

    #[test]
    fn merge_handles_empty_and_unequal_lengths() {
        let (_, links) = two_component_model();
        let s1 = Schedule::new(vec![(vec![(links[0], r(54.0))].into_iter().collect(), 0.3)]);
        let merged = merge_parallel_schedules(&[s1, Schedule::empty()]);
        assert!((merged.total_share() - 0.3).abs() < 1e-12);
        assert_eq!(merge_parallel_schedules(&[]).entries().len(), 0);
    }
}
