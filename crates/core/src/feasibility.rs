//! Feasibility of link-demand vectors (Eq. 2 / Eq. 4) and minimum airtime.

use crate::available::link_universe;
use crate::error::CoreError;
use crate::flow::Flow;
use crate::schedule::Schedule;
use awb_lp::{Direction, Problem, Relation, SolveError};
use awb_net::{LinkRateModel, Path};
use awb_sets::{enumerate_admissible, EnumerationOptions, RatedSet};

/// Whether the given flows' demands are jointly schedulable (Eq. 2): does a
/// link scheduling exist that delivers every demand within one scheduling
/// period?
///
/// # Errors
///
/// Only on solver failure; infeasibility is the `Ok(false)` case.
pub fn is_feasible<M: LinkRateModel>(model: &M, flows: &[Flow]) -> Result<bool, CoreError> {
    match min_airtime(model, flows) {
        Ok(_) => Ok(true),
        Err(CoreError::BackgroundInfeasible) => Ok(false),
        Err(e) => Err(e),
    }
}

/// The minimum total time share `Σ λ_i` needed to deliver every flow's
/// demand, together with a schedule achieving it.
///
/// A result of `1.0` means the network is saturated; lower values measure
/// the spare capacity an optimal scheduler would retain. Flows with no links
/// (impossible by construction) or zero demands cost nothing.
///
/// # Errors
///
/// [`CoreError::BackgroundInfeasible`] when no schedule delivers the
/// demands, [`CoreError::EmptyUniverse`] when there are no flows.
pub fn min_airtime<M: LinkRateModel>(
    model: &M,
    flows: &[Flow],
) -> Result<(f64, Schedule), CoreError> {
    let Some((first, rest)) = flows.split_first() else {
        return Err(CoreError::EmptyUniverse);
    };
    let universe = link_universe(rest, first.path());
    let sets = enumerate_admissible(model, &universe, &EnumerationOptions::default());
    min_airtime_with_sets(&sets, flows, &universe)
}

fn min_airtime_with_sets(
    sets: &[RatedSet],
    flows: &[Flow],
    universe: &[awb_net::LinkId],
) -> Result<(f64, Schedule), CoreError> {
    let mut demand = vec![0.0f64; universe.len()];
    for flow in flows {
        for link in flow.path().links() {
            let idx = universe
                .binary_search(link)
                .map_err(|_| CoreError::Invariant("universe contains all path links"))?;
            demand[idx] += flow.demand_mbps();
        }
    }

    let mut lp = Problem::new(Direction::Minimize);
    let lambdas: Vec<_> = (0..sets.len())
        .map(|i| lp.add_var(format!("lambda{i}"), 1.0))
        .collect();
    let budget: Vec<_> = lambdas.iter().map(|&v| (v, 1.0)).collect();
    lp.add_constraint(&budget, Relation::Le, 1.0)?;
    for (idx, &link) in universe.iter().enumerate() {
        if demand[idx] <= 0.0 {
            continue;
        }
        let terms: Vec<_> = sets
            .iter()
            .zip(&lambdas)
            .filter_map(|(set, &var)| set.rate_of(link).map(|r| (var, r.as_mbps())))
            .collect();
        lp.add_constraint(&terms, Relation::Ge, demand[idx])
            .map_err(|_| CoreError::BackgroundInfeasible)?;
    }
    let solution = match lp.solve() {
        Ok(s) => s,
        Err(SolveError::Infeasible) => return Err(CoreError::BackgroundInfeasible),
        Err(e) => return Err(CoreError::Solver(e)),
    };
    let entries: Vec<(RatedSet, f64)> = sets
        .iter()
        .zip(&lambdas)
        .map(|(set, &var)| (set.clone(), solution.value(var)))
        .filter(|(_, share)| *share > 1e-12)
        .collect();
    let total: f64 = entries.iter().map(|(_, s)| s).sum();
    let entries = if total > 1.0 {
        entries
            .into_iter()
            .map(|(s, share)| (s, share / total))
            .collect()
    } else {
        entries
    };
    Ok((solution.objective(), Schedule::new(entries)))
}

/// Whether one additional flow with the given demand fits alongside existing
/// `background` — the admission-control test the paper's §2.5 closes with:
/// admit iff the Eq. 6 optimum is at least the flow's demand.
///
/// # Errors
///
/// As [`crate::available_bandwidth`].
pub fn admits<M: LinkRateModel>(
    model: &M,
    background: &[Flow],
    candidate_path: &Path,
    candidate_demand_mbps: f64,
) -> Result<bool, CoreError> {
    let out = crate::available_bandwidth(
        model,
        background,
        candidate_path,
        &crate::AvailableBandwidthOptions::default(),
    )?;
    Ok(out.bandwidth_mbps() + 1e-9 >= candidate_demand_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, LinkId, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    fn conflicting_pair() -> (DeclarativeModel, LinkId, LinkId) {
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_node(f64::from(i), 0.0)).collect();
        let l1 = t.add_link(n[0], n[1]).unwrap();
        let l2 = t.add_link(n[2], n[3]).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(l1, &[r(54.0)])
            .alone_rates(l2, &[r(54.0)])
            .conflict_all(l1, l2)
            .build();
        (m, l1, l2)
    }

    #[test]
    fn airtime_adds_across_conflicting_links() {
        let (m, l1, l2) = conflicting_pair();
        let p1 = Path::new(m.topology(), vec![l1]).unwrap();
        let p2 = Path::new(m.topology(), vec![l2]).unwrap();
        let flows = vec![
            Flow::new(p1, 13.5).unwrap(), // 0.25 share
            Flow::new(p2, 27.0).unwrap(), // 0.5 share
        ];
        let (airtime, schedule) = min_airtime(&m, &flows).unwrap();
        assert!((airtime - 0.75).abs() < 1e-7);
        assert!(schedule.is_valid(&m));
        assert!(schedule.link_throughput(l1) >= 13.5 - 1e-6);
        assert!(schedule.link_throughput(l2) >= 27.0 - 1e-6);
        assert!(is_feasible(&m, &flows).unwrap());
    }

    #[test]
    fn saturation_is_detected() {
        let (m, l1, l2) = conflicting_pair();
        let p1 = Path::new(m.topology(), vec![l1]).unwrap();
        let p2 = Path::new(m.topology(), vec![l2]).unwrap();
        let flows = vec![
            Flow::new(p1, 27.0).unwrap(),
            Flow::new(p2, 28.0).unwrap(), // total share > 1
        ];
        assert!(!is_feasible(&m, &flows).unwrap());
    }

    #[test]
    fn zero_demand_flows_cost_nothing() {
        let (m, l1, _) = conflicting_pair();
        let p1 = Path::new(m.topology(), vec![l1]).unwrap();
        let flows = vec![Flow::new(p1, 0.0).unwrap()];
        let (airtime, _) = min_airtime(&m, &flows).unwrap();
        assert!(airtime.abs() < 1e-9);
    }

    #[test]
    fn no_flows_is_an_error() {
        let (m, ..) = conflicting_pair();
        assert!(matches!(
            min_airtime(&m, &[]),
            Err(CoreError::EmptyUniverse)
        ));
    }

    #[test]
    fn admits_compares_against_demand() {
        let (m, l1, l2) = conflicting_pair();
        let p1 = Path::new(m.topology(), vec![l1]).unwrap();
        let p2 = Path::new(m.topology(), vec![l2]).unwrap();
        let background = vec![Flow::new(p1, 27.0).unwrap()];
        assert!(admits(&m, &background, &p2, 27.0).unwrap());
        assert!(!admits(&m, &background, &p2, 28.0).unwrap());
    }
}
