//! Content-addressed per-component compiled units.
//!
//! A [`crate::CompiledInstance`] is an assembly of [`CompiledUnit`]s — one
//! per potential-conflict component — each carrying exactly the
//! query-independent state of its component: the exhaustively enumerated
//! pool under [`SolverKind::FullEnumeration`], or the compiled max-weight
//! pricing oracle plus its deterministic seed columns under
//! [`SolverKind::ColumnGeneration`].
//!
//! Every unit is stamped with a **content hash** over all compile inputs
//! that can influence its bytes:
//!
//! * the solver kind and the result-relevant enumeration options,
//! * any caller-provided seed columns,
//! * per member link: its id, its alone rates, and its
//!   [`LinkRateModel::link_fingerprint`],
//! * the pairwise couple-conflict table over the members' alone rates (only
//!   for pairwise-exact models, where that table *is* the whole
//!   admissibility structure),
//! * the [`LinkRateModel::model_fingerprint`].
//!
//! Unit compilation is deterministic, so **hash equality implies byte
//! equality**: recompiling a component whose inputs hash identically would
//! reproduce the unit bit-for-bit. That is the invariant behind both reuse
//! paths of `apply_delta` — structural reuse of untouched components
//! (`Arc` sharing, no hashing) and [`UnitCache`] lookups for dirty
//! components that happen to have been compiled before (a node moving back,
//! two epochs sharing a component shape).
//!
//! For the geometric [`awb_net::SinrModel`], member fingerprints (endpoint
//! positions) plus the model fingerprint (the radio) fully determine every
//! in-component admissibility answer — Eq. 3 sums interference over the
//! *members* of an assignment only — so the hash is exact even though it
//! never evaluates joint admissibility. Custom additive models must
//! override the fingerprint hooks (see [`LinkRateModel::link_fingerprint`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::available::{AvailableBandwidthOptions, SolverKind};
use crate::colgen::seed_pool;
use awb_net::{LinkId, LinkRateModel};
use awb_sets::{enumerate_admissible, MaxWeightOracle, RatedSet};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a over `u64` words — the workspace's deterministic,
/// `HashMap`-free hash for content addressing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ContentHasher(u64);

impl ContentHasher {
    pub(crate) fn new(tag: u64) -> ContentHasher {
        let mut h = ContentHasher(FNV_OFFSET);
        h.write(tag);
        h
    }

    pub(crate) fn write(&mut self, value: u64) {
        let mut h = self.0;
        for byte in value.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// The compiled, query-independent state of one potential-conflict
/// component, stamped with the content hash of its compile inputs.
///
/// Units are immutable and shared by `Arc`: an instance produced by
/// `apply_delta` points at the *same* unit allocations as its predecessor
/// for every component the delta did not touch.
#[derive(Debug)]
pub struct CompiledUnit {
    links: Vec<LinkId>,
    content_hash: u64,
    kind: UnitKind,
}

#[derive(Debug)]
pub(crate) enum UnitKind {
    /// Exhaustively enumerated admissible-set pool.
    Enumerated { pool: Vec<RatedSet> },
    /// Compiled pricing oracle plus its deterministic seed pool.
    Colgen {
        oracle: MaxWeightOracle,
        seeds: Vec<RatedSet>,
    },
}

impl CompiledUnit {
    /// The sorted member links of this unit's component.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The content hash of the unit's compile inputs (see module docs).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Number of precompiled columns (pool size under enumeration, seed
    /// count under column generation).
    pub fn num_columns(&self) -> usize {
        match &self.kind {
            UnitKind::Enumerated { pool } => pool.len(),
            UnitKind::Colgen { seeds, .. } => seeds.len(),
        }
    }

    pub(crate) fn kind(&self) -> &UnitKind {
        &self.kind
    }

    /// The exhaustive pool of an enumerated unit. Only called on instances
    /// compiled under [`SolverKind::FullEnumeration`].
    pub(crate) fn enumerated_pool(&self) -> &[RatedSet] {
        match &self.kind {
            UnitKind::Enumerated { pool } => pool,
            UnitKind::Colgen { .. } => {
                // awb-audit: allow(no-panic-in-lib) — unit kind always matches the solver kind
                unreachable!("solver kind and unit kind are compiled together")
            }
        }
    }

    /// Compiles the unit for `component` under `model`, hashing the inputs
    /// first so the caller can consult a [`UnitCache`] beforehand via
    /// [`unit_content_hash`].
    pub(crate) fn compile<M: LinkRateModel>(
        model: &M,
        component: &[LinkId],
        options: &AvailableBandwidthOptions,
        seed: &[RatedSet],
    ) -> CompiledUnit {
        let content_hash = unit_content_hash(model, component, options, seed);
        let kind = match options.solver {
            SolverKind::FullEnumeration => UnitKind::Enumerated {
                pool: enumerate_admissible(model, component, &options.enumeration),
            },
            SolverKind::ColumnGeneration => {
                let oracle = MaxWeightOracle::new(model, component);
                let seeds = seed_pool(model, component, &oracle, seed);
                UnitKind::Colgen { oracle, seeds }
            }
        };
        CompiledUnit {
            links: component.to_vec(),
            content_hash,
            kind,
        }
    }
}

/// The content hash of the unit that [`CompiledUnit::compile`] would produce
/// for these inputs — computable *without* compiling, which is what makes
/// cache-before-compile lookups cheap for dirty components.
pub(crate) fn unit_content_hash<M: LinkRateModel>(
    model: &M,
    component: &[LinkId],
    options: &AvailableBandwidthOptions,
    seed: &[RatedSet],
) -> u64 {
    let mut h = ContentHasher::new(match options.solver {
        SolverKind::FullEnumeration => 1,
        SolverKind::ColumnGeneration => 2,
    });
    if options.solver == SolverKind::FullEnumeration {
        // `engine` is excluded: every engine produces byte-identical pools.
        h.write(u64::from(options.enumeration.prune_dominated));
        h.write(
            options
                .enumeration
                .max_set_size
                .map_or(u64::MAX, |s| s as u64),
        );
    }
    // Caller seed columns join colgen seed pools, so they are unit content.
    h.write(seed.len() as u64);
    for set in seed {
        h.write(set.couples().len() as u64);
        for &(l, r) in set.couples() {
            h.write(l.index() as u64);
            h.write(r.as_mbps().to_bits());
        }
    }
    h.write(model.model_fingerprint());
    let pairwise_exact = model.pairwise_admissibility_exact();
    h.write(u64::from(pairwise_exact));
    let rates: Vec<Vec<awb_phy::Rate>> = component.iter().map(|&l| model.alone_rates(l)).collect();
    for (&link, alone) in component.iter().zip(&rates) {
        h.write(link.index() as u64);
        h.write(model.link_fingerprint(link));
        h.write(alone.len() as u64);
        for r in alone {
            h.write(r.as_mbps().to_bits());
        }
    }
    if pairwise_exact {
        // For pairwise-exact models the couple-conflict table over the
        // members' alone rates is the entire admissibility structure; for
        // additive models the fingerprints above already pin the geometry
        // and evaluating O(k²·R²) conflicts here would be pure waste.
        let mut bits = 0u64;
        let mut filled = 0u32;
        for i in 0..component.len() {
            for j in (i + 1)..component.len() {
                for &ra in &rates[i] {
                    for &rb in &rates[j] {
                        let c = model.conflicts((component[i], ra), (component[j], rb));
                        bits = (bits << 1) | u64::from(c);
                        filled += 1;
                        if filled == 64 {
                            h.write(bits);
                            bits = 0;
                            filled = 0;
                        }
                    }
                }
            }
        }
        if filled > 0 {
            h.write(bits);
            h.write(u64::from(filled));
        }
    }
    h.finish()
}

/// Counters describing one `apply_delta` (accumulated across instances by
/// [`crate::Session::apply_delta`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReuse {
    /// Components reused structurally (`Arc` shared, never rehashed):
    /// membership unchanged and no member link touched by the delta.
    pub units_reused: usize,
    /// Dirty components rebuilt from a [`UnitCache`] hit — the compile was
    /// skipped because an identically-hashed unit already existed.
    pub unit_cache_hits: usize,
    /// Dirty components compiled from scratch.
    pub units_compiled: usize,
    /// Links of the instance's universe the delta touched.
    pub dirty_links: usize,
    /// Instances that fell back to a full fresh compile (universe membership
    /// changed, or the instance was compiled without decomposition and got
    /// dirtied).
    pub full_recompiles: usize,
}

impl DeltaReuse {
    /// Accumulates another instance's counters into `self`.
    pub fn absorb(&mut self, other: DeltaReuse) {
        self.units_reused += other.units_reused;
        self.unit_cache_hits += other.unit_cache_hits;
        self.units_compiled += other.units_compiled;
        self.dirty_links += other.dirty_links;
        self.full_recompiles += other.full_recompiles;
    }
}

/// A content-addressed store of compiled units, shared across the instances
/// of a [`crate::Session`] (or a service engine's topology chain).
///
/// Entries are keyed by [`CompiledUnit::content_hash`]; because hash
/// equality implies byte equality (deterministic compilation over hashed
/// inputs), a hit is always safe to substitute for a fresh compile. Each
/// entry remembers the last epoch it was touched; [`UnitCache::end_epoch`]
/// advances the clock and prunes entries idle longer than the retention
/// window, so a long-lived session under churn does not accumulate units
/// for geometries that will never recur.
#[derive(Debug)]
pub struct UnitCache {
    entries: BTreeMap<u64, (Arc<CompiledUnit>, u64)>,
    epoch: u64,
    retention: u64,
    hits: u64,
    misses: u64,
}

impl Default for UnitCache {
    fn default() -> Self {
        UnitCache::new(DEFAULT_RETENTION_EPOCHS)
    }
}

/// Default [`UnitCache`] retention: entries untouched for this many epochs
/// are pruned at the next [`UnitCache::end_epoch`].
pub const DEFAULT_RETENTION_EPOCHS: u64 = 8;

impl UnitCache {
    /// Creates an empty cache that keeps entries for `retention` epochs
    /// after their last use (`0` keeps entries only within their insertion
    /// epoch).
    pub fn new(retention: u64) -> UnitCache {
        UnitCache {
            entries: BTreeMap::new(),
            epoch: 0,
            retention,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached units.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime (hits, misses) counters of [`UnitCache::lookup`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The unit with this content hash, if cached; refreshes its epoch.
    pub fn lookup(&mut self, content_hash: u64) -> Option<Arc<CompiledUnit>> {
        match self.entries.get_mut(&content_hash) {
            Some((unit, touched)) => {
                *touched = self.epoch;
                self.hits += 1;
                Some(Arc::clone(unit))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a unit under its own content hash.
    pub fn publish(&mut self, unit: &Arc<CompiledUnit>) {
        self.entries
            .insert(unit.content_hash(), (Arc::clone(unit), self.epoch));
    }

    /// Advances the epoch clock and prunes entries whose last use is older
    /// than the retention window.
    pub fn end_epoch(&mut self) {
        self.epoch += 1;
        let horizon = self.epoch.saturating_sub(self.retention);
        self.entries.retain(|_, (_, touched)| *touched >= horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, SinrModel, Topology};
    use awb_phy::{Phy, Rate};

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    fn pair_model(conflict: bool) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..2 {
            let a = t.add_node(f64::from(i) * 10.0, 0.0);
            let b = t.add_node(f64::from(i) * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0), r(36.0)]);
        }
        if conflict {
            b = b.conflict_all(links[0], links[1]);
        }
        (b.build(), links)
    }

    #[test]
    fn hash_is_stable_and_sensitive_to_conflicts() {
        let opts = AvailableBandwidthOptions::default();
        let (m1, links) = pair_model(false);
        let (m2, _) = pair_model(false);
        assert_eq!(
            unit_content_hash(&m1, &links, &opts, &[]),
            unit_content_hash(&m2, &links, &opts, &[])
        );
        let (m3, _) = pair_model(true);
        assert_ne!(
            unit_content_hash(&m1, &links, &opts, &[]),
            unit_content_hash(&m3, &links, &opts, &[])
        );
    }

    #[test]
    fn hash_sees_solver_seed_and_member_identity() {
        let (m, links) = pair_model(true);
        let enum_opts = AvailableBandwidthOptions::default();
        let cg_opts = AvailableBandwidthOptions {
            solver: SolverKind::ColumnGeneration,
            ..AvailableBandwidthOptions::default()
        };
        assert_ne!(
            unit_content_hash(&m, &links, &enum_opts, &[]),
            unit_content_hash(&m, &links, &cg_opts, &[])
        );
        let seed = vec![RatedSet::new(vec![(links[0], r(36.0))])];
        assert_ne!(
            unit_content_hash(&m, &links, &cg_opts, &[]),
            unit_content_hash(&m, &links, &cg_opts, &seed)
        );
        assert_ne!(
            unit_content_hash(&m, &links, &enum_opts, &[]),
            unit_content_hash(&m, &links[..1], &enum_opts, &[])
        );
    }

    #[test]
    fn sinr_hash_tracks_geometry_not_structure_only() {
        let build = |gap: f64| {
            let mut t = Topology::new();
            let a = t.add_node(0.0, 0.0);
            let b = t.add_node(50.0, 0.0);
            let c = t.add_node(0.0, gap);
            let d = t.add_node(50.0, gap);
            let l1 = t.add_link(a, b).unwrap();
            let l2 = t.add_link(c, d).unwrap();
            (SinrModel::new(t, Phy::paper_default()), vec![l1, l2])
        };
        let opts = AvailableBandwidthOptions::default();
        let (m1, links) = build(120.0);
        let (m2, _) = build(120.0);
        let (m3, _) = build(130.0);
        assert_eq!(
            unit_content_hash(&m1, &links, &opts, &[]),
            unit_content_hash(&m2, &links, &opts, &[])
        );
        // Both gaps have identical alone rates, but the geometry (and hence
        // the additive interference) differs — the fingerprint must see it.
        assert_ne!(
            unit_content_hash(&m1, &links, &opts, &[]),
            unit_content_hash(&m3, &links, &opts, &[])
        );
    }

    #[test]
    fn cache_hits_refresh_and_pruning_expires() {
        let (m, links) = pair_model(true);
        let opts = AvailableBandwidthOptions::default();
        let unit = Arc::new(CompiledUnit::compile(&m, &links, &opts, &[]));
        let mut cache = UnitCache::new(1);
        cache.publish(&unit);
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(unit.content_hash()).is_some());
        cache.end_epoch();
        // Still within retention: a lookup refreshes the entry.
        assert!(cache.lookup(unit.content_hash()).is_some());
        cache.end_epoch();
        cache.end_epoch();
        // Two idle epochs with retention 1: pruned.
        assert!(cache.lookup(unit.content_hash()).is_none());
        assert!(cache.is_empty());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn compiled_unit_carries_its_hash_and_columns() {
        let (m, links) = pair_model(true);
        let opts = AvailableBandwidthOptions::default();
        let unit = CompiledUnit::compile(&m, &links, &opts, &[]);
        assert_eq!(unit.links(), &links[..]);
        assert_eq!(
            unit.content_hash(),
            unit_content_hash(&m, &links, &opts, &[])
        );
        assert!(unit.num_columns() > 0);
    }
}
