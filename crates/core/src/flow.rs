use crate::error::CoreError;
use awb_net::Path;

/// A flow: a path plus an end-to-end throughput demand in Mbps.
///
/// Background traffic (`x_i` over `P_i` in the paper's notation) is a slice
/// of flows; the new flow's demand is what
/// [`available_bandwidth`](crate::available_bandwidth) is compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    path: Path,
    demand_mbps: f64,
}

impl Flow {
    /// Creates a flow with `demand_mbps ≥ 0`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidDemand`] if the demand is negative, NaN or
    /// infinite.
    pub fn new(path: Path, demand_mbps: f64) -> Result<Flow, CoreError> {
        if !demand_mbps.is_finite() || demand_mbps < 0.0 {
            return Err(CoreError::InvalidDemand(demand_mbps));
        }
        Ok(Flow { path, demand_mbps })
    }

    /// The flow's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The flow's demand in Mbps.
    pub fn demand_mbps(&self) -> f64 {
        self.demand_mbps
    }

    /// A copy of this flow with a different demand.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidDemand`] as for [`Flow::new`].
    pub fn with_demand(&self, demand_mbps: f64) -> Result<Flow, CoreError> {
        Flow::new(self.path.clone(), demand_mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::Topology;

    fn path() -> Path {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let l = t.add_link(a, b).unwrap();
        Path::new(&t, vec![l]).unwrap()
    }

    #[test]
    fn valid_flow_round_trips() {
        let f = Flow::new(path(), 2.0).unwrap();
        assert_eq!(f.demand_mbps(), 2.0);
        assert_eq!(f.path().len(), 1);
        let g = f.with_demand(3.5).unwrap();
        assert_eq!(g.demand_mbps(), 3.5);
    }

    #[test]
    fn bad_demands_are_rejected() {
        assert!(matches!(
            Flow::new(path(), -1.0),
            Err(CoreError::InvalidDemand(_))
        ));
        assert!(Flow::new(path(), f64::NAN).is_err());
        assert!(Flow::new(path(), f64::INFINITY).is_err());
        assert!(Flow::new(path(), 0.0).is_ok());
    }
}
