//! The paper's core model: **available path bandwidth with background
//! traffic** in multirate, multihop wireless networks, assuming a globally
//! optimal link schedule (Chen, Zhai & Fang, ICDCS 2009).
//!
//! * [`available_bandwidth`] — the §2.5 linear program (Eq. 6): the maximum
//!   throughput a new path can carry while every background flow keeps its
//!   demand, over time shares of rate-coupled independent sets.
//! * [`Schedule`] — the optimal link scheduling extracted from the LP, i.e.
//!   the `{(E_i, R_i*, λ_i)}` witness of Eq. 2.
//! * [`feasibility`] — Eq. 2/Eq. 4 feasibility tests and minimum-airtime
//!   computation for a set of flows.
//! * [`colgen`] — a delayed column-generation solve path for the same LP:
//!   prices independent sets in on demand via a branch-and-bound oracle
//!   instead of enumerating them all (select with
//!   [`SolverKind::ColumnGeneration`]).
//! * [`Session`] / [`CompiledInstance`] — the compile-once / query-many
//!   split: per-universe compiled state (enumerated set pools, pricing
//!   oracles, seed columns) cached across many Eq. 6 queries, bit-for-bit
//!   identical to the one-shot functions. Instances are assemblies of
//!   content-hashed per-component [`CompiledUnit`]s, and
//!   `CompiledInstance::apply_delta` migrates them across topology changes
//!   ([`awb_net::TopologyDelta`]) by recompiling only the touched
//!   components.
//! * [`bounds`] — the Eq. 7 fixed-rate clique bounds, the corrected Eq. 9
//!   upper bound (the clique constraint itself being *invalid* under link
//!   adaptation is demonstrated in this workspace's Scenario II tests), and
//!   §3.3 lower bounds from restricted independent-set pools.
//!
//! # Example
//!
//! A single link whose channel is half-occupied by background traffic on an
//! interfering link:
//!
//! ```
//! use awb_core::{available_bandwidth, AvailableBandwidthOptions, Flow};
//! use awb_net::{DeclarativeModel, LinkRateModel, Path, Topology};
//! use awb_phy::Rate;
//!
//! let mut t = Topology::new();
//! let n: Vec<_> = (0..4).map(|i| t.add_node(i as f64, 0.0)).collect();
//! let l1 = t.add_link(n[0], n[1])?;
//! let l2 = t.add_link(n[2], n[3])?;
//! let r54 = Rate::from_mbps(54.0);
//! let model = DeclarativeModel::builder(t)
//!     .alone_rates(l1, &[r54])
//!     .alone_rates(l2, &[r54])
//!     .conflict_all(l1, l2)
//!     .build();
//! let bg_path = Path::new(model.topology(), vec![l1])?;
//! let new_path = Path::new(model.topology(), vec![l2])?;
//! let background = vec![Flow::new(bg_path, 27.0)?]; // half of 54 Mbps
//! let result = available_bandwidth(
//!     &model, &background, &new_path, &AvailableBandwidthOptions::default())?;
//! assert!((result.bandwidth_mbps() - 27.0).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod available;
pub mod bounds;
pub mod colgen;
pub mod decomposition;
mod error;
pub mod feasibility;
mod flow;
mod schedule;
mod session;
mod units;

pub use available::{
    available_bandwidth, available_bandwidth_with_sets, link_universe, path_capacity,
    AvailableBandwidth, AvailableBandwidthOptions, PricingMode, SolverKind,
};
pub use colgen::{
    available_bandwidth_colgen, available_bandwidth_colgen_with_oracle, ColgenOutcome, ColgenStats,
};
pub use error::CoreError;
pub use flow::Flow;
pub use schedule::Schedule;
pub use session::{CompiledInstance, Session, SessionStats};
pub use units::{CompiledUnit, DeltaReuse, UnitCache, DEFAULT_RETENTION_EPOCHS};
