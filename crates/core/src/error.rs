use awb_lp::SolveError;
use awb_net::PathError;
use std::error::Error;
use std::fmt;

/// Error raised by the available-bandwidth computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The background demands alone cannot be scheduled — there is no
    /// feasible link scheduling delivering every `x_i` (Eq. 2 fails even
    /// with the new flow at zero).
    BackgroundInfeasible,
    /// A flow demand was negative, NaN or infinite.
    InvalidDemand(f64),
    /// A path or link did not belong to the model's topology.
    Path(PathError),
    /// The Eq. 9 upper-bound LP would need more rate vectors than the cap
    /// allows (`Ω ≤ Z^L` grows exponentially; see the paper's complexity
    /// discussion in §3.2).
    TooManyRateVectors {
        /// Number of rate vectors the universe would generate.
        needed: u128,
        /// The configured cap.
        cap: usize,
    },
    /// The underlying LP solver failed unexpectedly (numerical trouble).
    Solver(SolveError),
    /// The link universe is empty — no live link on any involved path.
    EmptyUniverse,
    /// An internal invariant was violated (a bug in this crate, not in the
    /// caller's input); the message names the broken assumption.
    Invariant(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BackgroundInfeasible => {
                write!(f, "background demands are not schedulable")
            }
            CoreError::InvalidDemand(d) => write!(f, "invalid flow demand {d}"),
            CoreError::Path(e) => write!(f, "invalid path: {e}"),
            CoreError::TooManyRateVectors { needed, cap } => write!(
                f,
                "upper-bound LP needs {needed} rate vectors, cap is {cap}"
            ),
            CoreError::Solver(e) => write!(f, "lp solver failed: {e}"),
            CoreError::EmptyUniverse => write!(f, "no live links on the involved paths"),
            CoreError::Invariant(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Path(e) => Some(e),
            CoreError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PathError> for CoreError {
    fn from(e: PathError) -> Self {
        CoreError::Path(e)
    }
}

impl From<awb_lp::ProblemError> for CoreError {
    fn from(e: awb_lp::ProblemError) -> Self {
        CoreError::Solver(SolveError::Problem(e))
    }
}

impl From<SolveError> for CoreError {
    fn from(e: SolveError) -> Self {
        match e {
            SolveError::Infeasible => CoreError::BackgroundInfeasible,
            other => CoreError::Solver(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_lp_maps_to_background_infeasible() {
        assert_eq!(
            CoreError::from(SolveError::Infeasible),
            CoreError::BackgroundInfeasible
        );
        assert_eq!(
            CoreError::from(SolveError::Unbounded),
            CoreError::Solver(SolveError::Unbounded)
        );
    }

    #[test]
    fn displays_are_informative() {
        let e = CoreError::TooManyRateVectors {
            needed: 1 << 40,
            cap: 4096,
        };
        assert!(e.to_string().contains("4096"));
        assert!(CoreError::BackgroundInfeasible.source().is_none());
        assert!(CoreError::Solver(SolveError::Unbounded).source().is_some());
    }
}
