//! Upper and lower bounds on available path bandwidth (paper §3).
//!
//! The classic clique constraint is **invalid** under time-varying link
//! adaptation (§3.2, Hypothesis 8 is false): the Scenario II integration
//! tests in this workspace reproduce the paper's counterexample where the
//! optimal end-to-end throughput (16.2 Mbps) violates every fixed-rate
//! clique bound (13.5 and ~15.43 Mbps). This module provides
//!
//! * [`equal_throughput_clique_bound`] — the Eq. 7 bound for a *fixed* rate
//!   vector (valid only without link adaptation);
//! * [`clique_time_share`] — the `Σ y_i / r_i` diagnostic used to exhibit
//!   the violation;
//! * [`clique_upper_bound`] — the corrected Eq. 9 upper bound: an LP over
//!   per-rate-vector throughput decompositions, each constrained by its own
//!   cliques (linearized exactly with `h_ik = γ_i · g_ik`);
//! * [`lower_bound_max_set_size`] — §3.3 lower bounds from a restricted
//!   independent-set pool.

use crate::available::{available_bandwidth_with_sets, link_universe};
use crate::error::CoreError;
use crate::flow::Flow;
use crate::AvailableBandwidthOptions;
use awb_lp::{Direction, Problem, Relation, SolveError};
use awb_net::{LinkId, LinkRateModel, Path};
use awb_phy::Rate;
use awb_sets::{enumerate_admissible, maximal_rated_cliques, EnumerationOptions, RatedSet};

/// The Eq. 7 upper bound on the common throughput `s` of links carrying the
/// same traffic, for one **fixed** rate assignment: the tightest
/// `1 / Σ_{L_i ∈ C} (1/r_i)` over the maximal cliques `C` of the assignment.
///
/// Returns `None` for an empty assignment. Only meaningful when every hop
/// must carry equal throughput (a single multihop flow) and rates never
/// change — the situation of the paper's §3.2 discussion.
pub fn equal_throughput_clique_bound<M: LinkRateModel>(
    model: &M,
    hops: &[(LinkId, Rate)],
) -> Option<f64> {
    if hops.is_empty() {
        return None;
    }
    let assignment: RatedSet = hops.iter().copied().collect();
    let cliques = maximal_rated_cliques(model, &assignment);
    cliques
        .iter()
        .map(|c| {
            let t: f64 = c
                .couples()
                .iter()
                .map(|(_, r)| r.unit_time().unwrap_or(f64::INFINITY))
                .sum();
            1.0 / t
        })
        .fold(None, |acc: Option<f64>, b| {
            Some(acc.map_or(b, |a| a.min(b)))
        })
}

/// The clique time share `T = Σ_{L_i ∈ C} y_i / r_i` of a rated clique for
/// a given per-link throughput (the quantity whose `≤ 1` constraint fails
/// under link adaptation; §3.2, §5.1).
///
/// `throughput_of` maps a link to its throughput `y_i` in Mbps.
pub fn clique_time_share(clique: &RatedSet, mut throughput_of: impl FnMut(LinkId) -> f64) -> f64 {
    clique
        .couples()
        .iter()
        .map(|&(l, r)| throughput_of(l) * r.unit_time().unwrap_or(f64::INFINITY))
        .sum()
}

/// Options for [`clique_upper_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpperBoundOptions {
    /// Cap on the number of rate vectors `Ω`; the LP needs `Ω` grows as
    /// `Z^L` (paper §3.2), so large universes must be rejected rather than
    /// silently truncated.
    pub max_rate_vectors: usize,
}

impl Default for UpperBoundOptions {
    fn default() -> Self {
        UpperBoundOptions {
            max_rate_vectors: 512,
        }
    }
}

/// The corrected Eq. 9 **upper bound** on the available bandwidth of
/// `new_path` under `background`.
///
/// For every rate vector `R_i` (one alone-achievable rate per live link) the
/// feasible per-vector throughput `g_i` must satisfy all of `R_i`'s clique
/// constraints; the delivered throughput is a time-share mixture
/// `Y = Σ γ_i g_i`. The products are linearized exactly via
/// `h_ik = γ_i g_ik`. The optimum is an upper bound on the Eq. 6 value
/// (the mixture relaxes joint schedulability to per-vector clique
/// feasibility).
///
/// # Errors
///
/// [`CoreError::TooManyRateVectors`] when `Ω` exceeds the cap,
/// [`CoreError::BackgroundInfeasible`] when even the relaxation cannot
/// deliver the background demands, [`CoreError::EmptyUniverse`] with no
/// involved links.
pub fn clique_upper_bound<M: LinkRateModel>(
    model: &M,
    background: &[Flow],
    new_path: &Path,
    options: &UpperBoundOptions,
) -> Result<f64, CoreError> {
    let universe = link_universe(background, new_path);
    if universe.is_empty() {
        return Err(CoreError::EmptyUniverse);
    }
    let mut demand = vec![0.0f64; universe.len()];
    for flow in background {
        for link in flow.path().links() {
            let idx = universe
                .binary_search(link)
                .map_err(|_| CoreError::Invariant("universe contains all path links"))?;
            demand[idx] += flow.demand_mbps();
        }
    }

    // Live links get rate choices; demands on dead links are unservable.
    let choices: Vec<(LinkId, Vec<Rate>)> = universe
        .iter()
        .map(|&l| (l, model.alone_rates(l)))
        .collect();
    for ((_, rates), (&link, &d)) in choices.iter().zip(universe.iter().zip(&demand)) {
        if rates.is_empty() {
            if d > 0.0 {
                return Err(CoreError::BackgroundInfeasible);
            }
            if new_path.contains(link) {
                return Ok(0.0); // a dead hop pins the new flow to zero
            }
        }
    }
    let live: Vec<(LinkId, Vec<Rate>)> =
        choices.into_iter().filter(|(_, r)| !r.is_empty()).collect();

    let omega: u128 = live.iter().map(|(_, r)| r.len() as u128).product();
    if omega > options.max_rate_vectors as u128 {
        return Err(CoreError::TooManyRateVectors {
            needed: omega,
            cap: options.max_rate_vectors,
        });
    }

    // Enumerate all rate vectors (cartesian product).
    let mut vectors: Vec<RatedSet> = vec![RatedSet::empty()];
    for (link, rates) in &live {
        let mut next = Vec::with_capacity(vectors.len() * rates.len());
        for v in &vectors {
            for &r in rates {
                next.push(v.with(*link, r));
            }
        }
        vectors = next;
    }

    let mut lp = Problem::new(Direction::Maximize);
    let f = lp.add_var("f", 1.0);
    let gammas: Vec<_> = (0..vectors.len())
        .map(|i| lp.add_var(format!("gamma{i}"), 0.0))
        .collect();
    // h[i][k] aligned with live[k].
    let hs: Vec<Vec<_>> = (0..vectors.len())
        .map(|i| {
            (0..live.len())
                .map(|k| lp.add_var(format!("h{i}_{k}"), 0.0))
                .collect()
        })
        .collect();

    // Σ γ_i ≤ 1.
    let budget: Vec<_> = gammas.iter().map(|&g| (g, 1.0)).collect();
    lp.add_constraint(&budget, Relation::Le, 1.0)?;

    for (i, vector) in vectors.iter().enumerate() {
        // h_ik ≤ γ_i · r_ik.
        for (k, (link, _)) in live.iter().enumerate() {
            let r = vector
                .rate_of(*link)
                .ok_or(CoreError::Invariant("vector assigns every live link"))?
                .as_mbps();
            lp.add_constraint(&[(hs[i][k], 1.0), (gammas[i], -r)], Relation::Le, 0.0)?;
        }
        // Per-clique: Σ_{k ∈ C} h_ik / r_ik ≤ γ_i.
        for clique in maximal_rated_cliques(model, vector) {
            let mut terms: Vec<_> = clique
                .couples()
                .iter()
                .map(|&(link, r)| {
                    let k = live
                        .iter()
                        .position(|(l, _)| *l == link)
                        .ok_or(CoreError::Invariant("clique links are live"))?;
                    Ok((hs[i][k], 1.0 / r.as_mbps()))
                })
                .collect::<Result<_, CoreError>>()?;
            terms.push((gammas[i], -1.0));
            lp.add_constraint(&terms, Relation::Le, 0.0)?;
        }
    }

    // Delivery: Σ_i h_ie ≥ demand_e + f · I_e(new).
    for (k, (link, _)) in live.iter().enumerate() {
        let idx = universe
            .binary_search(link)
            .map_err(|_| CoreError::Invariant("live links are a subset of the universe"))?;
        let mut terms: Vec<_> = (0..vectors.len()).map(|i| (hs[i][k], 1.0)).collect();
        if new_path.contains(*link) {
            terms.push((f, -1.0));
        }
        lp.add_constraint(&terms, Relation::Ge, demand[idx])?;
    }

    match lp.solve() {
        Ok(s) => Ok(s.objective()),
        Err(SolveError::Infeasible) => Err(CoreError::BackgroundInfeasible),
        Err(e) => Err(CoreError::Solver(e)),
    }
}

/// A §3.3 **lower bound**: the Eq. 6 LP restricted to independent sets of at
/// most `max_set_size` links. Using a part of the independent sets shrinks
/// the solution space, so the optimum can only drop.
///
/// # Errors
///
/// As [`crate::available_bandwidth`].
pub fn lower_bound_max_set_size<M: LinkRateModel>(
    model: &M,
    background: &[Flow],
    new_path: &Path,
    max_set_size: usize,
) -> Result<f64, CoreError> {
    let universe = link_universe(background, new_path);
    if universe.is_empty() {
        return Err(CoreError::EmptyUniverse);
    }
    let sets = enumerate_admissible(
        model,
        &universe,
        &EnumerationOptions {
            prune_dominated: true,
            max_set_size: Some(max_set_size),
            ..EnumerationOptions::default()
        },
    );
    Ok(available_bandwidth_with_sets(
        &sets,
        background,
        new_path,
        &AvailableBandwidthOptions::default(),
    )?
    .bandwidth_mbps())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::available_bandwidth;
    use awb_net::{DeclarativeModel, Topology};

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// Three fully conflicting links at mixed rates.
    fn triangle() -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..3 {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let m = DeclarativeModel::builder(t)
            .alone_rates(links[0], &[r(54.0)])
            .alone_rates(links[1], &[r(36.0)])
            .alone_rates(links[2], &[r(18.0)])
            .conflict_all(links[0], links[1])
            .conflict_all(links[0], links[2])
            .conflict_all(links[1], links[2])
            .build();
        (m, links)
    }

    #[test]
    fn eq7_bound_on_a_triangle() {
        let (m, links) = triangle();
        let hops: Vec<(LinkId, Rate)> = vec![
            (links[0], r(54.0)),
            (links[1], r(36.0)),
            (links[2], r(18.0)),
        ];
        let bound = equal_throughput_clique_bound(&m, &hops).unwrap();
        let expected = 1.0 / (1.0 / 54.0 + 1.0 / 36.0 + 1.0 / 18.0);
        assert!((bound - expected).abs() < 1e-9);
    }

    #[test]
    fn eq7_uses_the_tightest_clique() {
        // Links 0-1 conflict; link 2 independent: the bound comes from the
        // {0,1} clique, not from the singleton {2}.
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..3 {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let m = DeclarativeModel::builder(t)
            .alone_rates(links[0], &[r(54.0)])
            .alone_rates(links[1], &[r(54.0)])
            .alone_rates(links[2], &[r(6.0)])
            .conflict_all(links[0], links[1])
            .build();
        let hops: Vec<(LinkId, Rate)> =
            vec![(links[0], r(54.0)), (links[1], r(54.0)), (links[2], r(6.0))];
        let bound = equal_throughput_clique_bound(&m, &hops).unwrap();
        // Cliques: {0,1} -> 27, {2} -> 6. Tightest is 6.
        assert!((bound - 6.0).abs() < 1e-9);
        assert_eq!(equal_throughput_clique_bound(&m, &[]), None);
    }

    #[test]
    fn clique_time_share_sums_unit_times() {
        let (_, links) = triangle();
        let clique: RatedSet = vec![(links[0], r(54.0)), (links[1], r(36.0))]
            .into_iter()
            .collect();
        let t = clique_time_share(&clique, |_| 18.0);
        assert!((t - (18.0 / 54.0 + 18.0 / 36.0)).abs() < 1e-12);
    }

    #[test]
    fn upper_bound_dominates_exact_value() {
        let (m, links) = triangle();
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let bg = vec![Flow::new(Path::new(m.topology(), vec![links[1]]).unwrap(), 9.0).unwrap()];
        let exact = available_bandwidth(&m, &bg, &p, &crate::AvailableBandwidthOptions::default())
            .unwrap()
            .bandwidth_mbps();
        let upper = clique_upper_bound(&m, &bg, &p, &UpperBoundOptions::default()).unwrap();
        assert!(
            upper + 1e-6 >= exact,
            "upper {upper} must dominate exact {exact}"
        );
    }

    #[test]
    fn lower_bound_never_exceeds_exact_value() {
        let (m, links) = triangle();
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let exact = available_bandwidth(&m, &[], &p, &crate::AvailableBandwidthOptions::default())
            .unwrap()
            .bandwidth_mbps();
        for cap in 1..=3 {
            let lower = lower_bound_max_set_size(&m, &[], &p, cap).unwrap();
            assert!(lower <= exact + 1e-9, "cap {cap}");
        }
        // With singletons allowed, the lone-link path still gets full rate.
        let lower = lower_bound_max_set_size(&m, &[], &p, 1).unwrap();
        assert!((lower - 54.0).abs() < 1e-6);
    }

    #[test]
    fn rate_vector_cap_is_enforced() {
        let (m, links) = triangle();
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let err = clique_upper_bound(
            &m,
            &[],
            &p,
            &UpperBoundOptions {
                max_rate_vectors: 0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::TooManyRateVectors { .. }));
    }

    #[test]
    fn upper_bound_detects_impossible_background() {
        let (m, links) = triangle();
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let bg = vec![Flow::new(
            Path::new(m.topology(), vec![links[1]]).unwrap(),
            40.0, // > 36 Mbps alone-rate of link 1
        )
        .unwrap()];
        let err = clique_upper_bound(&m, &bg, &p, &UpperBoundOptions::default()).unwrap_err();
        assert_eq!(err, CoreError::BackgroundInfeasible);
    }
}
