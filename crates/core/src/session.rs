//! Compiled query sessions: the two-phase split between **topology
//! compilation** and **per-query solving** for the Eq. 6 LP.
//!
//! Every Eq. 6 query works over a *link universe* (the union of the
//! background paths' links and the new path's links). For a fixed model and
//! universe, a large part of the solve is query-independent: the conflict
//! structure, the enumerated independent-set pool (under
//! [`SolverKind::FullEnumeration`]), the compiled-bitmask pricing oracle and
//! its deterministic seed pool (under [`SolverKind::ColumnGeneration`]), and
//! the potential-conflict component split. [`CompiledInstance`] captures
//! exactly that state, built once; [`Session`] caches instances per universe
//! and answers many `(background, path)` queries against them, reusing
//! scratch buffers for the universe and demand vectors so the warm query
//! path performs no recompilation.
//!
//! # Determinism
//!
//! A [`CompiledInstance`] is a pure function of `(model, universe, options)`
//! — it carries **no** state that evolves across queries. In particular the
//! column-generation seed pool is the deterministic
//! singleton-plus-greedy-cover seed, *not* the converged pool of earlier
//! queries: carrying converged columns forward would make low-order float
//! bits depend on query order. Consequently every session answer is
//! bit-for-bit identical to a fresh one-shot solve of the same query, the
//! free functions [`crate::available_bandwidth`] and
//! [`crate::available_bandwidth_colgen`] are thin wrappers over a one-shot
//! session, and a warm session replaying queries in any order reproduces the
//! cold answers exactly (see `tests/proptest_session.rs`).

use std::collections::BTreeMap;

use crate::available::{
    demand_into, link_universe_into, solve_decomposed_with_pools, solve_over_sets,
    AvailableBandwidth, AvailableBandwidthOptions, SolverKind,
};
use crate::colgen::{seed_pool, solve_with_pools, ColgenOutcome, PricingTuning};
use crate::error::CoreError;
use crate::flow::Flow;
use awb_net::{LinkId, LinkRateModel, Path};
use awb_sets::{enumerate_admissible, MaxWeightOracle, RatedSet};

/// The query-independent, precompiled state for Eq. 6 solves over one
/// `(model, universe, options)` triple.
///
/// Under [`SolverKind::FullEnumeration`] this is the per-component
/// exhaustive independent-set pools; under
/// [`SolverKind::ColumnGeneration`] it is the per-component compiled
/// max-weight pricing oracles plus their deterministic seed pools. Both
/// honor `options.decompose` by splitting the universe into
/// potential-conflict components first.
///
/// Instances are immutable once compiled: [`CompiledInstance::query`] takes
/// `&self`, so a single instance can serve concurrent queries (the service
/// layer shares instances behind `Arc`).
#[derive(Debug, Clone)]
pub struct CompiledInstance {
    universe: Vec<LinkId>,
    components: Vec<Vec<LinkId>>,
    dust_epsilon: f64,
    kind: InstanceKind,
}

#[derive(Debug, Clone)]
enum InstanceKind {
    /// Exhaustively enumerated admissible-set pool per component.
    Enumerated { pools: Vec<Vec<RatedSet>> },
    /// Pricing oracle plus deterministic seed pool per component, and the
    /// pricing strategy the instance was compiled under. The tuning only
    /// steers *how* columns are searched for, never which answer converges
    /// (see [`crate::PricingMode`]), but it is part of the compiled state so
    /// an instance keeps answering under the options it was built with.
    Colgen {
        oracles: Vec<MaxWeightOracle>,
        seeds: Vec<Vec<RatedSet>>,
        tuning: PricingTuning,
    },
}

impl CompiledInstance {
    /// Compiles the query-independent state for `universe` under `model`,
    /// honoring `options.solver`, `options.decompose`, and
    /// `options.enumeration`. The universe is sorted and deduplicated; it
    /// must cover every link later queries mention.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyUniverse`] when `universe` is empty.
    pub fn compile<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
    ) -> Result<CompiledInstance, CoreError> {
        match options.solver {
            SolverKind::FullEnumeration => Self::compile_enumerated(model, universe, options),
            SolverKind::ColumnGeneration => {
                Self::compile_colgen_seeded(model, universe, options, &[])
            }
        }
    }

    fn normalized_universe(universe: &[LinkId]) -> Result<Vec<LinkId>, CoreError> {
        let mut universe = universe.to_vec();
        universe.sort_unstable();
        universe.dedup();
        if universe.is_empty() {
            return Err(CoreError::EmptyUniverse);
        }
        Ok(universe)
    }

    fn split_components<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
    ) -> Vec<Vec<LinkId>> {
        if options.decompose {
            crate::decomposition::potential_conflict_components(model, universe)
        } else {
            vec![universe.to_vec()]
        }
    }

    fn compile_enumerated<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
    ) -> Result<CompiledInstance, CoreError> {
        let universe = Self::normalized_universe(universe)?;
        let components = Self::split_components(model, &universe, options);
        let pools: Vec<Vec<RatedSet>> = components
            .iter()
            .map(|c| enumerate_admissible(model, c, &options.enumeration))
            .collect();
        Ok(CompiledInstance {
            universe,
            components,
            dust_epsilon: options.dust_epsilon,
            kind: InstanceKind::Enumerated { pools },
        })
    }

    /// Compiles a column-generation instance whose seed pools additionally
    /// include the caller-supplied `seed` columns — the compile-side of
    /// [`crate::available_bandwidth_colgen`]'s `seed` parameter. Used with
    /// `seed = &[]` this is exactly [`CompiledInstance::compile`] for
    /// [`SolverKind::ColumnGeneration`].
    pub(crate) fn compile_colgen_seeded<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
        seed: &[RatedSet],
    ) -> Result<CompiledInstance, CoreError> {
        let universe = Self::normalized_universe(universe)?;
        let components = Self::split_components(model, &universe, options);
        let oracles: Vec<MaxWeightOracle> = components
            .iter()
            .map(|c| MaxWeightOracle::new(model, c))
            .collect();
        let seeds: Vec<Vec<RatedSet>> = components
            .iter()
            .zip(&oracles)
            .map(|(component, oracle)| seed_pool(model, component, oracle, seed))
            .collect();
        Ok(CompiledInstance {
            universe,
            components,
            dust_epsilon: options.dust_epsilon,
            kind: InstanceKind::Colgen {
                oracles,
                seeds,
                tuning: PricingTuning::from_options(options),
            },
        })
    }

    /// The sorted, deduplicated link universe this instance was compiled
    /// for.
    pub fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    /// Number of precompiled columns: the full pool size under enumeration,
    /// the seed-pool size under column generation.
    pub fn num_columns(&self) -> usize {
        match &self.kind {
            InstanceKind::Enumerated { pools } => pools.iter().map(Vec::len).sum(),
            InstanceKind::Colgen { seeds, .. } => seeds.iter().map(Vec::len).sum(),
        }
    }

    /// Answers one Eq. 6 query against the compiled state. Every link of
    /// `background` and `new_path` must lie inside [`Self::universe`];
    /// results are bit-for-bit identical to
    /// [`crate::available_bandwidth`] called with the options this instance
    /// was compiled under, provided the universe matches
    /// [`crate::link_universe`] of the query.
    ///
    /// # Errors
    ///
    /// As [`crate::available_bandwidth`], plus
    /// [`CoreError::Invariant`] when a query link lies outside the compiled
    /// universe.
    pub fn query<M: LinkRateModel>(
        &self,
        model: &M,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<AvailableBandwidth, CoreError> {
        let mut demand = Vec::new();
        self.query_with_scratch(model, background, new_path, &mut demand)
    }

    /// [`Self::query`] with a caller-owned demand buffer — the form
    /// [`Session`] uses so warm queries allocate nothing for the demand
    /// vector.
    pub(crate) fn query_with_scratch<M: LinkRateModel>(
        &self,
        model: &M,
        background: &[Flow],
        new_path: &Path,
        demand: &mut Vec<f64>,
    ) -> Result<AvailableBandwidth, CoreError> {
        self.check_covers(new_path)?;
        demand_into(&self.universe, background, demand)?;
        match &self.kind {
            InstanceKind::Enumerated { pools } => {
                if self.components.len() > 1 {
                    solve_decomposed_with_pools(
                        pools,
                        &self.components,
                        &self.universe,
                        demand,
                        new_path,
                        self.dust_epsilon,
                    )
                } else {
                    let pool = pools
                        .first()
                        .ok_or(CoreError::Invariant("compiled instance has a component"))?;
                    solve_over_sets(pool, &self.universe, demand, new_path, self.dust_epsilon)
                }
            }
            InstanceKind::Colgen {
                oracles,
                seeds,
                tuning,
            } => {
                let oracle_refs: Vec<&MaxWeightOracle> = oracles.iter().collect();
                solve_with_pools(
                    model,
                    &self.universe,
                    &self.components,
                    &oracle_refs,
                    seeds.clone(),
                    demand,
                    new_path,
                    self.dust_epsilon,
                    tuning,
                )
                .map(|outcome| outcome.result)
            }
        }
    }

    /// Like [`Self::query`], but returns the full [`ColgenOutcome`]
    /// (final pool and pricing counters). Only valid on instances compiled
    /// with [`SolverKind::ColumnGeneration`].
    ///
    /// # Errors
    ///
    /// As [`Self::query`]; [`CoreError::Invariant`] on an enumeration
    /// instance.
    pub fn query_colgen<M: LinkRateModel>(
        &self,
        model: &M,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<ColgenOutcome, CoreError> {
        self.check_covers(new_path)?;
        let InstanceKind::Colgen {
            oracles,
            seeds,
            tuning,
        } = &self.kind
        else {
            return Err(CoreError::Invariant(
                "colgen query requires a column-generation instance",
            ));
        };
        let mut demand = Vec::new();
        demand_into(&self.universe, background, &mut demand)?;
        let oracle_refs: Vec<&MaxWeightOracle> = oracles.iter().collect();
        solve_with_pools(
            model,
            &self.universe,
            &self.components,
            &oracle_refs,
            seeds.clone(),
            &demand,
            new_path,
            self.dust_epsilon,
            tuning,
        )
    }

    /// Background links are validated by the demand vector's binary search;
    /// path links need an explicit check because a missing path link would
    /// otherwise silently drop its delivery constraint.
    fn check_covers(&self, new_path: &Path) -> Result<(), CoreError> {
        for link in new_path.links() {
            self.universe
                .binary_search(link)
                .map_err(|_| CoreError::Invariant("compiled universe covers the query path"))?;
        }
        Ok(())
    }
}

/// Counters describing a [`Session`]'s cache behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries that had to compile a new [`CompiledInstance`] (cold).
    pub compiles: usize,
    /// Queries answered by an already-compiled instance (warm).
    pub warm_queries: usize,
}

/// A query session over one model: caches a [`CompiledInstance`] per link
/// universe and answers `(background, path)` queries through them.
///
/// Each query derives its universe exactly like
/// [`crate::available_bandwidth`] does (via [`crate::link_universe`]), so
/// answers are bit-for-bit identical to one-shot solves; what the session
/// saves is the per-universe compilation — set enumeration, oracle bitmask
/// compilation, seed-pool construction — plus the universe/demand buffer
/// allocations, which are scratch space owned by the session and reused
/// across queries.
///
/// Typical use: routing admission evaluates many candidate paths against an
/// evolving background through one session; repeated universes (the common
/// case when candidates share links) hit the cache.
#[derive(Debug)]
pub struct Session<'m, M: LinkRateModel> {
    model: &'m M,
    options: AvailableBandwidthOptions,
    instances: BTreeMap<Vec<LinkId>, CompiledInstance>,
    universe_scratch: Vec<LinkId>,
    demand_scratch: Vec<f64>,
    stats: SessionStats,
}

impl<'m, M: LinkRateModel> Session<'m, M> {
    /// Creates an empty session over `model`; instances compile lazily on
    /// first use of each universe.
    pub fn new(model: &'m M, options: AvailableBandwidthOptions) -> Session<'m, M> {
        Session {
            model,
            options,
            instances: BTreeMap::new(),
            universe_scratch: Vec::new(),
            demand_scratch: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// The model this session solves against.
    pub fn model(&self) -> &'m M {
        self.model
    }

    /// The options every instance of this session compiles under.
    pub fn options(&self) -> &AvailableBandwidthOptions {
        &self.options
    }

    /// Cache counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Number of distinct universes compiled so far.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Answers one Eq. 6 query, compiling and caching the universe's
    /// instance on first sight. Bit-for-bit identical to
    /// [`crate::available_bandwidth`] with the session's options.
    ///
    /// # Errors
    ///
    /// As [`crate::available_bandwidth`].
    pub fn query(
        &mut self,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<AvailableBandwidth, CoreError> {
        link_universe_into(background, new_path, &mut self.universe_scratch);
        if self.universe_scratch.is_empty() {
            return Err(CoreError::EmptyUniverse);
        }
        let instance = match self.instances.get(self.universe_scratch.as_slice()) {
            Some(instance) => {
                self.stats.warm_queries += 1;
                instance
            }
            None => {
                let compiled =
                    CompiledInstance::compile(self.model, &self.universe_scratch, &self.options)?;
                self.stats.compiles += 1;
                self.instances
                    .entry(self.universe_scratch.clone())
                    .or_insert(compiled)
            }
        };
        instance.query_with_scratch(self.model, background, new_path, &mut self.demand_scratch)
    }

    /// The compiled instance for the universe of `(background, new_path)`,
    /// compiling it on first sight — for callers that want to inspect or
    /// share the compiled state directly.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyUniverse`] when the query involves no links.
    pub fn instance_for(
        &mut self,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<&CompiledInstance, CoreError> {
        link_universe_into(background, new_path, &mut self.universe_scratch);
        if self.universe_scratch.is_empty() {
            return Err(CoreError::EmptyUniverse);
        }
        if !self
            .instances
            .contains_key(self.universe_scratch.as_slice())
        {
            let compiled =
                CompiledInstance::compile(self.model, &self.universe_scratch, &self.options)?;
            self.stats.compiles += 1;
            self.instances
                .insert(self.universe_scratch.clone(), compiled);
        }
        self.instances
            .get(self.universe_scratch.as_slice())
            .ok_or(CoreError::Invariant("instance was just inserted"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::available::{available_bandwidth, link_universe};
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// `n` disjoint links in a row; conflicts as declared.
    fn line_model(
        n: usize,
        rates: &[Rate],
        conflicts: &[(usize, usize)],
    ) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, rates);
        }
        for &(i, j) in conflicts {
            b = b.conflict_all(links[i], links[j]);
        }
        (b.build(), links)
    }

    #[test]
    fn warm_queries_match_one_shot_solves_bitwise() {
        let (m, links) = line_model(3, &[r(54.0), r(18.0)], &[(0, 1), (1, 2)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        for solver in [SolverKind::FullEnumeration, SolverKind::ColumnGeneration] {
            let options = AvailableBandwidthOptions {
                solver,
                ..AvailableBandwidthOptions::default()
            };
            let mut session = Session::new(&m, options);
            for bg in [0.0, 10.0, 27.0, 10.0, 0.0] {
                let background = vec![Flow::new(bg_path.clone(), bg).unwrap()];
                let warm = session.query(&background, &new_path).unwrap();
                let cold = available_bandwidth(&m, &background, &new_path, &options).unwrap();
                assert_eq!(
                    warm.bandwidth_mbps().to_bits(),
                    cold.bandwidth_mbps().to_bits(),
                    "solver {solver:?}, bg {bg}"
                );
                assert_eq!(warm, cold);
            }
            // Five queries over one universe: one compile, four warm hits.
            assert_eq!(session.stats().compiles, 1);
            assert_eq!(session.stats().warm_queries, 4);
            assert_eq!(session.instance_count(), 1);
        }
    }

    #[test]
    fn distinct_universes_get_distinct_instances() {
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1)]);
        let p0 = Path::new(m.topology(), vec![links[0]]).unwrap();
        let p2 = Path::new(m.topology(), vec![links[2]]).unwrap();
        let mut session = Session::new(&m, AvailableBandwidthOptions::default());
        session.query(&[], &p0).unwrap();
        session.query(&[], &p2).unwrap();
        session.query(&[], &p0).unwrap();
        assert_eq!(session.stats().compiles, 2);
        assert_eq!(session.stats().warm_queries, 1);
    }

    #[test]
    fn instance_rejects_queries_outside_its_universe() {
        let (m, links) = line_model(2, &[r(54.0)], &[]);
        let p0 = Path::new(m.topology(), vec![links[0]]).unwrap();
        let p1 = Path::new(m.topology(), vec![links[1]]).unwrap();
        let universe = link_universe(&[], &p0);
        let instance =
            CompiledInstance::compile(&m, &universe, &AvailableBandwidthOptions::default())
                .unwrap();
        assert_eq!(instance.universe(), &universe[..]);
        assert!(instance.query(&m, &[], &p1).is_err());
    }

    #[test]
    fn decomposed_instances_answer_like_the_free_function() {
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[2]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let background = vec![Flow::new(bg_path, 20.0).unwrap()];
        for solver in [SolverKind::FullEnumeration, SolverKind::ColumnGeneration] {
            let options = AvailableBandwidthOptions {
                decompose: true,
                solver,
                ..AvailableBandwidthOptions::default()
            };
            let mut session = Session::new(&m, options);
            let warm = session.query(&background, &new_path).unwrap();
            let again = session.query(&background, &new_path).unwrap();
            let cold = available_bandwidth(&m, &background, &new_path, &options).unwrap();
            assert_eq!(warm, cold);
            assert_eq!(again, cold);
        }
    }

    #[test]
    fn colgen_query_on_enumeration_instance_is_an_error() {
        let (m, links) = line_model(1, &[r(54.0)], &[]);
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let universe = link_universe(&[], &p);
        let instance =
            CompiledInstance::compile(&m, &universe, &AvailableBandwidthOptions::default())
                .unwrap();
        assert!(instance.query_colgen(&m, &[], &p).is_err());
    }
}
