//! Compiled query sessions: the two-phase split between **topology
//! compilation** and **per-query solving** for the Eq. 6 LP.
//!
//! Every Eq. 6 query works over a *link universe* (the union of the
//! background paths' links and the new path's links). For a fixed model and
//! universe, a large part of the solve is query-independent: the conflict
//! structure, the enumerated independent-set pool (under
//! [`SolverKind::FullEnumeration`]), the compiled-bitmask pricing oracle and
//! its deterministic seed pool (under [`SolverKind::ColumnGeneration`]), and
//! the potential-conflict component split. [`CompiledInstance`] captures
//! exactly that state — as an assembly of independently content-hashed
//! per-component [`CompiledUnit`]s — built once; [`Session`] caches
//! instances per universe and answers many `(background, path)` queries
//! against them, reusing scratch buffers for the universe and demand vectors
//! so the warm query path performs no recompilation.
//!
//! # Determinism
//!
//! A [`CompiledInstance`] is a pure function of `(model, universe, options)`
//! — it carries **no** state that evolves across queries. In particular the
//! column-generation seed pool is the deterministic
//! singleton-plus-greedy-cover seed, *not* the converged pool of earlier
//! queries: carrying converged columns forward would make low-order float
//! bits depend on query order. Consequently every session answer is
//! bit-for-bit identical to a fresh one-shot solve of the same query, the
//! free functions [`crate::available_bandwidth`] and
//! [`crate::available_bandwidth_colgen`] are thin wrappers over a one-shot
//! session, and a warm session replaying queries in any order reproduces the
//! cold answers exactly (see `tests/proptest_session.rs`).
//!
//! # Dynamic topologies
//!
//! When the topology changes — nodes move, join, leave; link rates shift —
//! [`CompiledInstance::apply_delta`] rebuilds only the components a
//! [`TopologyDelta`] actually touched. Untouched components are reused
//! *structurally*: the new instance points at the same `Arc`'d units, no
//! rehash, no recompile. Dirty components are content-hashed first and
//! looked up in a [`UnitCache`] (a node oscillating between two positions
//! hits the cache), and only genuine cache misses re-enumerate or
//! re-compile oracles. Because unit compilation is a deterministic pure
//! function of the hashed inputs, the incremental instance is **bit-for-bit
//! identical** to a fresh [`CompiledInstance::compile`] against the new
//! model (see `tests/proptest_delta.rs`). The reuse leans on the delta
//! honesty contract spelled out on [`TopologyDelta`]: an under-reported
//! delta leaves stale compiled state behind.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::available::{
    demand_into, link_universe_into, solve_decomposed_with_pools, solve_over_sets,
    AvailableBandwidth, AvailableBandwidthOptions, SolverKind,
};
use crate::colgen::{solve_with_pools, ColgenOutcome, PricingTuning};
use crate::decomposition::{components_from_adjacency, potential_conflict_adjacency};
use crate::error::CoreError;
use crate::flow::Flow;
use crate::units::{unit_content_hash, CompiledUnit, DeltaReuse, UnitCache, UnitKind};
use awb_net::{LinkId, LinkRateModel, Path, TopologyDelta};
use awb_sets::{MaxWeightOracle, RatedSet};

/// The query-independent, precompiled state for Eq. 6 solves over one
/// `(model, universe, options)` triple: an assembly of per-component
/// [`CompiledUnit`]s.
///
/// Under [`SolverKind::FullEnumeration`] each unit holds its component's
/// exhaustive independent-set pool; under [`SolverKind::ColumnGeneration`]
/// its compiled max-weight pricing oracle plus the deterministic seed pool.
/// Both honor `options.decompose` by splitting the universe into
/// potential-conflict components first (without decomposition the instance
/// is a single whole-universe unit).
///
/// Instances are immutable once compiled: [`CompiledInstance::query`] takes
/// `&self`, so a single instance can serve concurrent queries (the service
/// layer shares instances behind `Arc`). Units are shared by `Arc` too,
/// which is what lets [`CompiledInstance::apply_delta`] produce a successor
/// instance that aliases every component the delta did not touch.
#[derive(Debug, Clone)]
pub struct CompiledInstance {
    universe: Vec<LinkId>,
    components: Vec<Vec<LinkId>>,
    units: Vec<Arc<CompiledUnit>>,
    /// Potential-conflict adjacency over `universe` (bitset rows), stored
    /// only when compiled with `options.decompose` — the splice target for
    /// incremental delta application. `None` otherwise, so the
    /// `decompose: false` default pays nothing for it.
    adjacency: Option<Vec<Vec<u64>>>,
    /// Caller-supplied colgen seed columns, kept so dirty units recompile
    /// under exactly the inputs the originals were built from.
    seed: Vec<RatedSet>,
    options: AvailableBandwidthOptions,
}

impl CompiledInstance {
    /// Compiles the query-independent state for `universe` under `model`,
    /// honoring `options.solver`, `options.decompose`, and
    /// `options.enumeration`. The universe is sorted and deduplicated; it
    /// must cover every link later queries mention.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyUniverse`] when `universe` is empty.
    pub fn compile<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
    ) -> Result<CompiledInstance, CoreError> {
        Self::assemble(model, universe, options, &[], None).map(|(instance, _)| instance)
    }

    /// [`CompiledInstance::compile`] consulting (and feeding) a
    /// content-addressed [`UnitCache`]: components whose compile-input hash
    /// is already cached reuse the cached unit instead of recompiling.
    /// Returns the reuse counters alongside the instance.
    ///
    /// # Errors
    ///
    /// As [`CompiledInstance::compile`].
    pub fn compile_with_cache<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
        cache: &mut UnitCache,
    ) -> Result<(CompiledInstance, DeltaReuse), CoreError> {
        Self::assemble(model, universe, options, &[], Some(cache))
    }

    /// Compiles a column-generation instance whose seed pools additionally
    /// include the caller-supplied `seed` columns — the compile-side of
    /// [`crate::available_bandwidth_colgen`]'s `seed` parameter. Used with
    /// `seed = &[]` this is exactly [`CompiledInstance::compile`] for
    /// [`SolverKind::ColumnGeneration`].
    pub(crate) fn compile_colgen_seeded<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
        seed: &[RatedSet],
    ) -> Result<CompiledInstance, CoreError> {
        Self::assemble(model, universe, options, seed, None).map(|(instance, _)| instance)
    }

    fn normalized_universe(universe: &[LinkId]) -> Result<Vec<LinkId>, CoreError> {
        let mut universe = universe.to_vec();
        universe.sort_unstable();
        universe.dedup();
        if universe.is_empty() {
            return Err(CoreError::EmptyUniverse);
        }
        Ok(universe)
    }

    /// The one compile path: normalize, split, then per component either
    /// pull an identically-hashed unit out of `cache` or compile it.
    fn assemble<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        options: &AvailableBandwidthOptions,
        seed: &[RatedSet],
        cache: Option<&mut UnitCache>,
    ) -> Result<(CompiledInstance, DeltaReuse), CoreError> {
        let universe = Self::normalized_universe(universe)?;
        let (adjacency, components) = if options.decompose {
            let adjacency = potential_conflict_adjacency(model, &universe);
            let components = components_from_adjacency(&universe, &adjacency);
            (Some(adjacency), components)
        } else {
            (None, vec![universe.clone()])
        };
        let mut reuse = DeltaReuse::default();
        let units =
            Self::units_for_components(model, &components, options, seed, cache, &mut reuse);
        Ok((
            CompiledInstance {
                universe,
                components,
                units,
                adjacency,
                seed: seed.to_vec(),
                options: *options,
            },
            reuse,
        ))
    }

    fn units_for_components<M: LinkRateModel>(
        model: &M,
        components: &[Vec<LinkId>],
        options: &AvailableBandwidthOptions,
        seed: &[RatedSet],
        mut cache: Option<&mut UnitCache>,
        reuse: &mut DeltaReuse,
    ) -> Vec<Arc<CompiledUnit>> {
        components
            .iter()
            .map(|component| {
                if let Some(cache) = cache.as_deref_mut() {
                    let hash = unit_content_hash(model, component, options, seed);
                    if let Some(unit) = cache.lookup(hash) {
                        reuse.unit_cache_hits += 1;
                        return unit;
                    }
                    let unit = Arc::new(CompiledUnit::compile(model, component, options, seed));
                    reuse.units_compiled += 1;
                    cache.publish(&unit);
                    unit
                } else {
                    reuse.units_compiled += 1;
                    Arc::new(CompiledUnit::compile(model, component, options, seed))
                }
            })
            .collect()
    }

    /// The sorted, deduplicated link universe this instance was compiled
    /// for.
    pub fn universe(&self) -> &[LinkId] {
        &self.universe
    }

    /// The potential-conflict components this instance is split into (a
    /// single whole-universe component unless compiled with
    /// `options.decompose`).
    pub fn components(&self) -> &[Vec<LinkId>] {
        &self.components
    }

    /// The per-component compiled units, parallel to
    /// [`Self::components`]. Exposed so callers can observe structural
    /// sharing (`Arc::ptr_eq`) across delta applications and publish units
    /// into a shared [`UnitCache`].
    pub fn units(&self) -> &[Arc<CompiledUnit>] {
        &self.units
    }

    /// The options this instance was compiled under.
    pub fn options(&self) -> &AvailableBandwidthOptions {
        &self.options
    }

    /// Number of precompiled columns: the full pool size under enumeration,
    /// the seed-pool size under column generation.
    pub fn num_columns(&self) -> usize {
        self.units.iter().map(|u| u.num_columns()).sum()
    }

    /// Rebuilds this instance against `model` (the post-delta model),
    /// recompiling **only** the components `delta` touched and structurally
    /// reusing the rest — see the module docs for the reuse ladder and the
    /// bit-identity guarantee.
    ///
    /// The instance's universe must survive the delta (no universe link in
    /// `delta.removed_links`); membership is otherwise unchanged — links
    /// that fell out of range simply compile to empty alone-rate sets.
    /// Instances compiled without `options.decompose` have no component
    /// structure to exploit and fall back to a full (cache-assisted)
    /// recompile when dirtied.
    ///
    /// # Errors
    ///
    /// [`CoreError::Invariant`] when `delta` removes a link of this
    /// instance's universe — such an instance cannot be expressed under the
    /// new model and should be dropped by the caller.
    // awb-audit: hot
    pub fn apply_delta<M: LinkRateModel>(
        &self,
        model: &M,
        delta: &TopologyDelta,
        cache: &mut UnitCache,
    ) -> Result<(CompiledInstance, DeltaReuse), CoreError> {
        if delta
            .removed_links
            .iter()
            .any(|l| self.universe.binary_search(l).is_ok())
        {
            return Err(CoreError::Invariant(
                "delta keeps every universe link alive",
            ));
        }
        let touched = delta.touched_links(model.topology());
        let dirty: Vec<usize> = touched
            .iter()
            .filter_map(|l| self.universe.binary_search(l).ok())
            .collect();
        let mut reuse = DeltaReuse {
            dirty_links: dirty.len(),
            ..DeltaReuse::default()
        };
        if dirty.is_empty() {
            // Nothing in this universe moved: the instance is already the
            // fresh compile, bit-for-bit.
            reuse.units_reused = self.units.len();
            return Ok((self.clone(), reuse));
        }
        let Some(old_adjacency) = self.adjacency.as_ref() else {
            // No stored component structure (decompose: false) — recompile
            // whole, still letting the cache dedupe the single unit.
            let (instance, mut inner) = Self::assemble(
                model,
                &self.universe,
                &self.options,
                &self.seed,
                Some(cache),
            )?;
            inner.dirty_links = reuse.dirty_links;
            inner.full_recompiles = 1;
            return Ok((instance, inner));
        };

        // Splice: keep clean-pair bits, recompute every pair involving a
        // dirty link under the new model.
        let n = self.universe.len();
        let mut adjacency = old_adjacency.clone();
        let mut is_dirty = vec![false; n];
        for &i in &dirty {
            is_dirty[i] = true;
        }
        for &i in &dirty {
            for word in &mut adjacency[i] {
                *word = 0;
            }
        }
        for (j, row) in adjacency.iter_mut().enumerate() {
            if !is_dirty[j] {
                for &i in &dirty {
                    row[i / 64] &= !(1 << (i % 64));
                }
            }
        }
        let rates: Vec<Vec<awb_phy::Rate>> = self
            .universe
            .iter()
            .map(|&l| model.alone_rates(l))
            .collect();
        for &i in &dirty {
            for j in 0..n {
                if j == i || (is_dirty[j] && j < i) {
                    continue; // dirty-dirty pairs recompute once, as (i, j>i)
                }
                let conflicting = rates[i].iter().any(|&ra| {
                    rates[j]
                        .iter()
                        .any(|&rb| model.conflicts((self.universe[i], ra), (self.universe[j], rb)))
                });
                if conflicting {
                    adjacency[i][j / 64] |= 1 << (j % 64);
                    adjacency[j][i / 64] |= 1 << (i % 64);
                }
            }
        }
        let components = components_from_adjacency(&self.universe, &adjacency);

        // Reuse ladder per new component: structurally clean (same
        // membership as an old component, no dirty member) → alias the old
        // Arc without rehashing; otherwise hash → cache → compile.
        let old_by_first: BTreeMap<LinkId, usize> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (c[0], i))
            .collect();
        let units: Vec<Arc<CompiledUnit>> = components
            .iter()
            .map(|component| {
                let clean = component
                    .iter()
                    .all(|l| !is_dirty[self.universe.binary_search(l).unwrap_or(n)]);
                if clean {
                    if let Some(&oi) = old_by_first.get(&component[0]) {
                        if self.components[oi] == *component {
                            reuse.units_reused += 1;
                            return Arc::clone(&self.units[oi]);
                        }
                    }
                }
                let hash = unit_content_hash(model, component, &self.options, &self.seed);
                if let Some(unit) = cache.lookup(hash) {
                    reuse.unit_cache_hits += 1;
                    return unit;
                }
                let unit = Arc::new(CompiledUnit::compile(
                    model,
                    component,
                    &self.options,
                    &self.seed,
                ));
                reuse.units_compiled += 1;
                cache.publish(&unit);
                unit
            })
            .collect();
        Ok((
            CompiledInstance {
                universe: self.universe.clone(),
                components,
                units,
                adjacency: Some(adjacency),
                seed: self.seed.clone(),
                options: self.options,
            },
            reuse,
        ))
    }

    /// Answers one Eq. 6 query against the compiled state. Every link of
    /// `background` and `new_path` must lie inside [`Self::universe`];
    /// results are bit-for-bit identical to
    /// [`crate::available_bandwidth`] called with the options this instance
    /// was compiled under, provided the universe matches
    /// [`crate::link_universe`] of the query.
    ///
    /// # Errors
    ///
    /// As [`crate::available_bandwidth`], plus
    /// [`CoreError::Invariant`] when a query link lies outside the compiled
    /// universe.
    pub fn query<M: LinkRateModel>(
        &self,
        model: &M,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<AvailableBandwidth, CoreError> {
        let mut demand = Vec::new();
        self.query_with_scratch(model, background, new_path, &mut demand)
    }

    /// [`Self::query`] with a caller-owned demand buffer — the form
    /// [`Session`] uses so warm queries allocate nothing for the demand
    /// vector.
    pub(crate) fn query_with_scratch<M: LinkRateModel>(
        &self,
        model: &M,
        background: &[Flow],
        new_path: &Path,
        demand: &mut Vec<f64>,
    ) -> Result<AvailableBandwidth, CoreError> {
        self.check_covers(new_path)?;
        demand_into(&self.universe, background, demand)?;
        match self.options.solver {
            SolverKind::FullEnumeration => {
                if self.components.len() > 1 {
                    let pools: Vec<&[RatedSet]> =
                        self.units.iter().map(|u| u.enumerated_pool()).collect();
                    solve_decomposed_with_pools(
                        &pools,
                        &self.components,
                        &self.universe,
                        demand,
                        new_path,
                        self.options.dust_epsilon,
                    )
                } else {
                    let pool = self
                        .units
                        .first()
                        .ok_or(CoreError::Invariant("compiled instance has a component"))?
                        .enumerated_pool();
                    solve_over_sets(
                        pool,
                        &self.universe,
                        demand,
                        new_path,
                        self.options.dust_epsilon,
                    )
                }
            }
            SolverKind::ColumnGeneration => {
                let (oracle_refs, seeds) = self.colgen_parts();
                solve_with_pools(
                    model,
                    &self.universe,
                    &self.components,
                    &oracle_refs,
                    seeds,
                    demand,
                    new_path,
                    self.options.dust_epsilon,
                    &PricingTuning::from_options(&self.options),
                )
                .map(|outcome| outcome.result)
            }
        }
    }

    /// Like [`Self::query`], but returns the full [`ColgenOutcome`]
    /// (final pool and pricing counters). Only valid on instances compiled
    /// with [`SolverKind::ColumnGeneration`].
    ///
    /// # Errors
    ///
    /// As [`Self::query`]; [`CoreError::Invariant`] on an enumeration
    /// instance.
    pub fn query_colgen<M: LinkRateModel>(
        &self,
        model: &M,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<ColgenOutcome, CoreError> {
        self.check_covers(new_path)?;
        if self.options.solver != SolverKind::ColumnGeneration {
            return Err(CoreError::Invariant(
                "colgen query requires a column-generation instance",
            ));
        }
        let mut demand = Vec::new();
        demand_into(&self.universe, background, &mut demand)?;
        let (oracle_refs, seeds) = self.colgen_parts();
        solve_with_pools(
            model,
            &self.universe,
            &self.components,
            &oracle_refs,
            seeds,
            &demand,
            new_path,
            self.options.dust_epsilon,
            &PricingTuning::from_options(&self.options),
        )
    }

    /// Per-unit oracle references and cloned seed pools, in component order.
    /// Only called on column-generation instances.
    fn colgen_parts(&self) -> (Vec<&MaxWeightOracle>, Vec<Vec<RatedSet>>) {
        self.units
            .iter()
            .map(|u| match u.kind() {
                UnitKind::Colgen { oracle, seeds } => (oracle, seeds.clone()),
                UnitKind::Enumerated { .. } => {
                    // awb-audit: allow(no-panic-in-lib) — unit kind always matches the solver kind
                    unreachable!("solver kind and unit kind are compiled together")
                }
            })
            .unzip()
    }

    /// Background links are validated by the demand vector's binary search;
    /// path links need an explicit check because a missing path link would
    /// otherwise silently drop its delivery constraint.
    fn check_covers(&self, new_path: &Path) -> Result<(), CoreError> {
        for link in new_path.links() {
            self.universe
                .binary_search(link)
                .map_err(|_| CoreError::Invariant("compiled universe covers the query path"))?;
        }
        Ok(())
    }
}

/// Counters describing a [`Session`]'s cache and delta behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries that had to compile a new [`CompiledInstance`] (cold).
    pub compiles: usize,
    /// Queries answered by an already-compiled instance (warm).
    pub warm_queries: usize,
    /// [`Session::apply_delta`] calls so far.
    pub delta_applications: usize,
    /// Accumulated per-component reuse counters across all delta
    /// applications.
    pub delta_reuse: DeltaReuse,
}

/// A query session over one model: caches a [`CompiledInstance`] per link
/// universe and answers `(background, path)` queries through them.
///
/// Each query derives its universe exactly like
/// [`crate::available_bandwidth`] does (via [`crate::link_universe`]), so
/// answers are bit-for-bit identical to one-shot solves; what the session
/// saves is the per-universe compilation — set enumeration, oracle bitmask
/// compilation, seed-pool construction — plus the universe/demand buffer
/// allocations, which are scratch space owned by the session and reused
/// across queries.
///
/// Typical use: routing admission evaluates many candidate paths against an
/// evolving background through one session; repeated universes (the common
/// case when candidates share links) hit the cache. Under mobility,
/// [`Session::apply_delta`] migrates every cached instance to the next
/// topology epoch, recompiling only the touched components.
#[derive(Debug)]
pub struct Session<'m, M: LinkRateModel> {
    model: &'m M,
    options: AvailableBandwidthOptions,
    instances: BTreeMap<Vec<LinkId>, CompiledInstance>,
    unit_cache: UnitCache,
    universe_scratch: Vec<LinkId>,
    demand_scratch: Vec<f64>,
    stats: SessionStats,
}

impl<'m, M: LinkRateModel> Session<'m, M> {
    /// Creates an empty session over `model`; instances compile lazily on
    /// first use of each universe.
    pub fn new(model: &'m M, options: AvailableBandwidthOptions) -> Session<'m, M> {
        Session {
            model,
            options,
            instances: BTreeMap::new(),
            unit_cache: UnitCache::default(),
            universe_scratch: Vec::new(),
            demand_scratch: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// The model this session solves against.
    pub fn model(&self) -> &'m M {
        self.model
    }

    /// The options every instance of this session compiles under.
    pub fn options(&self) -> &AvailableBandwidthOptions {
        &self.options
    }

    /// Cache counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Number of distinct universes compiled so far.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Hit/miss counters of the session's content-addressed unit cache.
    pub fn unit_cache_stats(&self) -> (u64, u64) {
        self.unit_cache.stats()
    }

    /// Migrates the session to `model` — the post-delta topology —
    /// rebuilding every cached instance through
    /// [`CompiledInstance::apply_delta`] and returning the accumulated
    /// reuse counters. Instances whose universe `delta` removed a link from
    /// are dropped (they cannot exist under the new model; a later query
    /// over a surviving universe recompiles as usual).
    ///
    /// The session's unit cache persists across epochs, so components that
    /// reappear (a node moving back, periodic mobility) rebuild without
    /// compiling.
    // awb-audit: hot
    pub fn apply_delta(&mut self, model: &'m M, delta: &TopologyDelta) -> DeltaReuse {
        let mut total = DeltaReuse::default();
        let old = std::mem::take(&mut self.instances);
        for (universe, instance) in old {
            match instance.apply_delta(model, delta, &mut self.unit_cache) {
                Ok((next, reuse)) => {
                    total.absorb(reuse);
                    self.instances.insert(universe, next);
                }
                Err(_) => {
                    // Universe lost a link to the delta: unrepresentable
                    // under the new model, drop it.
                    total.full_recompiles += 1;
                }
            }
        }
        self.model = model;
        self.unit_cache.end_epoch();
        self.stats.delta_applications += 1;
        self.stats.delta_reuse.absorb(total);
        total
    }

    /// Answers one Eq. 6 query, compiling and caching the universe's
    /// instance on first sight. Bit-for-bit identical to
    /// [`crate::available_bandwidth`] with the session's options.
    ///
    /// # Errors
    ///
    /// As [`crate::available_bandwidth`].
    pub fn query(
        &mut self,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<AvailableBandwidth, CoreError> {
        link_universe_into(background, new_path, &mut self.universe_scratch);
        if self.universe_scratch.is_empty() {
            return Err(CoreError::EmptyUniverse);
        }
        let instance = match self.instances.get(self.universe_scratch.as_slice()) {
            Some(instance) => {
                self.stats.warm_queries += 1;
                instance
            }
            None => {
                let (compiled, _) = CompiledInstance::compile_with_cache(
                    self.model,
                    &self.universe_scratch,
                    &self.options,
                    &mut self.unit_cache,
                )?;
                self.stats.compiles += 1;
                self.instances
                    .entry(self.universe_scratch.clone())
                    .or_insert(compiled)
            }
        };
        instance.query_with_scratch(self.model, background, new_path, &mut self.demand_scratch)
    }

    /// The compiled instance for the universe of `(background, new_path)`,
    /// compiling it on first sight — for callers that want to inspect or
    /// share the compiled state directly.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyUniverse`] when the query involves no links.
    pub fn instance_for(
        &mut self,
        background: &[Flow],
        new_path: &Path,
    ) -> Result<&CompiledInstance, CoreError> {
        link_universe_into(background, new_path, &mut self.universe_scratch);
        if self.universe_scratch.is_empty() {
            return Err(CoreError::EmptyUniverse);
        }
        if !self
            .instances
            .contains_key(self.universe_scratch.as_slice())
        {
            let (compiled, _) = CompiledInstance::compile_with_cache(
                self.model,
                &self.universe_scratch,
                &self.options,
                &mut self.unit_cache,
            )?;
            self.stats.compiles += 1;
            self.instances
                .insert(self.universe_scratch.clone(), compiled);
        }
        self.instances
            .get(self.universe_scratch.as_slice())
            .ok_or(CoreError::Invariant("instance was just inserted"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::available::{available_bandwidth, link_universe};
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// `n` disjoint links in a row; conflicts as declared.
    fn line_model(
        n: usize,
        rates: &[Rate],
        conflicts: &[(usize, usize)],
    ) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, rates);
        }
        for &(i, j) in conflicts {
            b = b.conflict_all(links[i], links[j]);
        }
        (b.build(), links)
    }

    #[test]
    fn warm_queries_match_one_shot_solves_bitwise() {
        let (m, links) = line_model(3, &[r(54.0), r(18.0)], &[(0, 1), (1, 2)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        for solver in [SolverKind::FullEnumeration, SolverKind::ColumnGeneration] {
            let options = AvailableBandwidthOptions {
                solver,
                ..AvailableBandwidthOptions::default()
            };
            let mut session = Session::new(&m, options);
            for bg in [0.0, 10.0, 27.0, 10.0, 0.0] {
                let background = vec![Flow::new(bg_path.clone(), bg).unwrap()];
                let warm = session.query(&background, &new_path).unwrap();
                let cold = available_bandwidth(&m, &background, &new_path, &options).unwrap();
                assert_eq!(
                    warm.bandwidth_mbps().to_bits(),
                    cold.bandwidth_mbps().to_bits(),
                    "solver {solver:?}, bg {bg}"
                );
                assert_eq!(warm, cold);
            }
            // Five queries over one universe: one compile, four warm hits.
            assert_eq!(session.stats().compiles, 1);
            assert_eq!(session.stats().warm_queries, 4);
            assert_eq!(session.instance_count(), 1);
        }
    }

    #[test]
    fn distinct_universes_get_distinct_instances() {
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1)]);
        let p0 = Path::new(m.topology(), vec![links[0]]).unwrap();
        let p2 = Path::new(m.topology(), vec![links[2]]).unwrap();
        let mut session = Session::new(&m, AvailableBandwidthOptions::default());
        session.query(&[], &p0).unwrap();
        session.query(&[], &p2).unwrap();
        session.query(&[], &p0).unwrap();
        assert_eq!(session.stats().compiles, 2);
        assert_eq!(session.stats().warm_queries, 1);
    }

    #[test]
    fn instance_rejects_queries_outside_its_universe() {
        let (m, links) = line_model(2, &[r(54.0)], &[]);
        let p0 = Path::new(m.topology(), vec![links[0]]).unwrap();
        let p1 = Path::new(m.topology(), vec![links[1]]).unwrap();
        let universe = link_universe(&[], &p0);
        let instance =
            CompiledInstance::compile(&m, &universe, &AvailableBandwidthOptions::default())
                .unwrap();
        assert_eq!(instance.universe(), &universe[..]);
        assert!(instance.query(&m, &[], &p1).is_err());
    }

    #[test]
    fn decomposed_instances_answer_like_the_free_function() {
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[2]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let background = vec![Flow::new(bg_path, 20.0).unwrap()];
        for solver in [SolverKind::FullEnumeration, SolverKind::ColumnGeneration] {
            let options = AvailableBandwidthOptions {
                decompose: true,
                solver,
                ..AvailableBandwidthOptions::default()
            };
            let mut session = Session::new(&m, options);
            let warm = session.query(&background, &new_path).unwrap();
            let again = session.query(&background, &new_path).unwrap();
            let cold = available_bandwidth(&m, &background, &new_path, &options).unwrap();
            assert_eq!(warm, cold);
            assert_eq!(again, cold);
        }
    }

    #[test]
    fn colgen_query_on_enumeration_instance_is_an_error() {
        let (m, links) = line_model(1, &[r(54.0)], &[]);
        let p = Path::new(m.topology(), vec![links[0]]).unwrap();
        let universe = link_universe(&[], &p);
        let instance =
            CompiledInstance::compile(&m, &universe, &AvailableBandwidthOptions::default())
                .unwrap();
        assert!(instance.query_colgen(&m, &[], &p).is_err());
    }

    /// Two independent conflict groups; a rate change inside one group must
    /// leave the other group's unit `Arc`-identical and produce answers
    /// bit-identical to a fresh compile.
    #[test]
    fn apply_delta_reuses_clean_components_and_matches_fresh() {
        let build = |low_rate: bool| {
            let mut t = Topology::new();
            let mut links = Vec::new();
            for i in 0..4 {
                let a = t.add_node(f64::from(i) * 10.0, 0.0);
                let b = t.add_node(f64::from(i) * 10.0 + 5.0, 0.0);
                links.push(t.add_link(a, b).unwrap());
            }
            let mut b = DeclarativeModel::builder(t);
            for (i, &l) in links.iter().enumerate() {
                if i == 0 && low_rate {
                    b = b.alone_rates(l, &[r(18.0)]);
                } else {
                    b = b.alone_rates(l, &[r(54.0), r(18.0)]);
                }
            }
            b = b
                .conflict_all(links[0], links[1])
                .conflict_all(links[2], links[3]);
            (b.build(), links)
        };
        let (m_old, links) = build(false);
        let (m_new, _) = build(true);
        let delta = TopologyDelta::between(&m_old, &m_new);
        assert_eq!(delta.rate_changed_links, vec![links[0]]);
        for solver in [SolverKind::FullEnumeration, SolverKind::ColumnGeneration] {
            let options = AvailableBandwidthOptions {
                decompose: true,
                solver,
                ..AvailableBandwidthOptions::default()
            };
            let old = CompiledInstance::compile(&m_old, &links, &options).unwrap();
            let mut cache = UnitCache::default();
            let (next, reuse) = old.apply_delta(&m_new, &delta, &mut cache).unwrap();
            assert_eq!(reuse.units_reused, 1, "links 2-3 component untouched");
            assert_eq!(reuse.units_compiled, 1, "links 0-1 component dirty");
            assert_eq!(reuse.dirty_links, 1);
            // Structural reuse: the clean component's unit is the same Arc.
            let clean_old = old
                .components()
                .iter()
                .position(|c| c.contains(&links[2]))
                .unwrap();
            let clean_new = next
                .components()
                .iter()
                .position(|c| c.contains(&links[2]))
                .unwrap();
            assert!(Arc::ptr_eq(
                &old.units()[clean_old],
                &next.units()[clean_new]
            ));
            // Bit-identity with a fresh compile.
            let fresh = CompiledInstance::compile(&m_new, &links, &options).unwrap();
            let path = Path::new(m_new.topology(), vec![links[0]]).unwrap();
            let bg =
                vec![Flow::new(Path::new(m_new.topology(), vec![links[1]]).unwrap(), 5.0).unwrap()];
            let a = next.query(&m_new, &bg, &path).unwrap();
            let b = fresh.query(&m_new, &bg, &path).unwrap();
            assert_eq!(a.bandwidth_mbps().to_bits(), b.bandwidth_mbps().to_bits());
            assert_eq!(a, b);
            assert_eq!(next.num_columns(), fresh.num_columns());
            assert_eq!(next.components(), fresh.components());
        }
    }

    /// A rate change that merges two components (new conflict appears) and
    /// the reverse split must both track a fresh compile.
    #[test]
    fn apply_delta_handles_component_merges_and_splits() {
        let build = |joined: bool| {
            let mut t = Topology::new();
            let mut links = Vec::new();
            for i in 0..4 {
                let a = t.add_node(f64::from(i) * 10.0, 0.0);
                let b = t.add_node(f64::from(i) * 10.0 + 5.0, 0.0);
                links.push(t.add_link(a, b).unwrap());
            }
            let mut b = DeclarativeModel::builder(t);
            for (i, &l) in links.iter().enumerate() {
                // The bridge conflict is declared at rate 54 on link 1; it is
                // only *reachable* when link 1 actually lists rate 54.
                let joined_rates: &[Rate] = &[r(54.0), r(18.0)];
                let split_rates: &[Rate] = &[r(18.0)];
                b = b.alone_rates(
                    l,
                    if i == 1 && !joined {
                        split_rates
                    } else {
                        joined_rates
                    },
                );
            }
            b = b
                .conflict_all(links[0], links[1])
                .conflict_at(links[1], r(54.0), links[2], r(54.0))
                .conflict_all(links[2], links[3]);
            (b.build(), links)
        };
        let options = AvailableBandwidthOptions {
            decompose: true,
            ..AvailableBandwidthOptions::default()
        };
        let (m_split, links) = build(false);
        let (m_joined, _) = build(true);
        let split = CompiledInstance::compile(&m_split, &links, &options).unwrap();
        let joined = CompiledInstance::compile(&m_joined, &links, &options).unwrap();
        assert_eq!(split.components().len(), 2);
        assert_eq!(joined.components().len(), 1);
        let mut cache = UnitCache::default();
        let merge = TopologyDelta::between(&m_split, &m_joined);
        let (merged, _) = split.apply_delta(&m_joined, &merge, &mut cache).unwrap();
        assert_eq!(merged.components(), joined.components());
        let unmerge = TopologyDelta::between(&m_joined, &m_split);
        let (resplit, reuse) = merged.apply_delta(&m_split, &unmerge, &mut cache).unwrap();
        assert_eq!(resplit.components(), split.components());
        let p = Path::new(m_split.topology(), vec![links[2]]).unwrap();
        let a = resplit.query(&m_split, &[], &p).unwrap();
        let b = split.query(&m_split, &[], &p).unwrap();
        assert_eq!(a.bandwidth_mbps().to_bits(), b.bandwidth_mbps().to_bits());
        assert!(reuse.units_reused + reuse.unit_cache_hits + reuse.units_compiled >= 2);
    }

    /// Session-level migration: apply_delta keeps every universe answering
    /// identically to a cold session on the new model, and the unit cache
    /// turns an A→B→A oscillation into pure hits.
    #[test]
    fn session_apply_delta_migrates_and_oscillation_hits_cache() {
        let (m_a, links) = line_model(4, &[r(54.0), r(18.0)], &[(0, 1), (2, 3)]);
        let (m_b, _) = {
            // Same structure, link 0 loses its top rate.
            let mut t = Topology::new();
            let mut ls = Vec::new();
            for i in 0..4 {
                let a = t.add_node(i as f64 * 10.0, 0.0);
                let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
                ls.push(t.add_link(a, b).unwrap());
            }
            let mut b = DeclarativeModel::builder(t);
            let low: &[Rate] = &[r(18.0)];
            let full: &[Rate] = &[r(54.0), r(18.0)];
            for (i, &l) in ls.iter().enumerate() {
                b = b.alone_rates(l, if i == 0 { low } else { full });
            }
            b = b.conflict_all(ls[0], ls[1]).conflict_all(ls[2], ls[3]);
            (b.build(), ls)
        };
        let options = AvailableBandwidthOptions {
            decompose: true,
            ..AvailableBandwidthOptions::default()
        };
        let p01 = Path::new(m_a.topology(), vec![links[0]]).unwrap();
        let p23 = Path::new(m_a.topology(), vec![links[2]]).unwrap();
        let bg = vec![Flow::new(Path::new(m_a.topology(), vec![links[1]]).unwrap(), 3.0).unwrap()];
        let mut session = Session::new(&m_a, options);
        session.query(&bg, &p01).unwrap();
        session.query(&[], &p23).unwrap();
        let a_to_b = TopologyDelta::between(&m_a, &m_b);
        let b_to_a = TopologyDelta::between(&m_b, &m_a);
        let reuse = session.apply_delta(&m_b, &a_to_b);
        assert!(reuse.units_compiled >= 1);
        let mut cold_b = Session::new(&m_b, options);
        assert_eq!(
            session.query(&bg, &p01).unwrap(),
            cold_b.query(&bg, &p01).unwrap()
        );
        assert_eq!(
            session.query(&[], &p23).unwrap(),
            cold_b.query(&[], &p23).unwrap()
        );
        // Oscillate back: link 0's original unit is still in the cache.
        let reuse = session.apply_delta(&m_a, &b_to_a);
        assert_eq!(reuse.units_compiled, 0, "oscillation must be all hits");
        assert!(reuse.unit_cache_hits >= 1);
        let mut cold_a = Session::new(&m_a, options);
        assert_eq!(
            session.query(&bg, &p01).unwrap(),
            cold_a.query(&bg, &p01).unwrap()
        );
        assert_eq!(session.stats().delta_applications, 2);
    }
}
