//! Delayed column generation for the §2.5 LP (Eq. 6).
//!
//! Instead of enumerating every admissible rate-coupled independent set up
//! front (exponential in links) and handing the full pool to the simplex,
//! this module keeps a **restricted master problem** over a small seed pool
//! (per-link singletons plus a greedy cover), solves it, and asks a
//! [`MaxWeightOracle`] — a branch-and-bound maximum-weight rated-set search
//! over the compiled conflict bitmasks — for the column with the most
//! positive reduced cost under the master's link duals. Columns are appended
//! to the warm [`IncrementalSolver`] (a few pivots per round instead of a
//! from-scratch two-phase solve) until the oracle certifies that **no**
//! admissible set prices in, at which point LP duality guarantees the
//! restricted optimum equals the full-enumeration optimum.
//!
//! The solve runs in two stages:
//!
//! 1. **Stage A (feasibility)** — per component, minimize total airtime
//!    `Σ λ` subject to every demanded link being delivered, pricing columns
//!    in by delivery duals (`enter iff Σ y_e R_S[e] > 1`). The seed
//!    singletons make this master feasible whenever the demands are
//!    schedulable at all; if the certified minimum airtime exceeds 1 the
//!    background is infeasible — exactly the condition
//!    [`CoreError::BackgroundInfeasible`] reports.
//! 2. **Stage B (throughput)** — one joint master maximizing `f` with a unit
//!    time budget per component and the Eq. 6 delivery rows, seeded with the
//!    stage-A pool (so it starts feasible), pricing per component with
//!    `enter iff Σ scarcity_e · R_S[e] > airtime dual`.
//!
//! Every pricing round is deterministic (oracle ties break first-found,
//! duplicate proposals are treated as convergence), so repeated runs produce
//! identical columns, bases, and duals.

use crate::available::{demand_into, link_universe, AvailableBandwidth, AvailableBandwidthOptions};
use crate::error::CoreError;
use crate::flow::Flow;
use crate::schedule::Schedule;
use awb_lp::{Direction, IncrementalSolver, Problem, Relation, SolverOptions, VarId};
use awb_net::{LinkId, LinkRateModel, Path};
use awb_sets::{MaxWeightOracle, RatedSet};

/// Reduced costs must clear this margin before a column is generated; keeps
/// the loop from chasing LP-tolerance noise.
const PRICE_TOL: f64 = 1e-7;

/// Slack allowed on the stage-A airtime certificate, matching the simplex
/// phase-1 infeasibility tolerance.
const FEAS_TOL: f64 = 1e-7;

/// Hard cap on pricing rounds per master — a backstop against numerical
/// stalling, far above anything a real topology needs.
const MAX_ROUNDS: usize = 10_000;

/// Counters describing a column-generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColgenStats {
    /// Master re-optimizations driven by the pricing oracle (both stages).
    pub pricing_rounds: usize,
    /// Columns the oracle generated beyond the seed pool.
    pub columns_generated: usize,
    /// Total simplex pivots across every master, including warm restarts.
    pub pivots: usize,
}

/// Result of a column-generation solve: the Eq. 6 outcome plus the final
/// master's column pool (reusable as the seed of a later solve on the same
/// topology) and run counters.
#[derive(Debug, Clone)]
pub struct ColgenOutcome {
    /// The solved LP, identical in meaning to [`crate::available_bandwidth`].
    pub result: AvailableBandwidth,
    /// All independent-set columns in the final master, component by
    /// component. Feeding these back as `seed` warm-starts the next solve.
    pub pool: Vec<RatedSet>,
    /// Pricing-loop counters.
    pub stats: ColgenStats,
}

/// Column-generation counterpart of [`crate::available_bandwidth`]: same
/// optimum and dual prices, but the independent-set pool is priced in on
/// demand instead of enumerated exhaustively. `seed` columns (e.g. the pool
/// of a previous solve on the same topology) join the initial master;
/// `&[]` is always valid.
///
/// Honors `options.decompose` (per-component budgets, like the enumeration
/// path) and `options.dust_epsilon`; `options.enumeration` is unused — no
/// enumeration happens.
///
/// # Errors
///
/// As [`crate::available_bandwidth`].
pub fn available_bandwidth_colgen<M: LinkRateModel>(
    model: &M,
    background: &[Flow],
    new_path: &Path,
    seed: &[RatedSet],
    options: &AvailableBandwidthOptions,
) -> Result<ColgenOutcome, CoreError> {
    let universe = link_universe(background, new_path);
    if universe.is_empty() {
        return Err(CoreError::EmptyUniverse);
    }
    let instance =
        crate::session::CompiledInstance::compile_colgen_seeded(model, &universe, options, seed)?;
    instance.query_colgen(model, background, new_path)
}

/// Like [`available_bandwidth_colgen`], but over a caller-supplied oracle
/// compiled once for this `(model, universe)` pair — the reuse hook for a
/// service answering admission sequences on the same topology. The oracle
/// must have been built with `MaxWeightOracle::new(model,
/// &link_universe(background, new_path))`; the universe is treated as a
/// single component (`options.decompose` is ignored).
///
/// # Errors
///
/// As [`crate::available_bandwidth`].
pub fn available_bandwidth_colgen_with_oracle<M: LinkRateModel>(
    model: &M,
    oracle: &MaxWeightOracle,
    background: &[Flow],
    new_path: &Path,
    seed: &[RatedSet],
    options: &AvailableBandwidthOptions,
) -> Result<ColgenOutcome, CoreError> {
    let universe = link_universe(background, new_path);
    if universe.is_empty() {
        return Err(CoreError::EmptyUniverse);
    }
    debug_assert!(
        oracle
            .links()
            .iter()
            .all(|l| universe.binary_search(l).is_ok()),
        "oracle was compiled for a different universe"
    );
    let components = vec![universe.clone()];
    let pools = vec![seed_pool(model, &components[0], oracle, seed)];
    let mut demand = Vec::new();
    demand_into(&universe, background, &mut demand)?;
    solve_with_pools(
        model,
        &universe,
        &components,
        &[oracle],
        pools,
        &demand,
        new_path,
        options.dust_epsilon,
    )
}

/// Colgen-side runtime guards (active only with the `debug-invariants`
/// feature): the dual-derived pricing weights handed to the max-weight
/// oracle must be finite and non-negative — the oracle's branch-and-bound
/// pruning assumes both, and a NaN weight silently disables pruning and can
/// certify a bogus "optimal" master.
#[cfg(feature = "debug-invariants")]
fn assert_pricing_weights(weights: &[f64]) {
    debug_assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "pricing weights must be finite and non-negative: {weights:?}"
    );
}

/// The master objective must stay finite after every re-solve (active only
/// with the `debug-invariants` feature).
#[cfg(feature = "debug-invariants")]
fn assert_finite_objective(objective: f64) {
    debug_assert!(
        objective.is_finite(),
        "master LP produced a non-finite objective: {objective}"
    );
}

/// Seeds one component's pool: caller-provided seed sets that live entirely
/// inside the component, every live link's max-rate singleton, and a greedy
/// cover of the live links by oracle calls.
pub(crate) fn seed_pool<M: LinkRateModel>(
    model: &M,
    component: &[LinkId],
    oracle: &MaxWeightOracle,
    seed: &[RatedSet],
) -> Vec<RatedSet> {
    let mut pool: Vec<RatedSet> = Vec::new();
    for set in seed {
        if set.is_empty() || pool.contains(set) {
            continue;
        }
        if set.couples().iter().all(|(l, _)| component.contains(l)) {
            pool.push(set.clone());
        }
    }
    for &link in oracle.links() {
        let Some(rate) = model.max_alone_rate(link) else {
            continue; // dead link: no singleton to seed
        };
        let singleton = RatedSet::new(vec![(link, rate)]);
        if !pool.contains(&singleton) {
            pool.push(singleton);
        }
    }
    // Greedy cover: repeatedly ask for the heaviest set over the still
    // uncovered links; wide sets make the initial master's budget realistic.
    let mut covered = vec![false; oracle.links().len()];
    for _ in 0..oracle.links().len() {
        let weights: Vec<f64> = covered.iter().map(|&c| if c { 0.0 } else { 1.0 }).collect();
        let Some((set, _)) = oracle.max_weight_set(model, &weights) else {
            break;
        };
        let mut progressed = false;
        for (i, &l) in oracle.links().iter().enumerate() {
            if !covered[i] && set.contains(l) {
                covered[i] = true;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
        if !pool.contains(&set) {
            pool.push(set);
        }
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    pool
}

/// Stage A for one component: certify the background demands schedulable
/// within the unit budget, generating delivery columns along the way.
#[allow(clippy::too_many_arguments)]
fn stage_a<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    demand: &[f64],
    component: &[LinkId],
    oracle: &MaxWeightOracle,
    pool: &mut Vec<RatedSet>,
    stats: &mut ColgenStats,
) -> Result<(), CoreError> {
    // Universe indices of this component's demanded links.
    let mut demanded: Vec<usize> = Vec::with_capacity(component.len());
    for l in component {
        let idx = universe
            .binary_search(l)
            .map_err(|_| CoreError::Invariant("component is a subset of the universe"))?;
        if demand[idx] > 0.0 {
            demanded.push(idx);
        }
    }
    if demanded.is_empty() {
        return Ok(());
    }
    let mut lp = Problem::new(Direction::Minimize);
    let vars: Vec<VarId> = (0..pool.len())
        .map(|i| lp.add_var(format!("a{i}"), 1.0))
        .collect();
    for (row, &idx) in demanded.iter().enumerate() {
        let link = universe[idx];
        let terms: Vec<(VarId, f64)> = pool
            .iter()
            .zip(&vars)
            .filter_map(|(set, &var)| set.rate_of(link).map(|r| (var, r.as_mbps())))
            .collect();
        lp.add_constraint(&terms, Relation::Ge, demand[idx])?;
        debug_assert_eq!(row, lp.num_constraints() - 1);
    }
    let mut inc = IncrementalSolver::new(&lp, SolverOptions::default()).map_err(CoreError::from)?;
    for _round in 0..MAX_ROUNDS {
        let sol = inc.solution();
        // Delivery duals: in the minimize direction a binding >= row prices
        // positive — the airtime cost of one more Mbps on that link.
        let mut weights = vec![0.0f64; oracle.links().len()];
        for (row, &idx) in demanded.iter().enumerate() {
            let link = universe[idx];
            if let Some(pos) = oracle.links().iter().position(|&l| l == link) {
                weights[pos] = sol.dual(row).max(0.0);
            }
        }
        #[cfg(feature = "debug-invariants")]
        assert_pricing_weights(&weights);
        let Some((set, value)) = oracle.max_weight_set(model, &weights) else {
            break;
        };
        if value <= 1.0 + PRICE_TOL || pool.contains(&set) {
            break;
        }
        let terms: Vec<(usize, f64)> = demanded
            .iter()
            .enumerate()
            .filter_map(|(row, &idx)| set.rate_of(universe[idx]).map(|r| (row, r.as_mbps())))
            .collect();
        inc.add_column(format!("a{}", pool.len()), 1.0, &terms)
            .map_err(CoreError::from)?;
        pool.push(set);
        inc.reoptimize().map_err(CoreError::from)?;
        stats.pricing_rounds += 1;
        stats.columns_generated += 1;
    }
    let airtime = inc.solution().objective();
    stats.pivots += inc.pivots();
    if airtime > 1.0 + FEAS_TOL {
        return Err(CoreError::BackgroundInfeasible);
    }
    Ok(())
}

/// Index maps of one stage-B master build.
struct MasterLayout {
    /// Budget row per component (`None` for empty pools).
    budget_rows: Vec<Option<usize>>,
    /// Delivery row per universe index.
    link_rows: Vec<usize>,
    /// λ variable per `(component, pool position)`, flattened per component.
    lambdas: Vec<Vec<VarId>>,
    f: VarId,
}

/// Builds the joint stage-B master over the current pools and solves it.
fn build_master(
    pools: &[Vec<RatedSet>],
    components: &[Vec<LinkId>],
    universe: &[LinkId],
    demand: &[f64],
    new_path: &Path,
) -> Result<(IncrementalSolver, MasterLayout), CoreError> {
    let mut lp = Problem::new(Direction::Maximize);
    let f = lp.add_var("f", 1.0);
    let lambdas: Vec<Vec<VarId>> = pools
        .iter()
        .enumerate()
        .map(|(ci, pool)| {
            (0..pool.len())
                .map(|i| lp.add_var(format!("l{ci}_{i}"), 0.0))
                .collect()
        })
        .collect();
    let mut constraint_index = 0usize;
    let mut budget_rows = Vec::with_capacity(pools.len());
    for vars in &lambdas {
        if vars.is_empty() {
            budget_rows.push(None);
            continue;
        }
        let budget: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&budget, Relation::Le, 1.0)?;
        budget_rows.push(Some(constraint_index));
        constraint_index += 1;
    }
    let mut link_rows = vec![usize::MAX; universe.len()];
    for (ci, component) in components.iter().enumerate() {
        for &link in component {
            let idx = universe
                .binary_search(&link)
                .map_err(|_| CoreError::Invariant("component is a subset of the universe"))?;
            let mut terms: Vec<_> = pools[ci]
                .iter()
                .zip(&lambdas[ci])
                .filter_map(|(set, &var)| set.rate_of(link).map(|r| (var, r.as_mbps())))
                .collect();
            if new_path.contains(link) {
                terms.push((f, -1.0));
            }
            lp.add_constraint(&terms, Relation::Ge, demand[idx])?;
            link_rows[idx] = constraint_index;
            constraint_index += 1;
        }
    }
    let inc = IncrementalSolver::new(&lp, SolverOptions::default()).map_err(CoreError::from)?;
    Ok((
        inc,
        MasterLayout {
            budget_rows,
            link_rows,
            lambdas,
            f,
        },
    ))
}

/// The full two-stage column-generation solve over prepared components and
/// their seed pools. Stage A/B grow `pools` in place; the seed pools are the
/// query-independent part a [`crate::CompiledInstance`] precomputes, the
/// demand vector and everything after it are per-query.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_with_pools<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    components: &[Vec<LinkId>],
    oracles: &[&MaxWeightOracle],
    mut pools: Vec<Vec<RatedSet>>,
    demand: &[f64],
    new_path: &Path,
    dust_epsilon: f64,
) -> Result<ColgenOutcome, CoreError> {
    let mut stats = ColgenStats::default();

    // Stage A: per-component feasibility, growing the pools.
    for (ci, component) in components.iter().enumerate() {
        stage_a(
            model,
            universe,
            demand,
            component,
            oracles[ci],
            &mut pools[ci],
            &mut stats,
        )?;
    }

    // Stage B: joint throughput master with per-component pricing. A master
    // rebuild (cold start) only happens in the rare case the warm append is
    // refused because phase 1 dropped a redundant row.
    let (mut master, mut layout) = build_master(&pools, components, universe, demand, new_path)?;
    for _round in 0..MAX_ROUNDS {
        let sol = master.solution();
        let mut added = false;
        let mut rebuild = false;
        for (ci, oracle) in oracles.iter().enumerate() {
            let Some(budget_row) = layout.budget_rows[ci] else {
                continue;
            };
            let airtime = sol.dual(budget_row).max(0.0);
            let weights: Vec<f64> = oracle
                .links()
                .iter()
                .map(|l| {
                    let idx = universe
                        .binary_search(l)
                        .map_err(|_| CoreError::Invariant("oracle links are in the universe"))?;
                    Ok((-sol.dual(layout.link_rows[idx])).max(0.0))
                })
                .collect::<Result<_, CoreError>>()?;
            #[cfg(feature = "debug-invariants")]
            assert_pricing_weights(&weights);
            let Some((set, value)) = oracle.max_weight_set(model, &weights) else {
                continue;
            };
            if value <= airtime + PRICE_TOL || pools[ci].contains(&set) {
                continue;
            }
            let mut terms: Vec<(usize, f64)> = vec![(budget_row, 1.0)];
            for &(link, rate) in set.couples() {
                let idx = universe
                    .binary_search(&link)
                    .map_err(|_| CoreError::Invariant("priced set is inside the universe"))?;
                terms.push((layout.link_rows[idx], rate.as_mbps()));
            }
            let name = format!("l{ci}_{}", pools[ci].len());
            match master.add_column(name, 0.0, &terms) {
                Ok(var) => {
                    layout.lambdas[ci].push(var);
                    pools[ci].push(set);
                    added = true;
                }
                Err(awb_lp::SolveError::Problem(awb_lp::ProblemError::RedundantRowsEliminated)) => {
                    pools[ci].push(set);
                    added = true;
                    rebuild = true;
                }
                Err(e) => return Err(CoreError::from(e)),
            }
            stats.columns_generated += 1;
        }
        if !added {
            break;
        }
        stats.pricing_rounds += 1;
        if rebuild {
            stats.pivots += master.pivots();
            let (m, l) = build_master(&pools, components, universe, demand, new_path)?;
            master = m;
            layout = l;
        } else {
            master.reoptimize().map_err(CoreError::from)?;
        }
        #[cfg(feature = "debug-invariants")]
        assert_finite_objective(master.solution().objective());
    }
    stats.pivots += master.pivots();

    // Extract the Eq. 6 outcome exactly like the enumeration path does.
    let solution = master.solution();
    let mut parts = Vec::with_capacity(components.len());
    for (ci, pool) in pools.iter().enumerate() {
        let entries: Vec<(RatedSet, f64)> = pool
            .iter()
            .zip(&layout.lambdas[ci])
            .map(|(set, &var)| (set.clone(), solution.value(var)))
            .filter(|(_, share)| *share > dust_epsilon)
            .collect();
        let total: f64 = entries.iter().map(|(_, s)| s).sum();
        let entries = if total > 1.0 {
            entries
                .into_iter()
                .map(|(s, share)| (s, share / total))
                .collect()
        } else {
            entries
        };
        parts.push(Schedule::new(entries));
    }
    // One component: the schedule is already joint (and may legitimately use
    // a link in several entries, which the parallel merge forbids).
    let schedule = if parts.len() == 1 {
        parts
            .pop()
            .ok_or(CoreError::Invariant("single-component split is non-empty"))?
    } else {
        crate::decomposition::merge_parallel_schedules(&parts)
    };
    let airtime_dual = layout
        .budget_rows
        .iter()
        .flatten()
        .map(|&row| solution.dual(row).max(0.0))
        .fold(0.0, f64::max);
    let link_scarcity: Vec<f64> = layout
        .link_rows
        .iter()
        .map(|&row| {
            if row == usize::MAX {
                0.0
            } else {
                (-solution.dual(row)).max(0.0)
            }
        })
        .collect();
    let num_sets = pools.iter().map(Vec::len).sum();
    let result = AvailableBandwidth::from_parts(
        solution.value(layout.f).max(0.0),
        schedule,
        universe.to_vec(),
        num_sets,
        stats.pivots,
        airtime_dual,
        link_scarcity,
    );
    Ok(ColgenOutcome {
        result,
        pool: pools.into_iter().flatten().collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::available::{available_bandwidth, AvailableBandwidthOptions, SolverKind};
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// `n` disjoint links in a row; conflicts as declared.
    fn line_model(
        n: usize,
        rates: &[Rate],
        conflicts: &[(usize, usize)],
    ) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, rates);
        }
        for &(i, j) in conflicts {
            b = b.conflict_all(links[i], links[j]);
        }
        (b.build(), links)
    }

    fn colgen_options() -> AvailableBandwidthOptions {
        AvailableBandwidthOptions {
            solver: SolverKind::ColumnGeneration,
            ..AvailableBandwidthOptions::default()
        }
    }

    #[test]
    fn relay_capacity_matches_enumeration() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(10.0, 0.0);
        let c = t.add_node(20.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let bc = t.add_link(b, c).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[r(54.0)])
            .alone_rates(bc, &[r(54.0)])
            .conflict_all(ab, bc)
            .build();
        let p = Path::new(m.topology(), vec![ab, bc]).unwrap();
        let out = available_bandwidth(&m, &[], &p, &colgen_options()).unwrap();
        assert!((out.bandwidth_mbps() - 27.0).abs() < 1e-7);
        assert!(out.schedule().is_valid(&m));
        for &l in p.links() {
            assert!(out.schedule().link_throughput(l) >= 27.0 - 1e-7);
        }
    }

    #[test]
    fn matches_enumeration_with_background_and_duals() {
        let (m, links) = line_model(3, &[r(54.0), r(18.0)], &[(0, 1), (1, 2)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        for bg in [0.0, 10.0, 27.0] {
            let background = vec![Flow::new(bg_path.clone(), bg).unwrap()];
            let full = available_bandwidth(
                &m,
                &background,
                &new_path,
                &AvailableBandwidthOptions::default(),
            )
            .unwrap();
            let cg = available_bandwidth(&m, &background, &new_path, &colgen_options()).unwrap();
            assert!(
                (full.bandwidth_mbps() - cg.bandwidth_mbps()).abs() < 1e-6,
                "bg {bg}: full {} vs colgen {}",
                full.bandwidth_mbps(),
                cg.bandwidth_mbps()
            );
            assert!((full.airtime_shadow_price() - cg.airtime_shadow_price()).abs() < 1e-6);
            for &l in full.universe() {
                let a = full.link_scarcity(l).unwrap();
                let b = cg.link_scarcity(l).unwrap();
                assert!((a - b).abs() < 1e-6, "link {l:?}: {a} vs {b}");
            }
            assert!(cg.schedule().is_valid(&m));
            assert!(cg.num_sets() <= full.num_sets());
        }
    }

    #[test]
    fn infeasible_background_is_reported() {
        let (m, links) = line_model(2, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 60.0).unwrap()];
        let err = available_bandwidth(&m, &background, &new_path, &colgen_options()).unwrap_err();
        assert_eq!(err, CoreError::BackgroundInfeasible);
    }

    #[test]
    fn dead_link_on_new_path_gives_zero() {
        let (m0, links) = line_model(2, &[r(54.0)], &[]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        b = b.alone_rates(links[0], &[r(54.0)]);
        let m = b.build();
        let p = Path::new(m.topology(), vec![links[1]]).unwrap();
        let out = available_bandwidth(&m, &[], &p, &colgen_options()).unwrap();
        assert_eq!(out.bandwidth_mbps(), 0.0);
    }

    #[test]
    fn decomposed_components_match_enumeration() {
        // Two independent components: {0,1} conflicting, {2} alone.
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[2]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let background = vec![Flow::new(bg_path, 20.0).unwrap()];
        let opts_full = AvailableBandwidthOptions {
            decompose: true,
            ..AvailableBandwidthOptions::default()
        };
        let opts_cg = AvailableBandwidthOptions {
            decompose: true,
            ..colgen_options()
        };
        let full = available_bandwidth(&m, &background, &new_path, &opts_full).unwrap();
        let cg = available_bandwidth(&m, &background, &new_path, &opts_cg).unwrap();
        assert!((full.bandwidth_mbps() - cg.bandwidth_mbps()).abs() < 1e-6);
        assert!(cg.schedule().is_valid(&m));
    }

    #[test]
    fn seed_pool_reuse_reaches_same_optimum_with_fewer_rounds() {
        let (m, links) = line_model(4, &[r(54.0), r(18.0)], &[(0, 1), (1, 2), (2, 3)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[2]]).unwrap();
        let background = vec![Flow::new(bg_path, 12.0).unwrap()];
        let opts = colgen_options();
        let first = available_bandwidth_colgen(&m, &background, &new_path, &[], &opts).unwrap();
        let second =
            available_bandwidth_colgen(&m, &background, &new_path, &first.pool, &opts).unwrap();
        assert!(
            (first.result.bandwidth_mbps() - second.result.bandwidth_mbps()).abs() < 1e-9,
            "{} vs {}",
            first.result.bandwidth_mbps(),
            second.result.bandwidth_mbps()
        );
        assert!(second.stats.columns_generated <= first.stats.columns_generated);
    }

    #[test]
    fn oracle_variant_matches_fresh_solve() {
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1), (1, 2)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 13.5).unwrap()];
        let opts = colgen_options();
        let universe = link_universe(&background, &new_path);
        let oracle = MaxWeightOracle::new(&m, &universe);
        let fresh = available_bandwidth_colgen(&m, &background, &new_path, &[], &opts).unwrap();
        let cached = available_bandwidth_colgen_with_oracle(
            &m,
            &oracle,
            &background,
            &new_path,
            &fresh.pool,
            &opts,
        )
        .unwrap();
        assert!((fresh.result.bandwidth_mbps() - cached.result.bandwidth_mbps()).abs() < 1e-9);
    }
}
