//! Delayed column generation for the §2.5 LP (Eq. 6).
//!
//! Instead of enumerating every admissible rate-coupled independent set up
//! front (exponential in links) and handing the full pool to the simplex,
//! this module keeps a **restricted master problem** over a small seed pool
//! (per-link singletons plus a greedy cover), solves it, and asks a
//! [`MaxWeightOracle`] — a branch-and-bound maximum-weight rated-set search
//! over the compiled conflict bitmasks — for the column with the most
//! positive reduced cost under the master's link duals. Columns are appended
//! to the warm [`IncrementalSolver`] (a few pivots per round instead of a
//! from-scratch two-phase solve) until the oracle certifies that **no**
//! admissible set prices in, at which point LP duality guarantees the
//! restricted optimum equals the full-enumeration optimum.
//!
//! The solve runs in two stages:
//!
//! 1. **Stage A (feasibility)** — per component, minimize total airtime
//!    `Σ λ` subject to every demanded link being delivered, pricing columns
//!    in by delivery duals (`enter iff Σ y_e R_S[e] > 1`). The seed
//!    singletons make this master feasible whenever the demands are
//!    schedulable at all; if the certified minimum airtime exceeds 1 the
//!    background is infeasible — exactly the condition
//!    [`CoreError::BackgroundInfeasible`] reports.
//! 2. **Stage B (throughput)** — one joint master maximizing `f` with a unit
//!    time budget per component and the Eq. 6 delivery rows, seeded with the
//!    stage-A pool (so it starts feasible), pricing per component with
//!    `enter iff Σ scarcity_e · R_S[e] > airtime dual`.
//!
//! Three levers keep the pricing loop fast at the 64–256-link frontier,
//! none of which may change the certified optimum:
//!
//! - **Heuristic-first pricing** ([`PricingMode::HeuristicFirst`]): a
//!   greedy-plus-local-search constructor proposes a column in near-linear
//!   time; only
//!   when its value under the *raw* duals fails the reduced-cost test (or it
//!   is already pooled) does the exact branch-and-bound run. Convergence is
//!   only ever declared on an exact-search failure, so the optimality
//!   certificate rests on the exact oracle alone.
//! - **Dual stabilization** (`stab_alpha`): the heuristic proposal is
//!   steered by smoothed duals `α·y + (1−α)·y_prev`, damping the dual
//!   oscillation that inflates round counts; accept tests always use raw
//!   duals.
//! - **Parallel per-component pricing** (`pricing_threads`): stage-A solves
//!   and stage-B pricing fan out across conflict components with the
//!   deterministic chunked-merge discipline of the enumeration engine, so
//!   answers are bit-identical for any thread count.
//!
//! Every pricing round is deterministic (oracle ties break first-found,
//! duplicate proposals fall back to the exact search), so repeated runs
//! produce identical columns, bases, and duals. After convergence the answer
//! is **re-solved canonically**: the optimal support columns are extracted,
//! sorted canonically, and a fresh minimal master is solved from scratch —
//! making the reported optimum, schedule, and duals a pure function of the
//! converged support rather than of the column-discovery path, which is what
//! lets heuristic-first and exact-only pricing certify bit-identical
//! answers.

use std::cmp::Ordering;

use crate::available::{
    demand_into, link_universe, AvailableBandwidth, AvailableBandwidthOptions, PricingMode,
};
use crate::error::CoreError;
use crate::flow::Flow;
use crate::schedule::Schedule;
use awb_lp::{Direction, IncrementalSolver, Problem, Relation, SolverOptions, VarId};
use awb_net::{LinkId, LinkRateModel, Path};
use awb_sets::{
    price_component, price_components, MaxWeightOracle, PriceScratch, PricingRequest, RatedSet,
};

/// Reduced costs must clear this margin before a column is generated; keeps
/// the loop from chasing LP-tolerance noise.
const PRICE_TOL: f64 = 1e-7;

/// Slack allowed on the stage-A airtime certificate, matching the simplex
/// phase-1 infeasibility tolerance.
const FEAS_TOL: f64 = 1e-7;

/// Hard cap on pricing rounds per master — a backstop against numerical
/// stalling, far above anything a real topology needs.
const MAX_ROUNDS: usize = 10_000;

/// λ values at or below this are not part of the converged support the
/// canonical final re-solve is built over (they are LP-arithmetic noise, far
/// below any meaningful time share).
const SUPPORT_EPS: f64 = 1e-12;

/// Counters describing a column-generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColgenStats {
    /// Master re-optimizations driven by the pricing oracle (both stages).
    pub pricing_rounds: usize,
    /// Columns the oracle generated beyond the seed pool.
    pub columns_generated: usize,
    /// Total simplex pivots across every master, including warm restarts
    /// and the canonical final re-solve.
    pub pivots: usize,
    /// Generated columns that came from the heuristic constructor (the
    /// exact search never ran for these).
    pub heuristic_columns: usize,
    /// Exact branch-and-bound invocations — the expensive certifier.
    /// Under [`PricingMode::ExactOnly`] every pricing call counts here.
    pub exact_calls: usize,
    /// Wall-clock nanoseconds spent in the heuristic constructor.
    pub heuristic_ns: u64,
    /// Wall-clock nanoseconds spent in the exact branch-and-bound.
    pub exact_ns: u64,
    /// Largest column count any stage-B master reached (all components
    /// together) — the pool-size figure
    /// [`AvailableBandwidthOptions::column_pool_cap`] bounds.
    pub pool_peak: usize,
    /// Columns evicted from stage-B masters by the pool cap.
    pub pool_evicted: usize,
}

impl ColgenStats {
    /// Accumulates another run's (or component's) counters into `self`.
    fn absorb(&mut self, other: ColgenStats) {
        self.pricing_rounds += other.pricing_rounds;
        self.columns_generated += other.columns_generated;
        self.pivots += other.pivots;
        self.heuristic_columns += other.heuristic_columns;
        self.exact_calls += other.exact_calls;
        self.heuristic_ns += other.heuristic_ns;
        self.exact_ns += other.exact_ns;
        // Peaks are concurrent high-water marks, not additive counts.
        self.pool_peak = self.pool_peak.max(other.pool_peak);
        self.pool_evicted += other.pool_evicted;
    }
}

/// The solver-tuning slice of [`AvailableBandwidthOptions`] the pricing loop
/// consumes; copied into a [`crate::CompiledInstance`] at compile time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PricingTuning {
    pub(crate) mode: PricingMode,
    pub(crate) stab_alpha: f64,
    pub(crate) threads: usize,
    /// Per-component stage-B pool cap; `0` = unbounded.
    pub(crate) pool_cap: usize,
}

impl PricingTuning {
    pub(crate) fn from_options(options: &AvailableBandwidthOptions) -> PricingTuning {
        PricingTuning {
            mode: options.pricing,
            // Clamp away of nonsense values rather than erroring: smoothing
            // is a performance knob, never a correctness one.
            stab_alpha: if options.stab_alpha.is_finite() {
                options.stab_alpha.clamp(f64::MIN_POSITIVE, 1.0)
            } else {
                1.0
            },
            threads: options.pricing_threads,
            pool_cap: options.column_pool_cap,
        }
    }

    fn heuristic_first(&self) -> bool {
        self.mode == PricingMode::HeuristicFirst
    }

    fn stabilized(&self) -> bool {
        self.heuristic_first() && self.stab_alpha < 1.0
    }

    fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        }
    }
}

/// Result of a column-generation solve: the Eq. 6 outcome plus the final
/// master's column pool (reusable as the seed of a later solve on the same
/// topology) and run counters.
#[derive(Debug, Clone)]
pub struct ColgenOutcome {
    /// The solved LP, identical in meaning to [`crate::available_bandwidth`].
    pub result: AvailableBandwidth,
    /// All independent-set columns in the final master, component by
    /// component. Feeding these back as `seed` warm-starts the next solve.
    pub pool: Vec<RatedSet>,
    /// Pricing-loop counters.
    pub stats: ColgenStats,
}

/// Column-generation counterpart of [`crate::available_bandwidth`]: same
/// optimum and dual prices, but the independent-set pool is priced in on
/// demand instead of enumerated exhaustively. `seed` columns (e.g. the pool
/// of a previous solve on the same topology) join the initial master;
/// `&[]` is always valid.
///
/// Honors `options.decompose` (per-component budgets, like the enumeration
/// path) and `options.dust_epsilon`; `options.enumeration` is unused — no
/// enumeration happens.
///
/// # Errors
///
/// As [`crate::available_bandwidth`].
pub fn available_bandwidth_colgen<M: LinkRateModel>(
    model: &M,
    background: &[Flow],
    new_path: &Path,
    seed: &[RatedSet],
    options: &AvailableBandwidthOptions,
) -> Result<ColgenOutcome, CoreError> {
    let universe = link_universe(background, new_path);
    if universe.is_empty() {
        return Err(CoreError::EmptyUniverse);
    }
    let instance =
        crate::session::CompiledInstance::compile_colgen_seeded(model, &universe, options, seed)?;
    instance.query_colgen(model, background, new_path)
}

/// Like [`available_bandwidth_colgen`], but over a caller-supplied oracle
/// compiled once for this `(model, universe)` pair — the reuse hook for a
/// service answering admission sequences on the same topology. The oracle
/// must have been built with `MaxWeightOracle::new(model,
/// &link_universe(background, new_path))`; the universe is treated as a
/// single component (`options.decompose` is ignored).
///
/// # Errors
///
/// As [`crate::available_bandwidth`].
pub fn available_bandwidth_colgen_with_oracle<M: LinkRateModel>(
    model: &M,
    oracle: &MaxWeightOracle,
    background: &[Flow],
    new_path: &Path,
    seed: &[RatedSet],
    options: &AvailableBandwidthOptions,
) -> Result<ColgenOutcome, CoreError> {
    let universe = link_universe(background, new_path);
    if universe.is_empty() {
        return Err(CoreError::EmptyUniverse);
    }
    debug_assert!(
        oracle
            .links()
            .iter()
            .all(|l| universe.binary_search(l).is_ok()),
        "oracle was compiled for a different universe"
    );
    let components = vec![universe.clone()];
    let pools = vec![seed_pool(model, &components[0], oracle, seed)];
    let mut demand = Vec::new();
    demand_into(&universe, background, &mut demand)?;
    solve_with_pools(
        model,
        &universe,
        &components,
        &[oracle],
        pools,
        &demand,
        new_path,
        options.dust_epsilon,
        &PricingTuning::from_options(options),
    )
}

/// Colgen-side runtime guards (active only with the `debug-invariants`
/// feature): the dual-derived pricing weights handed to the max-weight
/// oracle must be finite and non-negative — the oracle's branch-and-bound
/// pruning assumes both, and a NaN weight silently disables pruning and can
/// certify a bogus "optimal" master.
#[cfg(feature = "debug-invariants")]
fn assert_pricing_weights(weights: &[f64]) {
    debug_assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "pricing weights must be finite and non-negative: {weights:?}"
    );
}

/// The master objective must stay finite after every re-solve (active only
/// with the `debug-invariants` feature).
#[cfg(feature = "debug-invariants")]
fn assert_finite_objective(objective: f64) {
    debug_assert!(
        objective.is_finite(),
        "master LP produced a non-finite objective: {objective}"
    );
}

/// Seeds one component's pool: caller-provided seed sets that live entirely
/// inside the component, every live link's max-rate singleton, and a greedy
/// cover of the live links by oracle calls.
pub(crate) fn seed_pool<M: LinkRateModel>(
    model: &M,
    component: &[LinkId],
    oracle: &MaxWeightOracle,
    seed: &[RatedSet],
) -> Vec<RatedSet> {
    let mut pool: Vec<RatedSet> = Vec::new();
    for set in seed {
        if set.is_empty() || pool.contains(set) {
            continue;
        }
        if set.couples().iter().all(|(l, _)| component.contains(l)) {
            pool.push(set.clone());
        }
    }
    for &link in oracle.links() {
        let Some(rate) = model.max_alone_rate(link) else {
            continue; // dead link: no singleton to seed
        };
        let singleton = RatedSet::new(vec![(link, rate)]);
        if !pool.contains(&singleton) {
            pool.push(singleton);
        }
    }
    // Greedy cover: repeatedly ask for the heaviest set over the still
    // uncovered links; wide sets make the initial master's budget realistic.
    let mut covered = vec![false; oracle.links().len()];
    let mut scratch = oracle.new_scratch();
    let mut weights = vec![0.0f64; oracle.links().len()];
    for _ in 0..oracle.links().len() {
        for (w, &c) in weights.iter_mut().zip(&covered) {
            *w = if c { 0.0 } else { 1.0 };
        }
        let Some((set, _)) = oracle.max_weight_set_with(model, &weights, &mut scratch) else {
            break;
        };
        let mut progressed = false;
        for (i, &l) in oracle.links().iter().enumerate() {
            if !covered[i] && set.contains(l) {
                covered[i] = true;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
        if !pool.contains(&set) {
            pool.push(set);
        }
        if covered.iter().all(|&c| c) {
            break;
        }
    }
    pool
}

/// Stage A for one component: certify the background demands schedulable
/// within the unit budget, generating delivery columns along the way.
/// Returns this component's counters so the parallel driver can merge them
/// in component order.
#[allow(clippy::too_many_arguments)]
fn stage_a<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    demand: &[f64],
    component: &[LinkId],
    oracle: &MaxWeightOracle,
    pool: &mut Vec<RatedSet>,
    scratch: &mut PriceScratch,
    tuning: &PricingTuning,
) -> Result<ColgenStats, CoreError> {
    let mut stats = ColgenStats::default();
    // Universe indices of this component's demanded links.
    let mut demanded: Vec<usize> = Vec::with_capacity(component.len());
    for l in component {
        let idx = universe
            .binary_search(l)
            .map_err(|_| CoreError::Invariant("component is a subset of the universe"))?;
        if demand[idx] > 0.0 {
            demanded.push(idx);
        }
    }
    if demanded.is_empty() {
        return Ok(stats);
    }
    let mut lp = Problem::new(Direction::Minimize);
    let vars: Vec<VarId> = (0..pool.len())
        .map(|i| lp.add_var(format!("a{i}"), 1.0))
        .collect();
    for (row, &idx) in demanded.iter().enumerate() {
        let link = universe[idx];
        let terms: Vec<(VarId, f64)> = pool
            .iter()
            .zip(&vars)
            .filter_map(|(set, &var)| set.rate_of(link).map(|r| (var, r.as_mbps())))
            .collect();
        lp.add_constraint(&terms, Relation::Ge, demand[idx])?;
        debug_assert_eq!(row, lp.num_constraints() - 1);
    }
    let mut inc = IncrementalSolver::new(&lp, SolverOptions::default()).map_err(CoreError::from)?;
    let mut weights = vec![0.0f64; oracle.links().len()];
    for _round in 0..MAX_ROUNDS {
        let sol = inc.solution();
        // Delivery duals: in the minimize direction a binding >= row prices
        // positive — the airtime cost of one more Mbps on that link.
        weights.fill(0.0);
        for (row, &idx) in demanded.iter().enumerate() {
            let link = universe[idx];
            if let Some(pos) = oracle.links().iter().position(|&l| l == link) {
                weights[pos] = sol.dual(row).max(0.0);
            }
        }
        #[cfg(feature = "debug-invariants")]
        assert_pricing_weights(&weights);
        // Stage-A duals are not smoothed (the feasibility loop is short);
        // heuristic-first still applies.
        let request = PricingRequest {
            oracle,
            raw_weights: &weights,
            search_weights: &weights,
            threshold: 1.0 + PRICE_TOL,
            pool,
        };
        let answer = price_component(model, &request, tuning.heuristic_first(), scratch);
        stats.heuristic_ns += answer.heuristic_ns;
        stats.exact_ns += answer.exact_ns;
        if answer.exact_invoked {
            stats.exact_calls += 1;
        }
        let Some((set, _value)) = answer.column else {
            break;
        };
        if answer.by_heuristic {
            stats.heuristic_columns += 1;
        }
        let terms: Vec<(usize, f64)> = demanded
            .iter()
            .enumerate()
            .filter_map(|(row, &idx)| set.rate_of(universe[idx]).map(|r| (row, r.as_mbps())))
            .collect();
        inc.add_column(format!("a{}", pool.len()), 1.0, &terms)
            .map_err(CoreError::from)?;
        pool.push(set);
        inc.reoptimize().map_err(CoreError::from)?;
        stats.pricing_rounds += 1;
        stats.columns_generated += 1;
    }
    let airtime = inc.solution().objective();
    stats.pivots += inc.pivots();
    if airtime > 1.0 + FEAS_TOL {
        return Err(CoreError::BackgroundInfeasible);
    }
    Ok(stats)
}

/// Runs stage A over every component, fanning the per-component solves out
/// across `tuning` threads in contiguous chunks. Results (counters and
/// errors) are merged in component order, so the outcome — including which
/// error is reported when several components fail — is identical to the
/// sequential loop for any thread count.
#[allow(clippy::too_many_arguments)]
fn stage_a_all<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    demand: &[f64],
    components: &[Vec<LinkId>],
    oracles: &[&MaxWeightOracle],
    pools: &mut [Vec<RatedSet>],
    scratches: &mut [PriceScratch],
    tuning: &PricingTuning,
    stats: &mut ColgenStats,
) -> Result<(), CoreError> {
    let threads = tuning.resolved_threads().min(components.len().max(1));
    if threads <= 1 || components.len() <= 1 {
        for ci in 0..components.len() {
            let delta = stage_a(
                model,
                universe,
                demand,
                &components[ci],
                oracles[ci],
                &mut pools[ci],
                &mut scratches[ci],
                tuning,
            )?;
            stats.absorb(delta);
        }
        return Ok(());
    }
    let chunk = components.len().div_ceil(threads);
    let mut slots: Vec<Option<Result<ColgenStats, CoreError>>> = Vec::new();
    slots.resize_with(components.len(), || None);
    std::thread::scope(|scope| {
        for ((((comps, orcs), pls), scrs), slts) in components
            .chunks(chunk)
            .zip(oracles.chunks(chunk))
            .zip(pools.chunks_mut(chunk))
            .zip(scratches.chunks_mut(chunk))
            .zip(slots.chunks_mut(chunk))
        {
            scope.spawn(move || {
                for i in 0..comps.len() {
                    slts[i] = Some(stage_a(
                        model,
                        universe,
                        demand,
                        &comps[i],
                        orcs[i],
                        &mut pls[i],
                        &mut scrs[i],
                        tuning,
                    ));
                }
            });
        }
    });
    for slot in slots {
        let delta = slot.ok_or(CoreError::Invariant("every stage-A job completed"))??;
        stats.absorb(delta);
    }
    Ok(())
}

/// Index maps of one stage-B master build.
struct MasterLayout {
    /// Budget row per component (`None` for empty pools).
    budget_rows: Vec<Option<usize>>,
    /// Delivery row per universe index.
    link_rows: Vec<usize>,
    /// λ variable per `(component, pool position)`, flattened per component.
    lambdas: Vec<Vec<VarId>>,
    f: VarId,
}

/// Builds the joint stage-B master over the current pools and solves it.
fn build_master(
    pools: &[Vec<RatedSet>],
    components: &[Vec<LinkId>],
    universe: &[LinkId],
    demand: &[f64],
    new_path: &Path,
) -> Result<(IncrementalSolver, MasterLayout), CoreError> {
    let mut lp = Problem::new(Direction::Maximize);
    let f = lp.add_var("f", 1.0);
    let lambdas: Vec<Vec<VarId>> = pools
        .iter()
        .enumerate()
        .map(|(ci, pool)| {
            (0..pool.len())
                .map(|i| lp.add_var(format!("l{ci}_{i}"), 0.0))
                .collect()
        })
        .collect();
    let mut constraint_index = 0usize;
    let mut budget_rows = Vec::with_capacity(pools.len());
    for vars in &lambdas {
        if vars.is_empty() {
            budget_rows.push(None);
            continue;
        }
        let budget: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&budget, Relation::Le, 1.0)?;
        budget_rows.push(Some(constraint_index));
        constraint_index += 1;
    }
    let mut link_rows = vec![usize::MAX; universe.len()];
    for (ci, component) in components.iter().enumerate() {
        for &link in component {
            let idx = universe
                .binary_search(&link)
                .map_err(|_| CoreError::Invariant("component is a subset of the universe"))?;
            let mut terms: Vec<_> = pools[ci]
                .iter()
                .zip(&lambdas[ci])
                .filter_map(|(set, &var)| set.rate_of(link).map(|r| (var, r.as_mbps())))
                .collect();
            if new_path.contains(link) {
                terms.push((f, -1.0));
            }
            lp.add_constraint(&terms, Relation::Ge, demand[idx])?;
            link_rows[idx] = constraint_index;
            constraint_index += 1;
        }
    }
    let inc = IncrementalSolver::new(&lp, SolverOptions::default()).map_err(CoreError::from)?;
    Ok((
        inc,
        MasterLayout {
            budget_rows,
            link_rows,
            lambdas,
            f,
        },
    ))
}

/// Canonical total order on rated sets (shorter first, then couples
/// lexicographically by link id and rate): the order the canonical final
/// master's columns are laid out in, so the answer depends only on *which*
/// columns converged into the support, never on when they were discovered.
fn canonical_set_cmp(a: &RatedSet, b: &RatedSet) -> Ordering {
    let (ac, bc) = (a.couples(), b.couples());
    ac.len().cmp(&bc.len()).then_with(|| {
        for ((la, ra), (lb, rb)) in ac.iter().zip(bc) {
            let by_couple = la
                .cmp(lb)
                .then_with(|| ra.as_mbps().total_cmp(&rb.as_mbps()));
            if by_couple != Ordering::Equal {
                return by_couple;
            }
        }
        Ordering::Equal
    })
}

/// The full two-stage column-generation solve over prepared components and
/// their seed pools. Stage A/B grow `pools` in place; the seed pools are the
/// query-independent part a [`crate::CompiledInstance`] precomputes, the
/// demand vector and everything after it are per-query.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_with_pools<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    components: &[Vec<LinkId>],
    oracles: &[&MaxWeightOracle],
    mut pools: Vec<Vec<RatedSet>>,
    demand: &[f64],
    new_path: &Path,
    dust_epsilon: f64,
    tuning: &PricingTuning,
) -> Result<ColgenOutcome, CoreError> {
    let mut stats = ColgenStats::default();
    let mut scratches: Vec<PriceScratch> = oracles.iter().map(|o| o.new_scratch()).collect();

    // Stage A: per-component feasibility, growing the pools.
    stage_a_all(
        model,
        universe,
        demand,
        components,
        oracles,
        &mut pools,
        &mut scratches,
        tuning,
        &mut stats,
    )?;

    // Stage B: joint throughput master with per-component pricing. A master
    // rebuild (cold start) only happens in the rare case the warm append is
    // refused because phase 1 dropped a redundant row.
    let (mut master, mut layout) = build_master(&pools, components, universe, demand, new_path)?;
    // Per-component weight buffers, reused across rounds. `centers` holds
    // the previous round's raw duals when stabilization is on.
    let mut raw_w: Vec<Vec<f64>> = oracles
        .iter()
        .map(|o| vec![0.0f64; o.links().len()])
        .collect();
    let mut search_w: Vec<Vec<f64>> = raw_w.clone();
    let mut centers: Vec<Vec<f64>> = if tuning.stabilized() {
        raw_w.clone()
    } else {
        Vec::new()
    };
    let mut airtimes = vec![0.0f64; oracles.len()];
    let mut have_center = false;
    // Per-column "was ever basic" flags, parallel to `pools`: the survivors
    // when the pool cap forces an eviction.
    let mut ever_basic: Vec<Vec<bool>> = pools.iter().map(|p| vec![false; p.len()]).collect();
    stats.pool_peak = stats.pool_peak.max(pools.iter().map(Vec::len).sum());
    for _round in 0..MAX_ROUNDS {
        if tuning.pool_cap > 0 {
            // Mark this master's basic columns, then drop never-basic ones
            // from any component over the cap. Evicted columns stay exact:
            // if the optimum needs one, pricing regenerates it (the oracle
            // certificate never consults the pool).
            let mut evicted_any = false;
            {
                let sol = master.solution();
                for (flags, vars) in ever_basic.iter_mut().zip(&layout.lambdas) {
                    for (flag, &var) in flags.iter_mut().zip(vars) {
                        *flag |= sol.value(var) > SUPPORT_EPS;
                    }
                }
            }
            for (pool, flags) in pools.iter_mut().zip(&mut ever_basic) {
                if pool.len() <= tuning.pool_cap {
                    continue;
                }
                let before = pool.len();
                let mut keep = flags.iter().copied();
                pool.retain(|_| keep.next().unwrap_or(true));
                flags.retain(|&f| f);
                if pool.len() < before {
                    stats.pool_evicted += before - pool.len();
                    evicted_any = true;
                }
            }
            if evicted_any {
                stats.pivots += master.pivots();
                let (m, l) = build_master(&pools, components, universe, demand, new_path)?;
                master = m;
                layout = l;
            }
        }
        let sol = master.solution();
        for (ci, oracle) in oracles.iter().enumerate() {
            let Some(budget_row) = layout.budget_rows[ci] else {
                airtimes[ci] = 0.0;
                continue;
            };
            airtimes[ci] = sol.dual(budget_row).max(0.0);
            for (j, l) in oracle.links().iter().enumerate() {
                let idx = universe
                    .binary_search(l)
                    .map_err(|_| CoreError::Invariant("oracle links are in the universe"))?;
                raw_w[ci][j] = (-sol.dual(layout.link_rows[idx])).max(0.0);
            }
            #[cfg(feature = "debug-invariants")]
            assert_pricing_weights(&raw_w[ci]);
            if tuning.stabilized() {
                if have_center {
                    for j in 0..raw_w[ci].len() {
                        search_w[ci][j] = tuning.stab_alpha * raw_w[ci][j]
                            + (1.0 - tuning.stab_alpha) * centers[ci][j];
                    }
                } else {
                    search_w[ci].copy_from_slice(&raw_w[ci]);
                }
                centers[ci].copy_from_slice(&raw_w[ci]);
            }
        }
        have_center = true;
        let answers = {
            let requests: Vec<PricingRequest<'_>> = (0..oracles.len())
                .map(|ci| PricingRequest {
                    oracle: oracles[ci],
                    raw_weights: &raw_w[ci],
                    search_weights: if tuning.stabilized() {
                        &search_w[ci]
                    } else {
                        &raw_w[ci]
                    },
                    threshold: airtimes[ci] + PRICE_TOL,
                    pool: &pools[ci],
                })
                .collect();
            price_components(
                model,
                &requests,
                tuning.heuristic_first(),
                tuning.threads,
                &mut scratches,
            )
        };
        let mut added = false;
        let mut rebuild = false;
        for (ci, answer) in answers.into_iter().enumerate() {
            stats.heuristic_ns += answer.heuristic_ns;
            stats.exact_ns += answer.exact_ns;
            if answer.exact_invoked {
                stats.exact_calls += 1;
            }
            let Some(budget_row) = layout.budget_rows[ci] else {
                continue;
            };
            let Some((set, _value)) = answer.column else {
                // `price_component` only reports "no column" after the exact
                // search failed to price one in — the exactness certificate.
                continue;
            };
            if answer.by_heuristic {
                stats.heuristic_columns += 1;
            }
            let mut terms: Vec<(usize, f64)> = vec![(budget_row, 1.0)];
            for &(link, rate) in set.couples() {
                let idx = universe
                    .binary_search(&link)
                    .map_err(|_| CoreError::Invariant("priced set is inside the universe"))?;
                terms.push((layout.link_rows[idx], rate.as_mbps()));
            }
            let name = format!("l{ci}_{}", pools[ci].len());
            match master.add_column(name, 0.0, &terms) {
                Ok(var) => {
                    layout.lambdas[ci].push(var);
                    pools[ci].push(set);
                    ever_basic[ci].push(false);
                    added = true;
                }
                Err(awb_lp::SolveError::Problem(awb_lp::ProblemError::RedundantRowsEliminated)) => {
                    pools[ci].push(set);
                    ever_basic[ci].push(false);
                    added = true;
                    rebuild = true;
                }
                Err(e) => return Err(CoreError::from(e)),
            }
            stats.columns_generated += 1;
        }
        if !added {
            break;
        }
        stats.pool_peak = stats.pool_peak.max(pools.iter().map(Vec::len).sum());
        stats.pricing_rounds += 1;
        if rebuild {
            stats.pivots += master.pivots();
            let (m, l) = build_master(&pools, components, universe, demand, new_path)?;
            master = m;
            layout = l;
        } else {
            master.reoptimize().map_err(CoreError::from)?;
        }
        #[cfg(feature = "debug-invariants")]
        assert_finite_objective(master.solution().objective());
    }
    stats.pivots += master.pivots();

    // Duals come from the *converged* master: its priced-out columns pin
    // the dual solution to the one the full-enumeration LP reports, whereas
    // the minimal support master below is dual-degenerate (fewer columns ⟹
    // a larger dual polytope, so the solver may pick a different vertex).
    let converged = master.solution();
    let airtime_dual = layout
        .budget_rows
        .iter()
        .flatten()
        .map(|&row| converged.dual(row).max(0.0))
        .fold(0.0, f64::max);
    let link_scarcity: Vec<f64> = layout
        .link_rows
        .iter()
        .map(|&row| {
            if row == usize::MAX {
                0.0
            } else {
                (-converged.dual(row)).max(0.0)
            }
        })
        .collect();

    // Canonical final re-solve: extract the converged support (λ above
    // noise), lay its columns out in canonical order, and solve that minimal
    // master from scratch. The reported optimum and schedule become a pure
    // function of the converged support — identical for heuristic-first vs
    // exact-only pricing, any thread count, and any column-discovery order
    // that converges to the same support.
    let mut support: Vec<Vec<RatedSet>> = Vec::with_capacity(pools.len());
    for (ci, pool) in pools.iter().enumerate() {
        let mut sup: Vec<RatedSet> = pool
            .iter()
            .zip(&layout.lambdas[ci])
            .filter(|(_, &var)| converged.value(var) > SUPPORT_EPS)
            .map(|(set, _)| set.clone())
            .collect();
        sup.sort_by(canonical_set_cmp);
        support.push(sup);
    }
    let (final_master, final_layout) =
        build_master(&support, components, universe, demand, new_path)?;
    stats.pivots += final_master.pivots();
    let layout = final_layout;

    // Extract the Eq. 6 outcome exactly like the enumeration path does.
    let solution = final_master.solution();
    let mut parts = Vec::with_capacity(components.len());
    for (ci, sup) in support.iter().enumerate() {
        let entries: Vec<(RatedSet, f64)> = sup
            .iter()
            .zip(&layout.lambdas[ci])
            .map(|(set, &var)| (set.clone(), solution.value(var)))
            .filter(|(_, share)| *share > dust_epsilon)
            .collect();
        let total: f64 = entries.iter().map(|(_, s)| s).sum();
        let entries = if total > 1.0 {
            entries
                .into_iter()
                .map(|(s, share)| (s, share / total))
                .collect()
        } else {
            entries
        };
        parts.push(Schedule::new(entries));
    }
    // One component: the schedule is already joint (and may legitimately use
    // a link in several entries, which the parallel merge forbids).
    let schedule = if parts.len() == 1 {
        parts
            .pop()
            .ok_or(CoreError::Invariant("single-component split is non-empty"))?
    } else {
        crate::decomposition::merge_parallel_schedules(&parts)
    };
    let num_sets = pools.iter().map(Vec::len).sum();
    let result = AvailableBandwidth::from_parts(
        solution.value(layout.f).max(0.0),
        schedule,
        universe.to_vec(),
        num_sets,
        stats.pivots,
        airtime_dual,
        link_scarcity,
    );
    Ok(ColgenOutcome {
        result,
        pool: pools.into_iter().flatten().collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::available::{available_bandwidth, AvailableBandwidthOptions, SolverKind};
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// `n` disjoint links in a row; conflicts as declared.
    fn line_model(
        n: usize,
        rates: &[Rate],
        conflicts: &[(usize, usize)],
    ) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, rates);
        }
        for &(i, j) in conflicts {
            b = b.conflict_all(links[i], links[j]);
        }
        (b.build(), links)
    }

    fn colgen_options() -> AvailableBandwidthOptions {
        AvailableBandwidthOptions {
            solver: SolverKind::ColumnGeneration,
            ..AvailableBandwidthOptions::default()
        }
    }

    #[test]
    fn relay_capacity_matches_enumeration() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(10.0, 0.0);
        let c = t.add_node(20.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let bc = t.add_link(b, c).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[r(54.0)])
            .alone_rates(bc, &[r(54.0)])
            .conflict_all(ab, bc)
            .build();
        let p = Path::new(m.topology(), vec![ab, bc]).unwrap();
        let out = available_bandwidth(&m, &[], &p, &colgen_options()).unwrap();
        assert!((out.bandwidth_mbps() - 27.0).abs() < 1e-7);
        assert!(out.schedule().is_valid(&m));
        for &l in p.links() {
            assert!(out.schedule().link_throughput(l) >= 27.0 - 1e-7);
        }
    }

    #[test]
    fn matches_enumeration_with_background_and_duals() {
        let (m, links) = line_model(3, &[r(54.0), r(18.0)], &[(0, 1), (1, 2)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        for bg in [0.0, 10.0, 27.0] {
            let background = vec![Flow::new(bg_path.clone(), bg).unwrap()];
            let full = available_bandwidth(
                &m,
                &background,
                &new_path,
                &AvailableBandwidthOptions::default(),
            )
            .unwrap();
            let cg = available_bandwidth(&m, &background, &new_path, &colgen_options()).unwrap();
            assert!(
                (full.bandwidth_mbps() - cg.bandwidth_mbps()).abs() < 1e-6,
                "bg {bg}: full {} vs colgen {}",
                full.bandwidth_mbps(),
                cg.bandwidth_mbps()
            );
            assert!((full.airtime_shadow_price() - cg.airtime_shadow_price()).abs() < 1e-6);
            for &l in full.universe() {
                let a = full.link_scarcity(l).unwrap();
                let b = cg.link_scarcity(l).unwrap();
                assert!((a - b).abs() < 1e-6, "link {l:?}: {a} vs {b}");
            }
            assert!(cg.schedule().is_valid(&m));
            assert!(cg.num_sets() <= full.num_sets());
        }
    }

    #[test]
    fn pool_cap_bounds_the_master_and_preserves_the_optimum() {
        // A dense conflict chain with rate choices: stage B prices a pool
        // comfortably larger than the cap below.
        let n = 10;
        let conflicts: Vec<(usize, usize)> = (0..n - 1)
            .map(|i| (i, i + 1))
            .chain((0..n - 2).map(|i| (i, i + 2)))
            .collect();
        let (m, links) = line_model(n, &[r(54.0), r(36.0), r(18.0)], &conflicts);
        let new_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let background: Vec<Flow> = links[1..]
            .iter()
            .map(|&l| {
                let p = Path::new(m.topology(), vec![l]).unwrap();
                Flow::new(p, 2.0).unwrap()
            })
            .collect();
        let unbounded =
            available_bandwidth_colgen(&m, &background, &new_path, &[], &colgen_options()).unwrap();
        assert!(unbounded.stats.pool_peak >= unbounded.pool.len());
        assert_eq!(unbounded.stats.pool_evicted, 0);
        let capped_opts = AvailableBandwidthOptions {
            column_pool_cap: 8,
            ..colgen_options()
        };
        let capped =
            available_bandwidth_colgen(&m, &background, &new_path, &[], &capped_opts).unwrap();
        // Exactness: the evicting solve certifies the same optimum.
        assert!(
            (capped.result.bandwidth_mbps() - unbounded.result.bandwidth_mbps()).abs() < 1e-6,
            "capped {} vs unbounded {}",
            capped.result.bandwidth_mbps(),
            unbounded.result.bandwidth_mbps()
        );
        assert!(
            capped.stats.pool_evicted > 0,
            "cap 8 never triggered (peak {}, pool {})",
            capped.stats.pool_peak,
            capped.pool.len()
        );
        assert!(capped.stats.pool_peak >= capped.pool.len());
        assert!(capped.result.schedule().is_valid(&m));
    }

    #[test]
    fn infeasible_background_is_reported() {
        let (m, links) = line_model(2, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 60.0).unwrap()];
        let err = available_bandwidth(&m, &background, &new_path, &colgen_options()).unwrap_err();
        assert_eq!(err, CoreError::BackgroundInfeasible);
    }

    #[test]
    fn dead_link_on_new_path_gives_zero() {
        let (m0, links) = line_model(2, &[r(54.0)], &[]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        b = b.alone_rates(links[0], &[r(54.0)]);
        let m = b.build();
        let p = Path::new(m.topology(), vec![links[1]]).unwrap();
        let out = available_bandwidth(&m, &[], &p, &colgen_options()).unwrap();
        assert_eq!(out.bandwidth_mbps(), 0.0);
    }

    #[test]
    fn decomposed_components_match_enumeration() {
        // Two independent components: {0,1} conflicting, {2} alone.
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1)]);
        let bg_path = Path::new(m.topology(), vec![links[2]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let background = vec![Flow::new(bg_path, 20.0).unwrap()];
        let opts_full = AvailableBandwidthOptions {
            decompose: true,
            ..AvailableBandwidthOptions::default()
        };
        let opts_cg = AvailableBandwidthOptions {
            decompose: true,
            ..colgen_options()
        };
        let full = available_bandwidth(&m, &background, &new_path, &opts_full).unwrap();
        let cg = available_bandwidth(&m, &background, &new_path, &opts_cg).unwrap();
        assert!((full.bandwidth_mbps() - cg.bandwidth_mbps()).abs() < 1e-6);
        assert!(cg.schedule().is_valid(&m));
    }

    #[test]
    fn seed_pool_reuse_reaches_same_optimum_with_fewer_rounds() {
        let (m, links) = line_model(4, &[r(54.0), r(18.0)], &[(0, 1), (1, 2), (2, 3)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[2]]).unwrap();
        let background = vec![Flow::new(bg_path, 12.0).unwrap()];
        let opts = colgen_options();
        let first = available_bandwidth_colgen(&m, &background, &new_path, &[], &opts).unwrap();
        let second =
            available_bandwidth_colgen(&m, &background, &new_path, &first.pool, &opts).unwrap();
        assert!(
            (first.result.bandwidth_mbps() - second.result.bandwidth_mbps()).abs() < 1e-9,
            "{} vs {}",
            first.result.bandwidth_mbps(),
            second.result.bandwidth_mbps()
        );
        assert!(second.stats.columns_generated <= first.stats.columns_generated);
    }

    #[test]
    fn oracle_variant_matches_fresh_solve() {
        let (m, links) = line_model(3, &[r(54.0)], &[(0, 1), (1, 2)]);
        let bg_path = Path::new(m.topology(), vec![links[0]]).unwrap();
        let new_path = Path::new(m.topology(), vec![links[1]]).unwrap();
        let background = vec![Flow::new(bg_path, 13.5).unwrap()];
        let opts = colgen_options();
        let universe = link_universe(&background, &new_path);
        let oracle = MaxWeightOracle::new(&m, &universe);
        let fresh = available_bandwidth_colgen(&m, &background, &new_path, &[], &opts).unwrap();
        let cached = available_bandwidth_colgen_with_oracle(
            &m,
            &oracle,
            &background,
            &new_path,
            &fresh.pool,
            &opts,
        )
        .unwrap();
        assert!((fresh.result.bandwidth_mbps() - cached.result.bandwidth_mbps()).abs() < 1e-9);
    }
}
