use awb_net::{LinkId, LinkRateModel};
use awb_sets::RatedSet;
use std::fmt;

/// A link scheduling `S = {(E_i, R_i*, λ_i)}` (paper §2.3): rate-coupled
/// concurrent-transmission sets, each active for a time share `λ_i` of the
/// scheduling period.
///
/// Produced by the Eq. 6 LP as the witness of the computed available
/// bandwidth; can also be constructed by hand for tests and what-if
/// analyses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    entries: Vec<(RatedSet, f64)>,
}

impl Schedule {
    /// Creates a schedule from `(set, time share)` entries.
    ///
    /// # Panics
    ///
    /// Panics if a share is negative/non-finite or the shares sum to more
    /// than `1 + 1e-9`.
    pub fn new(entries: Vec<(RatedSet, f64)>) -> Schedule {
        for (_, share) in &entries {
            assert!(
                share.is_finite() && *share >= 0.0,
                "time shares must be finite and non-negative, got {share}"
            );
        }
        let total: f64 = entries.iter().map(|(_, s)| s).sum();
        assert!(total <= 1.0 + 1e-9, "time shares sum to {total} > 1");
        Schedule { entries }
    }

    /// An empty schedule (all links idle).
    pub fn empty() -> Schedule {
        Schedule::default()
    }

    /// The `(set, share)` entries.
    pub fn entries(&self) -> &[(RatedSet, f64)] {
        &self.entries
    }

    /// Total scheduled time share `Σ λ_i`.
    pub fn total_share(&self) -> f64 {
        self.entries.iter().map(|(_, s)| s).sum()
    }

    /// Idle (unscheduled) fraction of the period.
    pub fn idle_share(&self) -> f64 {
        (1.0 - self.total_share()).max(0.0)
    }

    /// Throughput delivered to `link` by this schedule, in Mbps:
    /// `Σ_i λ_i · r_i(link)` (Eq. 2's right-hand side).
    pub fn link_throughput(&self, link: LinkId) -> f64 {
        self.entries
            .iter()
            .filter_map(|(set, share)| set.rate_of(link).map(|r| r.as_mbps() * share))
            .sum()
    }

    /// The full throughput vector over `universe`.
    pub fn throughput_vector(&self, universe: &[LinkId]) -> Vec<f64> {
        universe.iter().map(|&l| self.link_throughput(l)).collect()
    }

    /// Checks that every scheduled set is admissible under `model`.
    pub fn is_valid<M: LinkRateModel>(&self, model: &M) -> bool {
        self.entries
            .iter()
            .all(|(set, _)| set.is_empty() || model.admissible(set.couples()))
    }

    /// Drops entries with a share below `epsilon` (LP output hygiene).
    #[must_use]
    pub fn without_dust(&self, epsilon: f64) -> Schedule {
        Schedule {
            entries: self
                .entries
                .iter()
                .filter(|(_, s)| *s >= epsilon)
                .cloned()
                .collect(),
        }
    }

    /// The fraction of time during which `node` senses the channel busy
    /// under this schedule, assuming non-overlapping slots: the sum of the
    /// shares of every entry containing a link the node hears.
    ///
    /// This is the quantity a carrier-sensing node would measure against an
    /// *optimal* schedule, and the input to the paper's idle-ratio
    /// estimators (§4).
    pub fn busy_share_at<M: LinkRateModel>(&self, model: &M, node: awb_net::NodeId) -> f64 {
        let busy: f64 = self
            .entries
            .iter()
            .filter(|(set, _)| set.links().any(|l| model.node_hears(node, l)))
            .map(|(_, s)| s)
            .sum();
        busy.min(1.0)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "(idle)");
        }
        for (i, (set, share)) in self.entries.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "λ={share:.4} {set}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    fn two_link_model() -> (DeclarativeModel, LinkId, LinkId) {
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_node(f64::from(i), 0.0)).collect();
        let l1 = t.add_link(n[0], n[1]).unwrap();
        let l2 = t.add_link(n[2], n[3]).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(l1, &[r(54.0)])
            .alone_rates(l2, &[r(54.0)])
            .conflict_all(l1, l2)
            .build();
        (m, l1, l2)
    }

    #[test]
    fn throughput_accumulates_over_entries() {
        let (_, l1, l2) = two_link_model();
        let s = Schedule::new(vec![
            (vec![(l1, r(54.0))].into_iter().collect(), 0.25),
            (vec![(l2, r(54.0))].into_iter().collect(), 0.5),
            (vec![(l1, r(36.0))].into_iter().collect(), 0.25),
        ]);
        assert!((s.link_throughput(l1) - (0.25 * 54.0 + 0.25 * 36.0)).abs() < 1e-12);
        assert!((s.link_throughput(l2) - 27.0).abs() < 1e-12);
        assert_eq!(s.throughput_vector(&[l1, l2]).len(), 2);
        assert!((s.total_share() - 1.0).abs() < 1e-12);
        assert_eq!(s.idle_share(), 0.0);
    }

    #[test]
    fn validity_detects_conflicting_sets() {
        let (m, l1, l2) = two_link_model();
        let ok = Schedule::new(vec![(vec![(l1, r(54.0))].into_iter().collect(), 0.5)]);
        assert!(ok.is_valid(&m));
        let bad = Schedule::new(vec![(
            vec![(l1, r(54.0)), (l2, r(54.0))].into_iter().collect(),
            0.5,
        )]);
        assert!(!bad.is_valid(&m));
    }

    #[test]
    #[should_panic(expected = "> 1")]
    fn over_committed_schedule_panics() {
        let (_, l1, l2) = two_link_model();
        let _ = Schedule::new(vec![
            (vec![(l1, r(54.0))].into_iter().collect(), 0.7),
            (vec![(l2, r(54.0))].into_iter().collect(), 0.7),
        ]);
    }

    #[test]
    fn dust_filtering() {
        let (_, l1, l2) = two_link_model();
        let s = Schedule::new(vec![
            (vec![(l1, r(54.0))].into_iter().collect(), 1e-12),
            (vec![(l2, r(54.0))].into_iter().collect(), 0.5),
        ]);
        let clean = s.without_dust(1e-9);
        assert_eq!(clean.entries().len(), 1);
    }

    #[test]
    fn busy_share_counts_heard_entries() {
        let (m, l1, l2) = two_link_model();
        let tx1 = m.topology().link(l1).unwrap().tx();
        let s = Schedule::new(vec![
            (vec![(l1, r(54.0))].into_iter().collect(), 0.3),
            (vec![(l2, r(54.0))].into_iter().collect(), 0.4),
        ]);
        // tx1 participates in l1 and (declaratively) does not hear l2.
        assert!((s.busy_share_at(&m, tx1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_is_idle() {
        let s = Schedule::empty();
        assert_eq!(s.total_share(), 0.0);
        assert_eq!(s.idle_share(), 1.0);
        assert_eq!(s.to_string(), "(idle)");
    }
}
