//! Property tests for incremental recompilation: random delta sequences
//! applied through `CompiledInstance::apply_delta` must be bit-identical
//! to compiling the post-delta model from scratch — for both solvers, for
//! declarative and SINR models — and components the delta did not touch
//! must be reused structurally (same `Arc`, same content hash), never
//! recompiled.

use awb_core::{
    AvailableBandwidthOptions, CompiledInstance, DeltaReuse, SolverKind, UnitCache,
    DEFAULT_RETENTION_EPOCHS,
};
use awb_net::{
    DeclarativeModel, LinkId, LinkRateModel, NodeId, Path, SinrModel, Topology, TopologyDelta,
};
use awb_phy::{Phy, Rate};
use proptest::prelude::*;
use std::sync::Arc;

fn options(solver: SolverKind) -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver,
        decompose: true,
        ..AvailableBandwidthOptions::default()
    }
}

const SOLVERS: [SolverKind; 2] = [SolverKind::FullEnumeration, SolverKind::ColumnGeneration];

/// Asserts the incremental and fresh instances are the same compiled
/// artifact: identical partition, identical per-unit content hashes (hash
/// equality implies byte equality under deterministic compilation), and a
/// bit-identical answer to the same query.
fn assert_bit_identical<M: LinkRateModel>(
    model: &M,
    incremental: &CompiledInstance,
    fresh: &CompiledInstance,
    path: &Path,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(incremental.components(), fresh.components());
    for (a, b) in incremental.units().iter().zip(fresh.units()) {
        prop_assert_eq!(a.content_hash(), b.content_hash());
        prop_assert_eq!(a.num_columns(), b.num_columns());
    }
    prop_assert_eq!(incremental.num_columns(), fresh.num_columns());
    let warm = incremental.query(model, &[], path);
    let cold = fresh.query(model, &[], path);
    match (warm, cold) {
        (Ok(w), Ok(c)) => {
            prop_assert_eq!(
                w.bandwidth_mbps().to_bits(),
                c.bandwidth_mbps().to_bits(),
                "incremental {} vs fresh {}",
                w.bandwidth_mbps(),
                c.bandwidth_mbps()
            );
        }
        (Err(w), Err(c)) => prop_assert_eq!(w.to_string(), c.to_string()),
        (w, c) => {
            return Err(TestCaseError::fail(format!(
                "divergent outcomes: warm {w:?} vs cold {c:?}"
            )))
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// SINR: a random mobile network. Nodes move between epochs; the honest
// delta comes from `TopologyDelta::between` (exact for geometric models).
// ---------------------------------------------------------------------------

/// `pairs` disjoint tx→rx links on an integer grid, plus a sequence of
/// epochs, each moving a subset of nodes to new grid positions.
#[derive(Debug, Clone)]
struct SinrTrace {
    positions: Vec<(f64, f64)>,
    epochs: Vec<Vec<(usize, f64, f64)>>,
}

fn grid_pos() -> impl Strategy<Value = (f64, f64)> {
    // Coarse integer grid: keeps geometry reproducible and spans the
    // interesting range from "same collision domain" to "independent".
    (0i32..12, 0i32..12).prop_map(|(x, y)| (f64::from(x) * 30.0, f64::from(y) * 30.0))
}

fn sinr_trace() -> impl Strategy<Value = SinrTrace> {
    (2usize..=4).prop_flat_map(|pairs| {
        let nodes = pairs * 2;
        (
            proptest::collection::vec(grid_pos(), nodes),
            proptest::collection::vec(
                proptest::collection::vec((0..nodes, grid_pos()), 0..=3).prop_map(|moves| {
                    moves
                        .into_iter()
                        .map(|(n, (x, y))| (n, x, y))
                        .collect::<Vec<_>>()
                }),
                1..=3,
            ),
        )
            .prop_map(|(positions, epochs)| SinrTrace { positions, epochs })
    })
}

fn sinr_model(positions: &[(f64, f64)]) -> SinrModel {
    let mut t = Topology::new();
    let ids: Vec<NodeId> = positions.iter().map(|&(x, y)| t.add_node(x, y)).collect();
    for pair in ids.chunks(2) {
        t.add_link(pair[0], pair[1]).expect("fresh node pair");
    }
    SinrModel::new(t, Phy::paper_default())
}

// ---------------------------------------------------------------------------
// Declarative: disjoint links under a fixed random conflict graph; epochs
// rewrite rate lists (including killing links — empty list). The honest
// delta again comes from `TopologyDelta::between`, which sees alone-rate
// edits; the conflict statements never change, so its declarative blind
// spot is not exercised dishonestly.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct DeclarativeTrace {
    links: usize,
    rates: Vec<Vec<f64>>,
    conflicts: Vec<(usize, usize)>,
    epochs: Vec<Vec<(usize, Vec<f64>)>>,
}

/// A rate list drawn as a bitmask over a fixed menu; `alive` forces it
/// non-empty (links 0 and 1 stay alive so the query path and background
/// flow always exist).
fn rate_list(alive: bool) -> impl Strategy<Value = Vec<f64>> {
    let lo = u8::from(alive);
    (lo..8u8).prop_map(|mask| {
        const MENU: [f64; 3] = [54.0, 36.0, 18.0];
        MENU.iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &r)| r)
            .collect()
    })
}

fn declarative_trace() -> impl Strategy<Value = DeclarativeTrace> {
    (3usize..=5).prop_flat_map(|links| {
        let rates = proptest::collection::vec(rate_list(true), links);
        let all_pairs: Vec<(usize, usize)> = (0..links)
            .flat_map(|i| ((i + 1)..links).map(move |j| (i, j)))
            .collect();
        let n_pairs = all_pairs.len();
        let conflicts = proptest::collection::vec(any::<bool>(), n_pairs).prop_map(move |mask| {
            all_pairs
                .iter()
                .zip(&mask)
                .filter(|&(_, &keep)| keep)
                .map(|(&p, _)| p)
                .collect::<Vec<_>>()
        });
        let epoch = proptest::collection::vec(
            (0..links).prop_flat_map(move |l| rate_list(l < 2).prop_map(move |rates| (l, rates))),
            1..=3,
        );
        let epochs = proptest::collection::vec(epoch, 1..=3);
        (rates, conflicts, epochs).prop_map(move |(rates, conflicts, epochs)| DeclarativeTrace {
            links,
            rates,
            conflicts,
            epochs,
        })
    })
}

fn declarative_model(trace: &DeclarativeTrace, rates: &[Vec<f64>]) -> DeclarativeModel {
    let mut t = Topology::new();
    let links: Vec<LinkId> = (0..trace.links)
        .map(|i| {
            let a = t.add_node(i as f64 * 100.0, 0.0);
            let b = t.add_node(i as f64 * 100.0 + 50.0, 0.0);
            t.add_link(a, b).expect("fresh node pair")
        })
        .collect();
    let mut b = DeclarativeModel::builder(t);
    for (i, list) in rates.iter().enumerate() {
        let list: Vec<Rate> = list.iter().map(|&m| Rate::from_mbps(m)).collect();
        b = b.alone_rates(links[i], &list);
    }
    for &(i, j) in &trace.conflicts {
        b = b.conflict_all(links[i], links[j]);
    }
    b.build()
}

fn apply_epoch(rates: &mut [Vec<f64>], epoch: &[(usize, Vec<f64>)]) {
    for (link, list) in epoch {
        rates[*link] = list.clone();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SINR mobility: chained deltas stay bit-identical to fresh compiles
    /// across every epoch, for both solvers.
    #[test]
    fn sinr_delta_sequences_match_fresh_compiles(trace in sinr_trace()) {
        for solver in SOLVERS {
            let opts = options(solver);
            let mut positions = trace.positions.clone();
            let mut model = sinr_model(&positions);
            let universe: Vec<LinkId> =
                (0..positions.len() / 2).map(LinkId::from_index).collect();
            let path = Path::new(model.topology(), vec![LinkId::from_index(0)])
                .expect("link 0 exists");
            let mut instance = CompiledInstance::compile(&model, &universe, &opts)
                .expect("initial compile succeeds");
            let mut cache = UnitCache::new(DEFAULT_RETENTION_EPOCHS);
            for moves in &trace.epochs {
                let mut next = positions.clone();
                for &(n, x, y) in moves {
                    next[n] = (x, y);
                }
                let new_model = sinr_model(&next);
                let delta = TopologyDelta::between(&model, &new_model);
                let (incremental, _reuse) = instance
                    .apply_delta(&new_model, &delta, &mut cache)
                    .expect("delta keeps the universe alive");
                cache.end_epoch();
                let fresh = CompiledInstance::compile(&new_model, &universe, &opts)
                    .expect("fresh compile succeeds");
                assert_bit_identical(&new_model, &incremental, &fresh, &path)?;
                positions = next;
                model = new_model;
                instance = incremental;
            }
        }
    }

    /// Declarative rate churn (including link death and resurrection):
    /// chained deltas stay bit-identical to fresh compiles.
    #[test]
    fn declarative_delta_sequences_match_fresh_compiles(trace in declarative_trace()) {
        for solver in SOLVERS {
            let opts = options(solver);
            let mut rates = trace.rates.clone();
            let mut model = declarative_model(&trace, &rates);
            let universe: Vec<LinkId> = (0..trace.links).map(LinkId::from_index).collect();
            let path = Path::new(model.topology(), vec![LinkId::from_index(0)])
                .expect("link 0 exists");
            let mut instance = CompiledInstance::compile(&model, &universe, &opts)
                .expect("initial compile succeeds");
            let mut cache = UnitCache::new(DEFAULT_RETENTION_EPOCHS);
            for epoch in &trace.epochs {
                let mut next = rates.clone();
                apply_epoch(&mut next, epoch);
                let new_model = declarative_model(&trace, &next);
                let delta = TopologyDelta::between(&model, &new_model);
                let (incremental, _reuse) = instance
                    .apply_delta(&new_model, &delta, &mut cache)
                    .expect("delta keeps the universe alive");
                cache.end_epoch();
                let fresh = CompiledInstance::compile(&new_model, &universe, &opts)
                    .expect("fresh compile succeeds");
                assert_bit_identical(&new_model, &incremental, &fresh, &path)?;
                rates = next;
                model = new_model;
                instance = incremental;
            }
        }
    }

    /// Component locality: a component whose membership is unchanged and
    /// whose members the delta did not touch is the *same `Arc`* as before
    /// — structurally reused, never rehashed or recompiled.
    #[test]
    fn untouched_components_are_arc_identical(trace in declarative_trace()) {
        let opts = options(SolverKind::FullEnumeration);
        let rates = trace.rates.clone();
        let model = declarative_model(&trace, &rates);
        let universe: Vec<LinkId> = (0..trace.links).map(LinkId::from_index).collect();
        let instance = CompiledInstance::compile(&model, &universe, &opts)
            .expect("initial compile succeeds");
        let mut cache = UnitCache::new(DEFAULT_RETENTION_EPOCHS);
        let epoch = &trace.epochs[0];
        let mut next = rates.clone();
        apply_epoch(&mut next, epoch);
        let new_model = declarative_model(&trace, &next);
        let delta = TopologyDelta::between(&model, &new_model);
        let touched = delta.touched_links(new_model.topology());
        let (incremental, reuse) = instance
            .apply_delta(&new_model, &delta, &mut cache)
            .expect("delta keeps the universe alive");
        let mut expected_reused = 0usize;
        for (component, unit) in incremental.components().iter().zip(incremental.units()) {
            let untouched = component.iter().all(|l| touched.binary_search(l).is_err());
            let old_idx = instance.components().iter().position(|c| c == component);
            if let (true, Some(old_idx)) = (untouched, old_idx) {
                prop_assert!(
                    Arc::ptr_eq(unit, &instance.units()[old_idx]),
                    "untouched component {component:?} was rebuilt"
                );
                prop_assert_eq!(
                    unit.content_hash(),
                    instance.units()[old_idx].content_hash()
                );
                expected_reused += 1;
            }
        }
        prop_assert_eq!(reuse.units_reused, expected_reused);
        prop_assert_eq!(
            reuse.units_reused + reuse.unit_cache_hits + reuse.units_compiled,
            incremental.units().len()
        );
        // An empty delta reuses everything wholesale.
        let (same, reuse) = incremental
            .apply_delta(&new_model, &TopologyDelta::default(), &mut cache)
            .expect("empty delta");
        prop_assert_eq!(
            reuse,
            DeltaReuse {
                units_reused: incremental.units().len(),
                ..DeltaReuse::default()
            }
        );
        for (a, b) in same.units().iter().zip(incremental.units()) {
            prop_assert!(Arc::ptr_eq(a, b));
        }
    }
}
