//! Property tests for the pricing strategies of the column-generation
//! solver: heuristic-first pricing (greedy constructor + exact fallback)
//! must certify the *same* optimum as exact-only pricing bit-for-bit — the
//! convergence certificate is always an exact oracle round, and the final
//! canonical re-solve makes the answer a pure function of the converged
//! support — and parallel per-component pricing must be bit-identical to
//! sequential pricing for any thread count.

use awb_core::{AvailableBandwidthOptions, Flow, PricingMode, Session, SolverKind};
use awb_net::{DeclarativeModel, LinkId, Path, SinrModel, Topology};
use awb_phy::{Phy, Rate};
use proptest::prelude::*;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

fn opts(pricing: PricingMode) -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver: SolverKind::ColumnGeneration,
        pricing,
        ..AvailableBandwidthOptions::default()
    }
}

/// The "chain + cross traffic" family of `proptest_colgen.rs`: an n-hop
/// declarative chain with interference spread, plus one background link
/// conflicting with a random hop.
#[derive(Debug, Clone)]
struct Instance {
    hops: usize,
    spread: usize,
    bg_conflicts_with: usize,
    bg_demand: f64,
    two_rates: bool,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..=5, 1usize..=2, any::<bool>(), 0.0f64..10.0).prop_flat_map(
        |(hops, spread, two_rates, bg_demand)| {
            (0..hops).prop_map(move |bg_conflicts_with| Instance {
                hops,
                spread,
                bg_conflicts_with,
                bg_demand,
                two_rates,
            })
        },
    )
}

fn build(inst: &Instance) -> (DeclarativeModel, Path, Vec<Flow>) {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=inst.hops)
        .map(|i| t.add_node(i as f64 * 10.0, 0.0))
        .collect();
    let chain: Vec<LinkId> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let ba = t.add_node(0.0, 100.0);
    let bb = t.add_node(10.0, 100.0);
    let bg = t.add_link(ba, bb).expect("fresh nodes");
    let rates: Vec<Rate> = if inst.two_rates {
        vec![r(54.0), r(36.0)]
    } else {
        vec![r(54.0)]
    };
    let mut b = DeclarativeModel::builder(t);
    for &l in chain.iter().chain([&bg]) {
        b = b.alone_rates(l, &rates);
    }
    for i in 0..inst.hops {
        for j in (i + 1)..inst.hops.min(i + inst.spread + 1) {
            b = b.conflict_all(chain[i], chain[j]);
        }
    }
    b = b.conflict_all(bg, chain[inst.bg_conflicts_with]);
    let model = b.build();
    let path = Path::new(model.topology(), chain).expect("chain links form a path");
    let bg_path = Path::new(model.topology(), vec![bg]).expect("single link path");
    let background = vec![Flow::new(bg_path, inst.bg_demand).expect("demand is valid")];
    (model, path, background)
}

/// A clustered declarative model for decomposition: `clusters` groups of
/// `size` links, all-rate conflicts within a group and none across, so each
/// group is one potential-conflict component. The new path is the first link
/// of the first group; every other link carries light background to pull it
/// into the universe.
fn build_clustered(
    clusters: usize,
    size: usize,
    bg_demand: f64,
) -> (DeclarativeModel, Path, Vec<Flow>) {
    let mut t = Topology::new();
    let mut groups: Vec<Vec<LinkId>> = Vec::new();
    for c in 0..clusters {
        let mut g = Vec::new();
        for i in 0..size {
            let a = t.add_node(c as f64 * 1000.0, i as f64 * 10.0);
            let b = t.add_node(c as f64 * 1000.0 + 5.0, i as f64 * 10.0);
            g.push(t.add_link(a, b).expect("fresh nodes"));
        }
        groups.push(g);
    }
    let mut b = DeclarativeModel::builder(t);
    for g in &groups {
        for &l in g {
            b = b.alone_rates(l, &[r(54.0), r(36.0), r(18.0)]);
        }
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                b = b.conflict_at(g[i], r(54.0), g[j], r(54.0));
                b = b.conflict_at(g[i], r(54.0), g[j], r(36.0));
                b = b.conflict_at(g[i], r(36.0), g[j], r(54.0));
            }
        }
    }
    let model = b.build();
    let path = Path::new(model.topology(), vec![groups[0][0]]).expect("single link path");
    let background: Vec<Flow> = groups
        .iter()
        .flat_map(|g| g.iter())
        .filter(|&&l| l != groups[0][0])
        .map(|&l| {
            let p = Path::new(model.topology(), vec![l]).expect("single link path");
            Flow::new(p, bg_demand).expect("demand is valid")
        })
        .collect();
    (model, path, background)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristic_first_certifies_the_exact_optimum_bitwise(inst in instance()) {
        let (model, path, background) = build(&inst);
        let mut heur = Session::new(&model, opts(PricingMode::HeuristicFirst));
        let mut exact = Session::new(&model, opts(PricingMode::ExactOnly));
        let a = heur.query(&background, &path).expect("instance is feasible");
        let b = exact.query(&background, &path).expect("instance is feasible");
        prop_assert_eq!(
            a.bandwidth_mbps().to_bits(),
            b.bandwidth_mbps().to_bits(),
            "heuristic-first {} vs exact-only {}",
            a.bandwidth_mbps(),
            b.bandwidth_mbps()
        );
        // The warm path (cached instance, seeded pools) reproduces both.
        let aw = heur.query(&background, &path).expect("warm re-query");
        prop_assert_eq!(heur.stats().warm_queries, 1);
        prop_assert_eq!(a.bandwidth_mbps().to_bits(), aw.bandwidth_mbps().to_bits());
    }

    #[test]
    fn heuristic_first_matches_exact_on_sinr_chains(
        hops in 2usize..=4,
        hop_length in 40.0f64..120.0,
        bg_demand in 0.0f64..4.0,
    ) {
        // SINR is rate-independent, so this exercises the membership-greedy
        // + rate-lift heuristic and the model-confirmed exact fallback.
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..=hops)
            .map(|i| t.add_node(i as f64 * hop_length, 0.0))
            .collect();
        let chain: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
            .collect();
        let model = SinrModel::new(t, Phy::paper_default());
        let path = Path::new(model.topology(), chain.clone()).expect("chain is a path");
        let background = if bg_demand > 0.0 {
            let first = Path::new(model.topology(), vec![chain[0]]).expect("one link");
            vec![Flow::new(first, bg_demand).expect("demand is valid")]
        } else {
            Vec::new()
        };
        let mut heur = Session::new(&model, opts(PricingMode::HeuristicFirst));
        let mut exact = Session::new(&model, opts(PricingMode::ExactOnly));
        match (heur.query(&background, &path), exact.query(&background, &path)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                a.bandwidth_mbps().to_bits(),
                b.bandwidth_mbps().to_bits(),
                "sinr heuristic-first {} vs exact-only {}",
                a.bandwidth_mbps(),
                b.bandwidth_mbps()
            ),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => return Err(TestCaseError::fail(format!(
                "pricing modes disagree on feasibility: {a:?} vs {b:?}"
            ))),
        }
    }

    #[test]
    fn parallel_pricing_is_bit_identical_to_sequential(
        clusters in 2usize..=4,
        size in 2usize..=4,
        threads in 2usize..=8,
        bg_demand in 0.0f64..6.0,
        heuristic in any::<bool>(),
    ) {
        let (model, path, background) = build_clustered(clusters, size, bg_demand);
        let pricing = if heuristic {
            PricingMode::HeuristicFirst
        } else {
            PricingMode::ExactOnly
        };
        let base = AvailableBandwidthOptions {
            decompose: true,
            ..opts(pricing)
        };
        let mut seq = Session::new(&model, AvailableBandwidthOptions {
            pricing_threads: 1,
            ..base
        });
        let mut par = Session::new(&model, AvailableBandwidthOptions {
            pricing_threads: threads,
            ..base
        });
        let a = seq.query(&background, &path).expect("instance is feasible");
        let b = par.query(&background, &path).expect("instance is feasible");
        prop_assert_eq!(
            a.bandwidth_mbps().to_bits(),
            b.bandwidth_mbps().to_bits(),
            "sequential {} vs {}-thread {}",
            a.bandwidth_mbps(),
            threads,
            b.bandwidth_mbps()
        );
        prop_assert_eq!(a.schedule().entries().len(), b.schedule().entries().len());
    }
}
