//! Property tests for the available-bandwidth model on random declarative
//! networks: LP invariants, Proposition 3 (maximal sets suffice), bound
//! orderings, and monotonicity in the background load.

use awb_core::bounds::{clique_upper_bound, lower_bound_max_set_size, UpperBoundOptions};
use awb_core::{
    available_bandwidth, available_bandwidth_with_sets, feasibility, AvailableBandwidthOptions,
    CoreError, Flow,
};
use awb_net::{DeclarativeModel, LinkId, Path, Topology};
use awb_phy::Rate;
use awb_sets::{enumerate_admissible, maximal_independent_sets, EnumerationOptions};
use proptest::prelude::*;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

/// A random "chain + cross traffic" instance: an n-hop chain path with
/// interference spread `spread`, plus one background link conflicting with a
/// random chain hop.
#[derive(Debug, Clone)]
struct Instance {
    hops: usize,
    spread: usize,
    bg_conflicts_with: usize,
    bg_demand: f64,
    two_rates: bool,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..=5, 1usize..=2, any::<bool>(), 0.0f64..10.0).prop_flat_map(
        |(hops, spread, two_rates, bg_demand)| {
            (0..hops).prop_map(move |bg_conflicts_with| Instance {
                hops,
                spread,
                bg_conflicts_with,
                bg_demand,
                two_rates,
            })
        },
    )
}

fn build(inst: &Instance) -> (DeclarativeModel, Path, Vec<Flow>) {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=inst.hops)
        .map(|i| t.add_node(i as f64 * 10.0, 0.0))
        .collect();
    let chain: Vec<LinkId> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let ba = t.add_node(0.0, 100.0);
    let bb = t.add_node(10.0, 100.0);
    let bg = t.add_link(ba, bb).expect("fresh nodes");
    let rates: Vec<Rate> = if inst.two_rates {
        vec![r(54.0), r(36.0)]
    } else {
        vec![r(54.0)]
    };
    let mut b = DeclarativeModel::builder(t);
    for &l in chain.iter().chain([&bg]) {
        b = b.alone_rates(l, &rates);
    }
    for i in 0..inst.hops {
        for j in (i + 1)..inst.hops.min(i + inst.spread + 1) {
            b = b.conflict_all(chain[i], chain[j]);
        }
    }
    b = b.conflict_all(bg, chain[inst.bg_conflicts_with]);
    let model = b.build();
    let path = Path::new(model.topology(), chain).expect("chain links form a path");
    let bg_path = Path::new(model.topology(), vec![bg]).expect("single link path");
    let background = vec![Flow::new(bg_path, inst.bg_demand).expect("demand is valid")];
    (model, path, background)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_witness_is_consistent(inst in instance()) {
        let (model, path, background) = build(&inst);
        let out = available_bandwidth(
            &model, &background, &path, &AvailableBandwidthOptions::default());
        let Ok(out) = out else {
            // Background can be infeasible only if its demand exceeds what
            // its link supports together with nothing else — not possible
            // here (54 or 36 >> 10), so reject.
            return Err(TestCaseError::fail("unexpected infeasibility"));
        };
        let s = out.schedule();
        prop_assert!(s.is_valid(&model));
        prop_assert!(s.total_share() <= 1.0 + 1e-7);
        // The witness delivers background + f on every relevant link.
        for flow in &background {
            for &l in flow.path().links() {
                prop_assert!(
                    s.link_throughput(l) + 1e-6 >= flow.demand_mbps(),
                    "background under-served on {l}"
                );
            }
        }
        for &l in path.links() {
            prop_assert!(
                s.link_throughput(l) + 1e-6 >= out.bandwidth_mbps(),
                "new path under-served on {l}"
            );
        }
    }

    #[test]
    fn proposition_3_maximal_sets_suffice(inst in instance()) {
        // The LP over *maximal* independent sets equals the LP over the
        // full admissible pool (Prop. 3 / Eq. 4).
        let (model, path, background) = build(&inst);
        let universe: Vec<LinkId> = {
            let mut u: Vec<LinkId> = background
                .iter()
                .flat_map(|f| f.path().links().iter().copied())
                .chain(path.links().iter().copied())
                .collect();
            u.sort();
            u.dedup();
            u
        };
        let all = enumerate_admissible(
            &model, &universe,
            &EnumerationOptions { prune_dominated: false, ..EnumerationOptions::default() },
        );
        let maximal = maximal_independent_sets(&model, &universe);
        prop_assert!(maximal.len() <= all.len());
        let opts = AvailableBandwidthOptions::default();
        let full = available_bandwidth_with_sets(&all, &background, &path, &opts)
            .expect("instance is feasible");
        let max_only = available_bandwidth_with_sets(&maximal, &background, &path, &opts)
            .expect("instance is feasible");
        prop_assert!(
            (full.bandwidth_mbps() - max_only.bandwidth_mbps()).abs() < 1e-6,
            "full {} vs maximal {}",
            full.bandwidth_mbps(),
            max_only.bandwidth_mbps()
        );
    }

    #[test]
    fn more_background_never_helps(inst in instance()) {
        let (model, path, background) = build(&inst);
        let opts = AvailableBandwidthOptions::default();
        let base = available_bandwidth(&model, &background, &path, &opts)
            .expect("instance is feasible")
            .bandwidth_mbps();
        let heavier: Vec<Flow> = background
            .iter()
            .map(|f| f.with_demand(f.demand_mbps() + 5.0).expect("demand valid"))
            .collect();
        match available_bandwidth(&model, &heavier, &path, &opts) {
            Ok(out) => prop_assert!(out.bandwidth_mbps() <= base + 1e-6),
            Err(CoreError::BackgroundInfeasible) => {} // even stronger
            Err(e) => return Err(TestCaseError::fail(format!("solver failed: {e}"))),
        }
    }

    #[test]
    fn bounds_sandwich_the_optimum(inst in instance()) {
        let (model, path, background) = build(&inst);
        let opts = AvailableBandwidthOptions::default();
        let exact = available_bandwidth(&model, &background, &path, &opts)
            .expect("instance is feasible")
            .bandwidth_mbps();
        let upper = clique_upper_bound(
            &model, &background, &path,
            &UpperBoundOptions { max_rate_vectors: 4096 },
        );
        match upper {
            Ok(u) => prop_assert!(u + 1e-6 >= exact, "upper {u} < exact {exact}"),
            Err(CoreError::TooManyRateVectors { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("upper bound failed: {e}"))),
        }
        for cap in 1..=2usize {
            let lower = lower_bound_max_set_size(&model, &background, &path, cap);
            match lower {
                Ok(l) => prop_assert!(l <= exact + 1e-6, "lower {l} > exact {exact}"),
                Err(CoreError::BackgroundInfeasible) => {} // restricted pool may not serve bg
                Err(e) => return Err(TestCaseError::fail(format!("lower bound failed: {e}"))),
            }
        }
    }

    #[test]
    fn admission_threshold_matches_available_bandwidth(inst in instance()) {
        let (model, path, background) = build(&inst);
        let opts = AvailableBandwidthOptions::default();
        let avail = available_bandwidth(&model, &background, &path, &opts)
            .expect("instance is feasible")
            .bandwidth_mbps();
        prop_assert!(feasibility::admits(&model, &background, &path, avail - 0.01)
            .expect("feasible instance"));
        prop_assert!(!feasibility::admits(&model, &background, &path, avail + 0.01)
            .expect("feasible instance"));
    }

    #[test]
    fn decomposition_is_exact_for_pairwise_models(inst in instance()) {
        let (model, path, background) = build(&inst);
        let mono = available_bandwidth(
            &model, &background, &path, &AvailableBandwidthOptions::default())
            .expect("instance is feasible");
        let deco = available_bandwidth(
            &model, &background, &path,
            &AvailableBandwidthOptions { decompose: true, ..Default::default() })
            .expect("instance is feasible");
        prop_assert!(
            (mono.bandwidth_mbps() - deco.bandwidth_mbps()).abs() < 1e-6,
            "monolithic {} vs decomposed {}",
            mono.bandwidth_mbps(),
            deco.bandwidth_mbps()
        );
        // The decomposed witness is still a valid joint schedule delivering
        // everything.
        let s = deco.schedule();
        prop_assert!(s.is_valid(&model));
        prop_assert!(s.total_share() <= 1.0 + 1e-7);
        for flow in &background {
            for &l in flow.path().links() {
                prop_assert!(s.link_throughput(l) + 1e-6 >= flow.demand_mbps());
            }
        }
        for &l in path.links() {
            prop_assert!(s.link_throughput(l) + 1e-6 >= deco.bandwidth_mbps());
        }
    }

    #[test]
    fn min_airtime_is_monotone_and_saturates(inst in instance()) {
        let (model, path, background) = build(&inst);
        let mut flows = background.clone();
        flows.push(Flow::new(path.clone(), 1.0).expect("demand valid"));
        let Ok((a1, s1)) = feasibility::min_airtime(&model, &flows) else {
            return Err(TestCaseError::fail("unexpected infeasibility"));
        };
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a1));
        prop_assert!(s1.is_valid(&model));
        // Doubling demands at least doubles... no: airtime is superadditive
        // in demand scaling: scaling all demands by k scales min airtime by
        // exactly k (LP scaling).
        let doubled: Vec<Flow> = flows
            .iter()
            .map(|f| f.with_demand(f.demand_mbps() * 2.0).expect("demand valid"))
            .collect();
        match feasibility::min_airtime(&model, &doubled) {
            Ok((a2, _)) => prop_assert!(
                (a2 - 2.0 * a1).abs() < 1e-6,
                "airtime should scale linearly: {a1} -> {a2}"
            ),
            Err(CoreError::BackgroundInfeasible) => prop_assert!(2.0 * a1 > 1.0 - 1e-6),
            Err(e) => return Err(TestCaseError::fail(format!("solver failed: {e}"))),
        }
    }
}
