//! Property tests for the column-generation solver: on random declarative
//! and SINR instances the restricted master must terminate at exactly the
//! full-enumeration optimum (the pricing oracle certifies no column is
//! missing), with matching behavior under decomposition and below the Eq. 9
//! upper bound.

use awb_core::bounds::{clique_upper_bound, UpperBoundOptions};
use awb_core::{
    available_bandwidth, available_bandwidth_colgen, AvailableBandwidthOptions, CoreError, Flow,
    SolverKind,
};
use awb_net::{DeclarativeModel, LinkId, Path, SinrModel, Topology};
use awb_phy::{Phy, Rate};
use proptest::prelude::*;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

fn colgen_opts() -> AvailableBandwidthOptions {
    AvailableBandwidthOptions {
        solver: SolverKind::ColumnGeneration,
        ..AvailableBandwidthOptions::default()
    }
}

/// The same "chain + cross traffic" family as `proptest_core.rs`: an n-hop
/// declarative chain with interference spread, plus one background link
/// conflicting with a random hop.
#[derive(Debug, Clone)]
struct Instance {
    hops: usize,
    spread: usize,
    bg_conflicts_with: usize,
    bg_demand: f64,
    two_rates: bool,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..=5, 1usize..=2, any::<bool>(), 0.0f64..10.0).prop_flat_map(
        |(hops, spread, two_rates, bg_demand)| {
            (0..hops).prop_map(move |bg_conflicts_with| Instance {
                hops,
                spread,
                bg_conflicts_with,
                bg_demand,
                two_rates,
            })
        },
    )
}

fn build(inst: &Instance) -> (DeclarativeModel, Path, Vec<Flow>) {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=inst.hops)
        .map(|i| t.add_node(i as f64 * 10.0, 0.0))
        .collect();
    let chain: Vec<LinkId> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let ba = t.add_node(0.0, 100.0);
    let bb = t.add_node(10.0, 100.0);
    let bg = t.add_link(ba, bb).expect("fresh nodes");
    let rates: Vec<Rate> = if inst.two_rates {
        vec![r(54.0), r(36.0)]
    } else {
        vec![r(54.0)]
    };
    let mut b = DeclarativeModel::builder(t);
    for &l in chain.iter().chain([&bg]) {
        b = b.alone_rates(l, &rates);
    }
    for i in 0..inst.hops {
        for j in (i + 1)..inst.hops.min(i + inst.spread + 1) {
            b = b.conflict_all(chain[i], chain[j]);
        }
    }
    b = b.conflict_all(bg, chain[inst.bg_conflicts_with]);
    let model = b.build();
    let path = Path::new(model.topology(), chain).expect("chain links form a path");
    let bg_path = Path::new(model.topology(), vec![bg]).expect("single link path");
    let background = vec![Flow::new(bg_path, inst.bg_demand).expect("demand is valid")];
    (model, path, background)
}

/// An SINR chain: `hops` nodes in a line at `hop_length` meters, the new
/// path over all hops, with background on the first hop. Exercises the
/// oracle's hybrid mask-prefilter + joint-admissibility mode (additive
/// interference is not pairwise-exact).
fn build_sinr(hops: usize, hop_length: f64, bg_demand: f64) -> (SinrModel, Path, Vec<Flow>) {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=hops)
        .map(|i| t.add_node(i as f64 * hop_length, 0.0))
        .collect();
    let chain: Vec<LinkId> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let model = SinrModel::new(t, Phy::paper_default());
    let path = Path::new(model.topology(), chain.clone()).expect("chain links form a path");
    let background = if bg_demand > 0.0 {
        let first = Path::new(model.topology(), vec![chain[0]]).expect("single link path");
        vec![Flow::new(first, bg_demand).expect("demand is valid")]
    } else {
        Vec::new()
    };
    (model, path, background)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn colgen_matches_full_enumeration(inst in instance()) {
        let (model, path, background) = build(&inst);
        let full = available_bandwidth(
            &model, &background, &path, &AvailableBandwidthOptions::default())
            .expect("instance is feasible");
        let cg = available_bandwidth(&model, &background, &path, &colgen_opts())
            .expect("colgen must agree on feasibility");
        prop_assert!(
            (full.bandwidth_mbps() - cg.bandwidth_mbps()).abs() < 1e-6,
            "full {} vs colgen {}",
            full.bandwidth_mbps(),
            cg.bandwidth_mbps()
        );
        // The colgen witness is a genuine schedule delivering everything.
        let s = cg.schedule();
        prop_assert!(s.is_valid(&model));
        prop_assert!(s.total_share() <= 1.0 + 1e-7);
        for flow in &background {
            for &l in flow.path().links() {
                prop_assert!(s.link_throughput(l) + 1e-6 >= flow.demand_mbps());
            }
        }
        for &l in path.links() {
            prop_assert!(s.link_throughput(l) + 1e-6 >= cg.bandwidth_mbps());
        }
    }

    #[test]
    fn colgen_matches_under_decomposition(inst in instance()) {
        let (model, path, background) = build(&inst);
        let full = available_bandwidth(
            &model, &background, &path,
            &AvailableBandwidthOptions { decompose: true, ..Default::default() })
            .expect("instance is feasible");
        let cg = available_bandwidth(
            &model, &background, &path,
            &AvailableBandwidthOptions { decompose: true, ..colgen_opts() })
            .expect("colgen must agree on feasibility");
        prop_assert!(
            (full.bandwidth_mbps() - cg.bandwidth_mbps()).abs() < 1e-6,
            "decomposed full {} vs colgen {}",
            full.bandwidth_mbps(),
            cg.bandwidth_mbps()
        );
    }

    #[test]
    fn colgen_stays_below_the_eq9_upper_bound(inst in instance()) {
        let (model, path, background) = build(&inst);
        let cg = available_bandwidth(&model, &background, &path, &colgen_opts())
            .expect("instance is feasible");
        match clique_upper_bound(
            &model, &background, &path,
            &UpperBoundOptions { max_rate_vectors: 4096 },
        ) {
            Ok(u) => prop_assert!(
                u + 1e-6 >= cg.bandwidth_mbps(),
                "upper {u} < colgen {}",
                cg.bandwidth_mbps()
            ),
            Err(CoreError::TooManyRateVectors { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("upper bound failed: {e}"))),
        }
    }

    #[test]
    fn colgen_agrees_on_infeasibility(inst in instance()) {
        // Scale the background far past capacity: both solvers must report
        // BackgroundInfeasible (stage A certifies the same minimum airtime).
        let (model, path, background) = build(&inst);
        let heavy: Vec<Flow> = background
            .iter()
            .map(|f| f.with_demand(f.demand_mbps() + 60.0).expect("demand valid"))
            .collect();
        let full = available_bandwidth(
            &model, &heavy, &path, &AvailableBandwidthOptions::default());
        let cg = available_bandwidth(&model, &heavy, &path, &colgen_opts());
        match (full, cg) {
            (Ok(a), Ok(b)) => prop_assert!(
                (a.bandwidth_mbps() - b.bandwidth_mbps()).abs() < 1e-6
            ),
            (Err(CoreError::BackgroundInfeasible), Err(CoreError::BackgroundInfeasible)) => {}
            (a, b) => return Err(TestCaseError::fail(format!(
                "solvers disagree: full {a:?} vs colgen {b:?}"
            ))),
        }
    }

    #[test]
    fn colgen_matches_full_enumeration_on_sinr_chains(
        hops in 2usize..=4,
        hop_length in 40.0f64..120.0,
        bg_demand in 0.0f64..4.0,
    ) {
        let (model, path, background) = build_sinr(hops, hop_length, bg_demand);
        let full = available_bandwidth(
            &model, &background, &path, &AvailableBandwidthOptions::default());
        let cg = available_bandwidth(&model, &background, &path, &colgen_opts());
        match (full, cg) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    (a.bandwidth_mbps() - b.bandwidth_mbps()).abs() < 1e-6,
                    "sinr full {} vs colgen {}",
                    a.bandwidth_mbps(),
                    b.bandwidth_mbps()
                );
                prop_assert!(b.schedule().is_valid(&model));
            }
            (Err(CoreError::BackgroundInfeasible), Err(CoreError::BackgroundInfeasible)) => {}
            (a, b) => return Err(TestCaseError::fail(format!(
                "solvers disagree: full {a:?} vs colgen {b:?}"
            ))),
        }
    }

    #[test]
    fn seeded_resolve_is_deterministic(inst in instance()) {
        // Re-solving with the previous pool as seed reproduces the optimum
        // bit-for-bit (warm-start determinism).
        let (model, path, background) = build(&inst);
        let opts = colgen_opts();
        let Ok(first) = available_bandwidth_colgen(&model, &background, &path, &[], &opts)
        else { return Err(TestCaseError::fail("unexpected infeasibility")); };
        let second =
            available_bandwidth_colgen(&model, &background, &path, &first.pool, &opts)
                .expect("seeded solve is feasible");
        prop_assert_eq!(
            first.result.bandwidth_mbps().to_bits(),
            second.result.bandwidth_mbps().to_bits(),
            "seeded optimum differs: {} vs {}",
            first.result.bandwidth_mbps(),
            second.result.bandwidth_mbps()
        );
    }
}
