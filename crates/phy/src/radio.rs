//! The combined radio model: path loss + rate table + noise calibration.

use crate::pathloss::LogDistance;
use crate::rates::RateTable;
use crate::units::Rate;

/// A calibrated radio environment shared by all nodes of a network.
///
/// `Phy` fixes the transmit power (all nodes transmit at the same reference
/// power, as in the paper), the propagation model, the rate table, the noise
/// floor and the carrier-sense threshold. It answers the two questions the
/// higher layers ask:
///
/// 1. *What is the max rate of a link of length `d` transmitting alone?*
///    ([`Phy::max_rate_alone`])
/// 2. *What is the max rate under a given interference power?*
///    ([`Phy::max_rate_under_interference`], implementing Eq. 1 + Eq. 3)
///
/// # Calibration
///
/// Receiver sensitivities are derived from the rate table's decode distances:
/// `RXse(k) = P(d_k)` where `P` is the path-loss curve at the reference
/// transmit power. The noise floor is then set to the largest value that
/// still lets *every* rate decode at its full published distance on SNR
/// grounds: `P_n = min_k RXse(k) / SINR(k)`. With the paper's 802.11a
/// constants the binding rate is 54 Mbps.
///
/// ```
/// use awb_phy::Phy;
/// let phy = Phy::paper_default();
/// // At every published distance the published rate decodes exactly.
/// for spec in phy.rates().clone().iter() {
///     assert_eq!(phy.max_rate_alone(spec.max_distance), Some(spec.rate));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Phy {
    pathloss: LogDistance,
    rates: RateTable,
    tx_power: f64,
    noise: f64,
    carrier_sense_threshold: f64,
    /// Per-rate receiver sensitivity, aligned with `rates` (descending rate).
    sensitivities: Vec<f64>,
}

impl Phy {
    /// Builds a calibrated radio model.
    ///
    /// # Panics
    ///
    /// Panics if `tx_power` is not strictly positive and finite.
    pub fn new(pathloss: LogDistance, rates: RateTable, tx_power: f64) -> Phy {
        assert!(
            tx_power.is_finite() && tx_power > 0.0,
            "tx_power must be positive and finite, got {tx_power}"
        );
        let sensitivities: Vec<f64> = rates
            .iter()
            .map(|s| pathloss.received_power(tx_power, s.max_distance))
            .collect();
        let noise = rates
            .iter()
            .zip(&sensitivities)
            .map(|(s, &rx)| rx / s.sinr_linear())
            .fold(f64::INFINITY, f64::min);
        // Hearing range defaults to the longest decode range: a node senses
        // the channel busy whenever it could have decoded *something*.
        let carrier_sense_threshold = *sensitivities.last().expect("rate tables are non-empty");
        Phy {
            pathloss,
            rates,
            tx_power,
            noise,
            carrier_sense_threshold,
            sensitivities,
        }
    }

    /// The model used throughout the paper's evaluation: 802.11a four-rate
    /// table, propagation exponent 4, unit transmit power.
    pub fn paper_default() -> Phy {
        Phy::new(
            LogDistance::paper_default(),
            RateTable::ieee80211a_paper(),
            1.0,
        )
    }

    /// Replaces the noise floor (linear units). Lower noise widens SNR
    /// margins without moving decode distances.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is not strictly positive and finite.
    pub fn with_noise(mut self, noise: f64) -> Phy {
        assert!(noise.is_finite() && noise > 0.0, "noise must be positive");
        self.noise = noise;
        self
    }

    /// Replaces the carrier-sense threshold (linear received power above
    /// which a node senses the channel busy).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not strictly positive and finite.
    pub fn with_carrier_sense_threshold(mut self, threshold: f64) -> Phy {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "carrier-sense threshold must be positive"
        );
        self.carrier_sense_threshold = threshold;
        self
    }

    /// The propagation model.
    pub fn pathloss(&self) -> LogDistance {
        self.pathloss
    }

    /// The rate table.
    pub fn rates(&self) -> &RateTable {
        &self.rates
    }

    /// Reference transmit power (linear units).
    pub fn tx_power(&self) -> f64 {
        self.tx_power
    }

    /// Noise floor (linear units).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Received power at `distance` metres from a transmitter.
    pub fn received_power(&self, distance: f64) -> f64 {
        self.pathloss.received_power(self.tx_power, distance)
    }

    /// Signal-to-noise ratio (linear) of an interference-free link of length
    /// `distance`.
    pub fn snr_alone(&self, distance: f64) -> f64 {
        self.received_power(distance) / self.noise
    }

    /// Maximum rate of a link of length `distance` transmitting alone
    /// (Eq. 1 with `P_inf = 0`).
    pub fn max_rate_alone(&self, distance: f64) -> Option<Rate> {
        self.max_rate_under_interference(distance, 0.0)
    }

    /// Maximum rate of a link of length `distance` whose receiver sees total
    /// interference power `interference` (linear units) from concurrent
    /// transmissions — Eq. 1 with the SINR of Eq. 3.
    pub fn max_rate_under_interference(&self, distance: f64, interference: f64) -> Option<Rate> {
        let pr = self.received_power(distance);
        let sinr = pr / (interference + self.noise);
        self.rates
            .iter()
            .zip(&self.sensitivities)
            .find(|(s, &rx)| pr >= rx * (1.0 - 1e-12) && sinr >= s.sinr_linear() * (1.0 - 1e-12))
            .map(|(s, _)| s.rate)
    }

    /// The decode ladder of [`Phy::max_rate_under_interference`] as
    /// precompiled thresholds, rates descending: a received power `pr` and
    /// an interference-plus-noise SINR pass step `k` iff
    /// `pr >= min_signal` and `sinr >= min_sinr`.
    ///
    /// The thresholds bake in the same `1 - 1e-12` tolerance factors the
    /// live test applies, so a caller replaying the comparisons against
    /// these constants reproduces [`Phy::max_rate_under_interference`]
    /// bit-for-bit. This is the compile-time surface of the `awb-sim`
    /// capture kernels.
    pub fn capture_thresholds(&self) -> Vec<CaptureThreshold> {
        self.rates
            .iter()
            .zip(&self.sensitivities)
            .map(|(s, &rx)| CaptureThreshold {
                rate: s.rate,
                min_signal: rx * (1.0 - 1e-12),
                min_sinr: s.sinr_linear() * (1.0 - 1e-12),
            })
            .collect()
    }

    /// Whether a node at `distance` from a transmitter senses the channel
    /// busy.
    pub fn can_sense(&self, distance: f64) -> bool {
        self.received_power(distance) >= self.carrier_sense_threshold * (1.0 - 1e-12)
    }

    /// The carrier-sense range in metres.
    pub fn carrier_sense_range(&self) -> f64 {
        self.pathloss
            .range_for(self.tx_power, self.carrier_sense_threshold)
    }

    /// The longest distance at which any rate decodes (the network's
    /// connectivity range).
    pub fn max_range(&self) -> f64 {
        self.rates
            .lowest()
            .map(|s| s.max_distance)
            .expect("rate tables are non-empty")
    }
}

impl Default for Phy {
    fn default() -> Self {
        Phy::paper_default()
    }
}

/// One rung of the precompiled decode ladder returned by
/// [`Phy::capture_thresholds`]: `rate` decodes iff the received signal meets
/// `min_signal` (sensitivity) and the SINR meets `min_sinr` (Eq. 1), both
/// thresholds already scaled by the `1 - 1e-12` comparison tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureThreshold {
    /// The rate this rung decodes.
    pub rate: Rate,
    /// Minimum received signal power (linear units, tolerance applied).
    pub min_signal: f64,
    /// Minimum SINR (linear, tolerance applied).
    pub min_sinr: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::db_to_linear;

    #[test]
    fn decode_distances_are_exact_boundaries() {
        let phy = Phy::paper_default();
        let cases = [(59.0, 54.0), (79.0, 36.0), (119.0, 18.0), (158.0, 6.0)];
        for (d, r) in cases {
            assert_eq!(
                phy.max_rate_alone(d).map(Rate::as_mbps),
                Some(r),
                "at boundary {d}"
            );
            assert!(
                phy.max_rate_alone(d + 0.5).map(Rate::as_mbps) != Some(r),
                "just beyond {d} the rate must drop"
            );
        }
        assert_eq!(phy.max_rate_alone(158.5), None);
    }

    #[test]
    fn noise_calibration_binds_the_tightest_rate() {
        let phy = Phy::paper_default();
        // At 59 m the SNR must exactly meet the 54 Mbps threshold (54 Mbps is
        // the binding rate for the paper's constants).
        let snr = phy.snr_alone(59.0);
        assert!((snr / db_to_linear(24.56) - 1.0).abs() < 1e-9);
        // Every other rate has positive margin at its boundary.
        for (d, thr) in [(79.0, 18.80), (119.0, 10.79), (158.0, 6.02)] {
            assert!(phy.snr_alone(d) > db_to_linear(thr));
        }
    }

    #[test]
    fn interference_downgrades_and_kills_rates() {
        let phy = Phy::paper_default();
        let d = 50.0; // supports 54 alone
        assert_eq!(phy.max_rate_alone(d).unwrap().as_mbps(), 54.0);
        // An interferer as strong as the noise floor halves the SINR: the
        // 54 Mbps boundary margin at 50 m survives, so push harder.
        let strong = phy.received_power(60.0); // nearby interferer
        let r = phy.max_rate_under_interference(d, strong);
        assert!(r.is_none() || r.unwrap().as_mbps() < 54.0);
        // Overwhelming interference kills the link entirely.
        assert_eq!(phy.max_rate_under_interference(d, phy.tx_power()), None);
    }

    #[test]
    fn rate_is_monotone_in_interference() {
        let phy = Phy::paper_default();
        let d = 70.0;
        let mut last = f64::INFINITY;
        for i in 0..12 {
            let interference = phy.noise() * f64::from(i) * 3.0;
            let r = phy
                .max_rate_under_interference(d, interference)
                .map_or(0.0, Rate::as_mbps);
            assert!(r <= last, "rate increased with interference");
            last = r;
        }
    }

    #[test]
    fn carrier_sense_defaults_to_max_decode_range() {
        let phy = Phy::paper_default();
        assert!((phy.carrier_sense_range() - 158.0).abs() < 1e-6);
        assert!(phy.can_sense(158.0));
        assert!(!phy.can_sense(159.0));
    }

    #[test]
    fn custom_carrier_sense_threshold() {
        let phy = Phy::paper_default();
        let th = phy.received_power(300.0);
        let phy = phy.with_carrier_sense_threshold(th);
        assert!((phy.carrier_sense_range() - 300.0).abs() < 1e-6);
        assert!(phy.can_sense(250.0));
        assert!(!phy.can_sense(320.0));
    }

    #[test]
    fn with_noise_moves_snr_but_not_sensitivity() {
        let phy = Phy::paper_default();
        let quiet = phy.clone().with_noise(phy.noise() / 100.0);
        // Decode distances unchanged (sensitivity-gated).
        assert_eq!(quiet.max_rate_alone(158.0).unwrap().as_mbps(), 6.0);
        assert_eq!(quiet.max_rate_alone(158.5), None);
        // But SNR margins are wider.
        assert!(quiet.snr_alone(59.0) > phy.snr_alone(59.0));
    }

    #[test]
    fn tx_power_scales_ranges() {
        let strong = Phy::new(
            LogDistance::paper_default(),
            RateTable::ieee80211a_paper(),
            16.0,
        );
        // 16x power with exponent 4 doubles every decode distance... but the
        // rate table distances are *definitions* (sensitivities derive from
        // them at the given power), so decode distances stay put.
        assert_eq!(strong.max_rate_alone(118.0).unwrap().as_mbps(), 18.0);
        assert_eq!(strong.max_rate_alone(159.0), None);
        // What changes is the absolute sensitivity level.
        assert!(strong.received_power(59.0) > Phy::paper_default().received_power(59.0));
    }

    #[test]
    fn max_range_is_lowest_rate_distance() {
        assert_eq!(Phy::paper_default().max_range(), 158.0);
    }
}
