//! Scalar units used across the PHY model.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Converts a decibel quantity to a linear ratio.
///
/// ```
/// assert!((awb_phy::db_to_linear(10.0) - 10.0).abs() < 1e-12);
/// assert!((awb_phy::db_to_linear(3.0) - 1.995).abs() < 1e-2);
/// ```
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear ratio to decibels.
///
/// ```
/// assert!((awb_phy::linear_to_db(100.0) - 20.0).abs() < 1e-12);
/// ```
pub fn linear_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Converts a power in dBm to milliwatts.
///
/// ```
/// assert!((awb_phy::dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
/// assert!((awb_phy::dbm_to_mw(20.0) - 100.0).abs() < 1e-9);
/// ```
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a power in milliwatts to dBm.
///
/// ```
/// assert!((awb_phy::mw_to_dbm(1.0)).abs() < 1e-12);
/// ```
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// A channel rate in Mbps.
///
/// A newtype so link rates cannot be confused with throughputs, time shares
/// or distances. [`Rate::ZERO`] is the conventional "cannot transmit" value.
///
/// ```
/// use awb_phy::Rate;
/// let r = Rate::from_mbps(54.0);
/// assert_eq!(r.as_mbps(), 54.0);
/// assert!(r > Rate::from_mbps(36.0));
/// assert!(Rate::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Rate(f64);

impl Rate {
    /// The zero rate (link cannot transmit).
    pub const ZERO: Rate = Rate(0.0);

    /// Creates a rate from a value in Mbps.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is negative, NaN or infinite.
    pub fn from_mbps(mbps: f64) -> Rate {
        assert!(
            mbps.is_finite() && mbps >= 0.0,
            "rate must be finite and non-negative, got {mbps}"
        );
        Rate(mbps)
    }

    /// The rate in Mbps.
    pub fn as_mbps(self) -> f64 {
        self.0
    }

    /// Whether this is the zero rate.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Transmission time for one unit of traffic (1 Mbit) at this rate, in
    /// seconds; `None` for the zero rate.
    ///
    /// This is the `1/r_i` quantity the paper's clique transmission time
    /// (Eq. 7) and delay metrics (Eq. 14) are built from.
    pub fn unit_time(self) -> Option<f64> {
        if self.is_zero() {
            None
        } else {
            Some(1.0 / self.0)
        }
    }

    /// The larger of two rates.
    pub fn max(self, other: Rate) -> Rate {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The smaller of two rates.
    pub fn min(self, other: Rate) -> Rate {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mbps", self.0)
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, rhs: Rate) -> Rate {
        Rate(self.0 + rhs.0)
    }
}

impl AddAssign for Rate {
    fn add_assign(&mut self, rhs: Rate) {
        self.0 += rhs.0;
    }
}

impl Sub for Rate {
    type Output = Rate;
    fn sub(self, rhs: Rate) -> Rate {
        Rate((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, rhs: f64) -> Rate {
        Rate(self.0 * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    fn div(self, rhs: f64) -> Rate {
        Rate(self.0 / rhs)
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for v in [0.1, 1.0, 3.7, 54.0, 1000.0] {
            assert!((db_to_linear(linear_to_db(v)) - v).abs() < 1e-9 * v);
        }
    }

    #[test]
    fn dbm_round_trip() {
        for v in [-90.0, -60.0, 0.0, 20.0] {
            assert!((mw_to_dbm(dbm_to_mw(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_sinr_thresholds_to_linear() {
        // 6.02 dB ~= 4.0x, 24.56 dB ~= 285.8x.
        assert!((db_to_linear(6.02) - 4.0).abs() < 0.02);
        assert!((db_to_linear(24.56) - 285.8).abs() < 1.0);
    }

    #[test]
    fn rate_arithmetic() {
        let a = Rate::from_mbps(36.0);
        let b = Rate::from_mbps(18.0);
        assert_eq!((a + b).as_mbps(), 54.0);
        assert_eq!((a - b).as_mbps(), 18.0);
        // Saturating subtraction keeps rates non-negative.
        assert_eq!((b - a).as_mbps(), 0.0);
        assert_eq!((a * 0.5).as_mbps(), 18.0);
        assert_eq!((a / 2.0).as_mbps(), 18.0);
        let total: Rate = [a, b, Rate::ZERO].into_iter().sum();
        assert_eq!(total.as_mbps(), 54.0);
    }

    #[test]
    fn unit_time_matches_inverse_rate() {
        assert_eq!(Rate::from_mbps(54.0).unit_time(), Some(1.0 / 54.0));
        assert_eq!(Rate::ZERO.unit_time(), None);
    }

    #[test]
    fn min_max_behave() {
        let a = Rate::from_mbps(6.0);
        let b = Rate::from_mbps(54.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        let _ = Rate::from_mbps(-1.0);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(Rate::from_mbps(54.0).to_string(), "54 Mbps");
    }
}
