//! Discrete rate tables with receiver sensitivities and SINR thresholds.

use crate::units::{db_to_linear, Rate};

/// One entry of a [`RateTable`]: a channel rate together with the conditions
/// under which it decodes (Eq. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RateSpec {
    /// The channel rate.
    pub rate: Rate,
    /// Maximum decode distance at the reference transmit power — the
    /// receiver-sensitivity condition expressed geometrically, as the paper's
    /// evaluation does (59/79/119/158 m for 54/36/18/6 Mbps).
    pub max_distance: f64,
    /// Required SINR in dB for this rate.
    pub sinr_db: f64,
}

impl RateSpec {
    /// Required SINR as a linear ratio.
    pub fn sinr_linear(&self) -> f64 {
        db_to_linear(self.sinr_db)
    }
}

/// An ordered set of [`RateSpec`]s, highest rate first.
///
/// ```
/// use awb_phy::RateTable;
/// let t = RateTable::ieee80211a_paper();
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.highest().unwrap().rate.as_mbps(), 54.0);
/// assert_eq!(t.lowest().unwrap().rate.as_mbps(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RateTable {
    /// Sorted by descending rate.
    specs: Vec<RateSpec>,
}

impl RateTable {
    /// Builds a table from arbitrary specs; they are sorted by descending
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, contains a zero rate, duplicate rates, or
    /// non-finite fields.
    pub fn new(mut specs: Vec<RateSpec>) -> RateTable {
        assert!(!specs.is_empty(), "a rate table needs at least one rate");
        for s in &specs {
            assert!(
                !s.rate.is_zero(),
                "rate tables must not contain the zero rate"
            );
            assert!(
                s.max_distance.is_finite() && s.max_distance > 0.0,
                "max_distance must be positive and finite"
            );
            assert!(s.sinr_db.is_finite(), "sinr_db must be finite");
        }
        specs.sort_by(|a, b| b.rate.partial_cmp(&a.rate).expect("rates are finite"));
        for w in specs.windows(2) {
            assert!(
                w[0].rate != w[1].rate,
                "duplicate rate {} in table",
                w[0].rate
            );
        }
        RateTable { specs }
    }

    /// The four-rate 802.11a table used in the paper's evaluation (§5.2):
    /// 54/36/18/6 Mbps, distances 59/79/119/158 m, SINR thresholds
    /// 24.56/18.80/10.79/6.02 dB.
    pub fn ieee80211a_paper() -> RateTable {
        RateTable::new(vec![
            RateSpec {
                rate: Rate::from_mbps(54.0),
                max_distance: 59.0,
                sinr_db: 24.56,
            },
            RateSpec {
                rate: Rate::from_mbps(36.0),
                max_distance: 79.0,
                sinr_db: 18.80,
            },
            RateSpec {
                rate: Rate::from_mbps(18.0),
                max_distance: 119.0,
                sinr_db: 10.79,
            },
            RateSpec {
                rate: Rate::from_mbps(6.0),
                max_distance: 158.0,
                sinr_db: 6.02,
            },
        ])
    }

    /// A representative 802.11b table (11/5.5/2/1 Mbps CCK/DSSS). The paper
    /// evaluates on 802.11a only; these constants are typical vendor values
    /// (not from the paper) provided for experimentation with slower,
    /// longer-range radios.
    pub fn ieee80211b_typical() -> RateTable {
        RateTable::new(vec![
            RateSpec {
                rate: Rate::from_mbps(11.0),
                max_distance: 100.0,
                sinr_db: 11.0,
            },
            RateSpec {
                rate: Rate::from_mbps(5.5),
                max_distance: 115.0,
                sinr_db: 9.5,
            },
            RateSpec {
                rate: Rate::from_mbps(2.0),
                max_distance: 140.0,
                sinr_db: 6.0,
            },
            RateSpec {
                rate: Rate::from_mbps(1.0),
                max_distance: 160.0,
                sinr_db: 4.0,
            },
        ])
    }

    /// The two-rate {54, 36} table of the paper's §3.1/§5.1 four-link chain
    /// example ("all links can only support 36 and 54 Mbps").
    pub fn two_rate_chain() -> RateTable {
        RateTable::new(vec![
            RateSpec {
                rate: Rate::from_mbps(54.0),
                max_distance: 59.0,
                sinr_db: 24.56,
            },
            RateSpec {
                rate: Rate::from_mbps(36.0),
                max_distance: 79.0,
                sinr_db: 18.80,
            },
        ])
    }

    /// Number of rates.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Specs in descending-rate order.
    pub fn iter(&self) -> impl Iterator<Item = &RateSpec> {
        self.specs.iter()
    }

    /// The highest-rate spec.
    pub fn highest(&self) -> Option<&RateSpec> {
        self.specs.first()
    }

    /// The lowest-rate spec.
    pub fn lowest(&self) -> Option<&RateSpec> {
        self.specs.last()
    }

    /// The spec for an exact rate, if present.
    pub fn spec_for(&self, rate: Rate) -> Option<&RateSpec> {
        self.specs.iter().find(|s| s.rate == rate)
    }

    /// Highest rate whose decode distance covers `distance` (the
    /// receiver-sensitivity test of Eq. 1, geometric form).
    pub fn max_rate_for_distance(&self, distance: f64) -> Option<Rate> {
        self.specs
            .iter()
            .find(|s| distance <= s.max_distance)
            .map(|s| s.rate)
    }

    /// Highest rate whose SINR threshold is met by `sinr_linear`, further
    /// restricted to rates whose sensitivity allows `distance`.
    ///
    /// This is the full Eq. 1 test: both conditions must hold.
    pub fn max_rate_for(&self, distance: f64, sinr_linear: f64) -> Option<Rate> {
        self.specs
            .iter()
            .find(|s| distance <= s.max_distance && sinr_linear >= s.sinr_linear())
            .map(|s| s.rate)
    }

    /// All rates not exceeding `rate`, descending (the choices available to a
    /// link whose max supported rate is `rate`).
    pub fn rates_up_to(&self, rate: Rate) -> Vec<Rate> {
        self.specs
            .iter()
            .filter(|s| s.rate <= rate)
            .map(|s| s.rate)
            .collect()
    }
}

impl Default for RateTable {
    fn default() -> Self {
        RateTable::ieee80211a_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_is_sorted_descending() {
        let t = RateTable::ieee80211a_paper();
        let rates: Vec<f64> = t.iter().map(|s| s.rate.as_mbps()).collect();
        assert_eq!(rates, vec![54.0, 36.0, 18.0, 6.0]);
        let dists: Vec<f64> = t.iter().map(|s| s.max_distance).collect();
        assert_eq!(dists, vec![59.0, 79.0, 119.0, 158.0]);
    }

    #[test]
    fn distance_rate_mapping_matches_paper() {
        let t = RateTable::ieee80211a_paper();
        let cases = [
            (10.0, Some(54.0)),
            (59.0, Some(54.0)),
            (60.0, Some(36.0)),
            (79.0, Some(36.0)),
            (100.0, Some(18.0)),
            (119.0, Some(18.0)),
            (140.0, Some(6.0)),
            (158.0, Some(6.0)),
            (158.1, None),
        ];
        for (d, want) in cases {
            assert_eq!(
                t.max_rate_for_distance(d).map(Rate::as_mbps),
                want,
                "at {d} m"
            );
        }
    }

    #[test]
    fn sinr_gate_downgrades_rate() {
        let t = RateTable::ieee80211a_paper();
        // Close enough for 54 by sensitivity, but SINR only suffices for 18.
        let sinr = db_to_linear(12.0);
        assert_eq!(t.max_rate_for(30.0, sinr).map(Rate::as_mbps), Some(18.0));
        // SINR below even 6 Mbps's threshold: nothing decodes.
        assert_eq!(t.max_rate_for(30.0, db_to_linear(3.0)), None);
    }

    #[test]
    fn sensitivity_gate_caps_rate_despite_high_sinr() {
        let t = RateTable::ieee80211a_paper();
        let sinr = db_to_linear(60.0);
        assert_eq!(t.max_rate_for(100.0, sinr).map(Rate::as_mbps), Some(18.0));
    }

    #[test]
    fn rates_up_to_lists_choices_descending() {
        let t = RateTable::ieee80211a_paper();
        let up = t.rates_up_to(Rate::from_mbps(36.0));
        let mbps: Vec<f64> = up.iter().map(|r| r.as_mbps()).collect();
        assert_eq!(mbps, vec![36.0, 18.0, 6.0]);
    }

    #[test]
    fn spec_for_finds_exact_rates_only() {
        let t = RateTable::ieee80211a_paper();
        assert!(t.spec_for(Rate::from_mbps(36.0)).is_some());
        assert!(t.spec_for(Rate::from_mbps(11.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate rate")]
    fn duplicate_rates_panic() {
        let s = RateSpec {
            rate: Rate::from_mbps(6.0),
            max_distance: 1.0,
            sinr_db: 6.0,
        };
        let _ = RateTable::new(vec![s, s]);
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_table_panics() {
        let _ = RateTable::new(Vec::new());
    }

    #[test]
    fn ieee80211b_table_is_consistent() {
        let t = RateTable::ieee80211b_typical();
        assert_eq!(t.len(), 4);
        assert_eq!(t.highest().unwrap().rate.as_mbps(), 11.0);
        // Lower rates reach further and need less SINR.
        let specs: Vec<&RateSpec> = t.iter().collect();
        for w in specs.windows(2) {
            assert!(w[0].max_distance < w[1].max_distance);
            assert!(w[0].sinr_db > w[1].sinr_db);
        }
    }

    #[test]
    fn two_rate_chain_table() {
        let t = RateTable::two_rate_chain();
        assert_eq!(t.len(), 2);
        assert_eq!(t.highest().unwrap().rate.as_mbps(), 54.0);
        assert_eq!(t.lowest().unwrap().rate.as_mbps(), 36.0);
    }
}
