//! Physical-layer substrate for the `awb` workspace.
//!
//! Models the radio assumptions of Chen, Zhai & Fang (ICDCS 2009):
//!
//! * **Multiple discrete rates** (§2.2): each rate has a receiver sensitivity
//!   (expressed here as a maximum decode distance at the reference transmit
//!   power) and an SINR threshold. A transmission at rate `r_k` succeeds iff
//!   `Pr >= RXse(k)` **and** `Pr / (P_inf + P_n) >= SINR(k)` (Eq. 1).
//! * **Log-distance path loss** with a configurable propagation exponent
//!   (the paper's evaluation uses 4).
//! * The paper's 802.11a working set: rates 54/36/18/6 Mbps with transmission
//!   distances 59/79/119/158 m and SINR requirements 24.56/18.80/10.79/6.02 dB
//!   ([`RateTable::ieee80211a_paper`]).
//!
//! # Example
//!
//! ```
//! use awb_phy::Phy;
//!
//! let phy = Phy::paper_default();
//! // Alone, a 50 m link supports the top rate; a 150 m link only 6 Mbps.
//! assert_eq!(phy.max_rate_alone(50.0).unwrap().as_mbps(), 54.0);
//! assert_eq!(phy.max_rate_alone(150.0).unwrap().as_mbps(), 6.0);
//! // Beyond 158 m nothing decodes.
//! assert!(phy.max_rate_alone(200.0).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pathloss;
mod radio;
mod rates;
mod units;

pub use pathloss::LogDistance;
pub use radio::{CaptureThreshold, Phy};
pub use rates::{RateSpec, RateTable};
pub use units::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm, Rate};
