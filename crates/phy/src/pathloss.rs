//! Propagation models.

/// Log-distance (power-law) path loss: received power falls off as
/// `d^-exponent` relative to the power at a 1 m reference distance.
///
/// The paper's evaluation (§5.2) sets the propagation exponent to 4.
///
/// ```
/// use awb_phy::LogDistance;
/// let pl = LogDistance::new(4.0);
/// let near = pl.received_power(1.0, 10.0);
/// let far = pl.received_power(1.0, 20.0);
/// assert!((near / far - 16.0).abs() < 1e-9); // doubling distance: 2^4 loss
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    exponent: f64,
}

impl LogDistance {
    /// Creates a model with the given propagation exponent.
    ///
    /// # Panics
    ///
    /// Panics unless `exponent` is finite and at least 1.
    pub fn new(exponent: f64) -> LogDistance {
        assert!(
            exponent.is_finite() && exponent >= 1.0,
            "propagation exponent must be finite and >= 1, got {exponent}"
        );
        LogDistance { exponent }
    }

    /// The paper's evaluation model (exponent 4).
    pub fn paper_default() -> LogDistance {
        LogDistance::new(4.0)
    }

    /// The propagation exponent.
    pub fn exponent(self) -> f64 {
        self.exponent
    }

    /// Received power at `distance` metres for a transmit power `tx_power`
    /// (arbitrary linear units, measured at the 1 m reference point).
    ///
    /// Distances below 1 m are clamped to 1 m so co-located nodes do not
    /// produce unbounded powers.
    pub fn received_power(self, tx_power: f64, distance: f64) -> f64 {
        let d = distance.max(1.0);
        tx_power * d.powf(-self.exponent)
    }

    /// The distance at which the received power drops to `threshold`, i.e.
    /// the range within which `received_power >= threshold`.
    pub fn range_for(self, tx_power: f64, threshold: f64) -> f64 {
        (tx_power / threshold).powf(1.0 / self.exponent)
    }
}

impl Default for LogDistance {
    fn default() -> Self {
        LogDistance::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_monotone_decreasing_in_distance() {
        let pl = LogDistance::paper_default();
        let mut last = f64::INFINITY;
        for d in [1.0, 5.0, 59.0, 79.0, 119.0, 158.0, 400.0] {
            let p = pl.received_power(1.0, d);
            assert!(p < last);
            last = p;
        }
    }

    #[test]
    fn range_inverts_received_power() {
        let pl = LogDistance::new(3.0);
        let p = pl.received_power(2.0, 37.0);
        assert!((pl.range_for(2.0, p) - 37.0).abs() < 1e-9);
    }

    #[test]
    fn sub_metre_distances_are_clamped() {
        let pl = LogDistance::paper_default();
        assert_eq!(pl.received_power(1.0, 0.0), pl.received_power(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "propagation exponent")]
    fn bad_exponent_panics() {
        let _ = LogDistance::new(0.5);
    }
}
