//! Property tests for the PHY model: monotonicity and calibration
//! invariants that every higher layer relies on.

use awb_phy::{LogDistance, Phy, Rate, RateSpec, RateTable};
use proptest::prelude::*;

fn arbitrary_phy() -> impl Strategy<Value = Phy> {
    // Vary the exponent and transmit power; keep the paper's rate table.
    (prop_oneof![Just(2.0), Just(3.0), Just(4.0)], 0.1f64..10.0)
        .prop_map(|(exp, pt)| Phy::new(LogDistance::new(exp), RateTable::ieee80211a_paper(), pt))
}

proptest! {
    #[test]
    fn rate_never_increases_with_distance(phy in arbitrary_phy(), steps in 2usize..30) {
        let mut last = f64::INFINITY;
        for i in 0..steps {
            let d = 1.0 + (i as f64) * 200.0 / (steps as f64);
            let r = phy.max_rate_alone(d).map_or(0.0, Rate::as_mbps);
            prop_assert!(r <= last, "rate rose from {last} to {r} at {d} m");
            last = r;
        }
    }

    #[test]
    fn rate_never_increases_with_interference(
        phy in arbitrary_phy(),
        d in 1.0f64..200.0,
        base in 0.0f64..1.0,
    ) {
        let i1 = base * phy.noise();
        let i2 = (base + 0.5) * phy.noise() * 10.0;
        let r1 = phy.max_rate_under_interference(d, i1).map_or(0.0, Rate::as_mbps);
        let r2 = phy.max_rate_under_interference(d, i2).map_or(0.0, Rate::as_mbps);
        prop_assert!(r2 <= r1);
    }

    #[test]
    fn every_published_distance_decodes_its_rate(phy in arbitrary_phy()) {
        for spec in phy.rates().clone().iter() {
            prop_assert_eq!(phy.max_rate_alone(spec.max_distance), Some(spec.rate));
        }
    }

    #[test]
    fn received_power_matches_pathloss_inverse(
        phy in arbitrary_phy(),
        d in 1.0f64..500.0,
    ) {
        let p = phy.received_power(d);
        let back = phy.pathloss().range_for(phy.tx_power(), p);
        prop_assert!((back - d).abs() < 1e-6 * d);
    }

    #[test]
    fn sensing_is_a_superset_of_decoding(phy in arbitrary_phy(), d in 1.0f64..300.0) {
        if phy.max_rate_alone(d).is_some() {
            prop_assert!(phy.can_sense(d), "decodable at {d} m but not sensed");
        }
    }

    #[test]
    fn custom_tables_keep_boundary_exactness(
        d1 in 20.0f64..80.0,
        extra in 10.0f64..100.0,
        s1 in 10.0f64..25.0,
        s2 in 3.0f64..9.0,
    ) {
        let table = RateTable::new(vec![
            RateSpec { rate: Rate::from_mbps(48.0), max_distance: d1, sinr_db: s1 },
            RateSpec { rate: Rate::from_mbps(12.0), max_distance: d1 + extra, sinr_db: s2 },
        ]);
        let phy = Phy::new(LogDistance::paper_default(), table, 1.0);
        prop_assert_eq!(phy.max_rate_alone(d1).map(Rate::as_mbps), Some(48.0));
        prop_assert_eq!(phy.max_rate_alone(d1 + extra).map(Rate::as_mbps), Some(12.0));
        prop_assert_eq!(phy.max_rate_alone(d1 + extra + 1.0), None);
    }
}
