//! Property tests for the dual values: strong duality, dual feasibility and
//! complementary slackness on random bounded maximization LPs.

use awb_lp::{Direction, Problem, Relation, VarId};
use proptest::prelude::*;

const BOX_BOUND: f64 = 10.0;
const TOL: f64 = 1e-6;

#[derive(Debug, Clone)]
struct RandomLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn random_lp(n: usize, m: usize) -> impl Strategy<Value = RandomLp> {
    let obj = proptest::collection::vec(0i32..=6i32, n);
    let rows =
        proptest::collection::vec((proptest::collection::vec(0i32..=5i32, n), 1i32..=12i32), m);
    (obj, rows).prop_map(|(obj, rows)| RandomLp {
        objective: obj.into_iter().map(f64::from).collect(),
        rows: rows
            .into_iter()
            .map(|(cs, rhs)| (cs.into_iter().map(f64::from).collect(), f64::from(rhs)))
            .collect(),
    })
}

/// Builds `max c·x s.t. rows (<=), x <= BOX, x >= 0`. Returns the problem
/// and the full constraint list (rows then boxes) as `(coeffs, rhs)`.
fn build(lp: &RandomLp) -> (Problem, Vec<(Vec<f64>, f64)>) {
    let n = lp.objective.len();
    let mut p = Problem::new(Direction::Maximize);
    let vars: Vec<VarId> = lp
        .objective
        .iter()
        .enumerate()
        .map(|(i, &c)| p.add_var(format!("x{i}"), c))
        .collect();
    let mut all_rows = Vec::new();
    for (coeffs, rhs) in &lp.rows {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        p.add_constraint(&terms, Relation::Le, *rhs)
            .expect("fresh vars");
        all_rows.push((coeffs.clone(), *rhs));
    }
    for (i, &v) in vars.iter().enumerate() {
        p.bound_var(v, BOX_BOUND).expect("fresh vars");
        let mut e = vec![0.0; n];
        e[i] = 1.0;
        all_rows.push((e, BOX_BOUND));
    }
    (p, all_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strong_duality_holds(lp in random_lp(3, 4)) {
        let (p, rows) = build(&lp);
        let s = p.solve().expect("bounded feasible LP");
        let dual_obj: f64 = s
            .duals()
            .iter()
            .zip(&rows)
            .map(|(&y, (_, b))| y * b)
            .sum();
        prop_assert!(
            (dual_obj - s.objective()).abs() < TOL,
            "dual objective {dual_obj} != primal {}",
            s.objective()
        );
    }

    #[test]
    fn duals_are_feasible_for_the_dual_program(lp in random_lp(3, 4)) {
        // For max c·x, Ax <= b, x >= 0: dual feasibility is yA >= c, y >= 0.
        let (p, rows) = build(&lp);
        let s = p.solve().expect("bounded feasible LP");
        for &y in s.duals() {
            prop_assert!(y >= -TOL, "negative dual {y} on a <= row of a max LP");
        }
        for j in 0..lp.objective.len() {
            let ya: f64 = s
                .duals()
                .iter()
                .zip(&rows)
                .map(|(&y, (a, _))| y * a[j])
                .sum();
            prop_assert!(
                ya + TOL >= lp.objective[j],
                "dual infeasible at var {j}: {ya} < {}",
                lp.objective[j]
            );
        }
    }

    #[test]
    fn complementary_slackness(lp in random_lp(3, 4)) {
        let (p, rows) = build(&lp);
        let s = p.solve().expect("bounded feasible LP");
        for (i, (a, b)) in rows.iter().enumerate() {
            let lhs: f64 = a.iter().zip(s.values()).map(|(c, x)| c * x).sum();
            let slack = b - lhs;
            prop_assert!(
                (s.dual(i) * slack).abs() < 1e-4,
                "row {i}: dual {} with slack {slack}",
                s.dual(i)
            );
        }
    }

    #[test]
    fn shadow_price_predicts_small_rhs_changes(lp in random_lp(2, 3)) {
        // Nudge each row's rhs by +eps and compare the objective delta to
        // the dual prediction (valid when the basis does not change; allow
        // the prediction to overestimate in degenerate cases).
        let (p, _) = build(&lp);
        let s = p.solve().expect("bounded feasible LP");
        let eps = 1e-4;
        for i in 0..lp.rows.len() {
            let mut nudged = lp.clone();
            nudged.rows[i].1 += eps;
            let (p2, _) = build(&nudged);
            let s2 = p2.solve().expect("still feasible");
            let delta = s2.objective() - s.objective();
            let predicted = s.dual(i) * eps;
            prop_assert!(
                delta + 1e-7 >= 0.0 && delta <= predicted + 1e-7,
                "row {i}: delta {delta} vs predicted {predicted}"
            );
        }
    }
}
