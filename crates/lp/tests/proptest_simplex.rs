//! Property tests: the simplex solution must agree with brute-force vertex
//! enumeration on random small bounded LPs, and must always be primal
//! feasible.

use awb_lp::{Direction, Pricing, Problem, Relation, SolverOptions, VarId};
use proptest::prelude::*;

const BOX_BOUND: f64 = 10.0;
const TOL: f64 = 1e-6;

/// A randomly generated LP in `n` variables with `m` extra `<=` rows plus a
/// box `x_i <= BOX_BOUND` for every variable (so it is always feasible at the
/// origin and always bounded).
#[derive(Debug, Clone)]
struct RandomLp {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn random_lp(n: usize, m: usize) -> impl Strategy<Value = RandomLp> {
    let coeff = -3i32..=5i32;
    let obj = proptest::collection::vec(0i32..=6i32, n);
    let rows = proptest::collection::vec((proptest::collection::vec(coeff, n), 1i32..=12i32), m);
    (obj, rows).prop_map(|(obj, rows)| RandomLp {
        objective: obj.into_iter().map(f64::from).collect(),
        rows: rows
            .into_iter()
            .map(|(cs, rhs)| (cs.into_iter().map(f64::from).collect(), f64::from(rhs)))
            .collect(),
    })
}

/// All constraint rows including the box and non-negativity rows, as
/// `(coeffs, rhs)` meaning `coeffs . x <= rhs`.
fn all_rows(lp: &RandomLp) -> Vec<(Vec<f64>, f64)> {
    let n = lp.objective.len();
    let mut rows = lp.rows.clone();
    for i in 0..n {
        let mut e = vec![0.0; n];
        e[i] = 1.0;
        rows.push((e.clone(), BOX_BOUND));
        let mut ne = vec![0.0; n];
        ne[i] = -1.0;
        rows.push((ne, 0.0));
    }
    rows
}

/// Solves the n x n system `a x = b` by Gaussian elimination with partial
/// pivoting; returns `None` when singular.
#[allow(clippy::needless_range_loop)]
fn gauss_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let piv =
            (col..n).max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())?;
        if a[piv][col].abs() < 1e-10 {
            return None;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for r in 0..n {
            if r != col {
                let f = a[r][col] / a[col][col];
                for c in col..n {
                    a[r][c] -= f * a[col][c];
                }
                b[r] -= f * b[col];
            }
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

/// Brute-force optimum: evaluate the objective at every vertex (every
/// feasible intersection of n constraint hyperplanes).
fn brute_force_max(lp: &RandomLp) -> f64 {
    let n = lp.objective.len();
    let rows = all_rows(lp);
    let idx: Vec<usize> = (0..rows.len()).collect();
    let mut best = f64::NEG_INFINITY;
    let mut chosen = vec![0usize; n];
    #[allow(clippy::too_many_arguments)]
    fn rec(
        k: usize,
        start: usize,
        idx: &[usize],
        chosen: &mut Vec<usize>,
        n: usize,
        rows: &[(Vec<f64>, f64)],
        obj: &[f64],
        best: &mut f64,
    ) {
        if k == n {
            let a: Vec<Vec<f64>> = chosen.iter().map(|&i| rows[i].0.clone()).collect();
            let b: Vec<f64> = chosen.iter().map(|&i| rows[i].1).collect();
            if let Some(x) = gauss_solve(a, b) {
                let feasible = rows
                    .iter()
                    .all(|(c, r)| c.iter().zip(&x).map(|(a, b)| a * b).sum::<f64>() <= r + 1e-7);
                if feasible {
                    let v: f64 = obj.iter().zip(&x).map(|(a, b)| a * b).sum();
                    if v > *best {
                        *best = v;
                    }
                }
            }
            return;
        }
        for i in start..idx.len() {
            chosen[k] = idx[i];
            rec(k + 1, i + 1, idx, chosen, n, rows, obj, best);
        }
    }
    rec(0, 0, &idx, &mut chosen, n, &rows, &lp.objective, &mut best);
    best
}

fn build_problem(lp: &RandomLp) -> (Problem, Vec<VarId>) {
    let mut p = Problem::new(Direction::Maximize);
    let vars: Vec<VarId> = lp
        .objective
        .iter()
        .enumerate()
        .map(|(i, &c)| p.add_var(format!("x{i}"), c))
        .collect();
    for (coeffs, rhs) in &lp.rows {
        let terms: Vec<(VarId, f64)> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        p.add_constraint(&terms, Relation::Le, *rhs).unwrap();
    }
    for &v in &vars {
        p.bound_var(v, BOX_BOUND).unwrap();
    }
    (p, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplex_matches_vertex_enumeration_2d(lp in random_lp(2, 3)) {
        let expected = brute_force_max(&lp);
        let (p, _) = build_problem(&lp);
        let s = p.solve().unwrap();
        prop_assert!((s.objective() - expected).abs() < TOL,
            "simplex {} vs brute force {}", s.objective(), expected);
    }

    #[test]
    fn simplex_matches_vertex_enumeration_3d(lp in random_lp(3, 3)) {
        let expected = brute_force_max(&lp);
        let (p, _) = build_problem(&lp);
        let s = p.solve().unwrap();
        prop_assert!((s.objective() - expected).abs() < TOL,
            "simplex {} vs brute force {}", s.objective(), expected);
    }

    #[test]
    fn solution_is_always_primal_feasible(lp in random_lp(3, 4)) {
        let (p, _) = build_problem(&lp);
        let s = p.solve().unwrap();
        for (coeffs, rhs) in all_rows(&lp) {
            let lhs: f64 = coeffs.iter().zip(s.values()).map(|(a, b)| a * b).sum();
            prop_assert!(lhs <= rhs + TOL, "row violated: {lhs} > {rhs}");
        }
    }

    #[test]
    fn bland_and_auto_agree(lp in random_lp(3, 3)) {
        let (p, _) = build_problem(&lp);
        let auto = p.solve().unwrap();
        let bland = p
            .solve_with(SolverOptions { pricing: Pricing::Bland, ..SolverOptions::default() })
            .unwrap();
        prop_assert!((auto.objective() - bland.objective()).abs() < TOL);
    }

    #[test]
    fn adding_a_constraint_never_improves_the_optimum(lp in random_lp(3, 3)) {
        let (p, _) = build_problem(&lp);
        let base = p.solve().unwrap().objective();
        let mut tightened = lp.clone();
        tightened.rows.push((vec![1.0, 1.0, 1.0], 5.0));
        let (p2, _) = build_problem(&tightened);
        let tight = p2.solve().unwrap().objective();
        prop_assert!(tight <= base + TOL);
    }
}
