//! A small, dependency-free linear-programming solver.
//!
//! This crate implements a dense **two-phase primal simplex** method, sufficient
//! for the path available-bandwidth LPs of the ICDCS 2009 paper reproduced by the
//! `awb` workspace (Eq. 6 and Eq. 9). Problems are stated with the [`Problem`]
//! builder and solved with [`Problem::solve`]; the result is either a
//! [`Solution`] or a [`SolveError`] describing infeasibility or unboundedness.
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y <= 4`, `x + 3y <= 6`, `x, y >= 0`:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use awb_lp::{Problem, Direction, Relation};
//!
//! let mut p = Problem::new(Direction::Maximize);
//! let x = p.add_var("x", 3.0);
//! let y = p.add_var("y", 2.0);
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 4.0)?;
//! p.add_constraint(&[(x, 1.0), (y, 3.0)], Relation::Le, 6.0)?;
//! let sol = p.solve()?;
//! assert!((sol.objective() - 12.0).abs() < 1e-9);
//! assert!((sol.value(x) - 4.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! The solver is exact up to floating-point tolerance (`1e-9` by default) and
//! uses Dantzig pricing with an automatic switch to Bland's rule when cycling
//! is suspected. Both pricing rules can be forced through [`SolverOptions`]
//! (exercised by the workspace's ablation benches).
//!
//! For column generation, [`IncrementalSolver`] keeps the final tableau and
//! basis warm so priced-in columns can be appended and re-optimized in a few
//! pivots instead of a from-scratch two-phase solve per pricing round.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod incremental;
mod problem;
mod simplex;
mod solution;

pub use error::{ProblemError, SolveError};
pub use incremental::IncrementalSolver;
pub use problem::{Direction, Problem, Relation, VarId};
pub use simplex::{Pricing, SolverOptions};
pub use solution::Solution;
