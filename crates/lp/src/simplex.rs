//! Dense two-phase primal simplex.
//!
//! The implementation keeps an explicit full tableau. Sizes in this workspace
//! are tiny (tens of rows, at most a few thousand columns for the Eq. 9 upper
//! bound), so clarity wins over sparsity tricks.

use crate::error::SolveError;
use crate::problem::{Direction, Problem, Relation};
use crate::solution::Solution;

/// Column-selection (pricing) rule used by the simplex iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pricing {
    /// Dantzig's rule (most negative reduced cost) with an automatic fallback
    /// to Bland's rule when a long degenerate streak suggests cycling.
    #[default]
    Auto,
    /// Always Dantzig's rule. May cycle on degenerate inputs.
    Dantzig,
    /// Always Bland's rule. Terminates on any input, usually slower.
    Bland,
}

/// Options controlling [`Problem::solve_with`](crate::Problem::solve_with).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Pricing rule. Defaults to [`Pricing::Auto`].
    pub pricing: Pricing,
    /// Numerical tolerance for feasibility and optimality tests.
    pub tolerance: f64,
    /// Hard cap on simplex pivots per phase; `None` picks a size-based cap.
    pub max_iterations: Option<usize>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            pricing: Pricing::Auto,
            tolerance: 1e-9,
            max_iterations: None,
        }
    }
}

/// Number of consecutive degenerate pivots after which [`Pricing::Auto`]
/// switches to Bland's rule.
const DEGENERATE_STREAK_LIMIT: usize = 40;

struct Tableau {
    /// `rows x (cols + 1)`; the last entry of each row is the rhs.
    rows: Vec<Vec<f64>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of structural + slack + artificial columns.
    cols: usize,
    tol: f64,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.rows[row][self.cols]
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_val = self.rows[pivot_row][pivot_col];
        debug_assert!(pivot_val.abs() > self.tol);
        let inv = 1.0 / pivot_val;
        for v in &mut self.rows[pivot_row] {
            *v *= inv;
        }
        // Re-normalize the pivot entry exactly to avoid drift.
        self.rows[pivot_row][pivot_col] = 1.0;
        let pivot_row_copy = self.rows[pivot_row].clone();
        for (r, row) in self.rows.iter_mut().enumerate() {
            if r == pivot_row {
                continue;
            }
            let factor = row[pivot_col];
            if factor == 0.0 {
                continue;
            }
            for (v, p) in row.iter_mut().zip(&pivot_row_copy) {
                *v -= factor * p;
            }
            row[pivot_col] = 0.0;
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Ratio test: returns the leaving row for `entering`, or `None` if the
    /// column is non-positive (unbounded direction). Ties are broken by the
    /// smallest basic variable index (lexicographic/Bland-compatible).
    fn leaving_row(&self, entering: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.rows.len() {
            let a = self.rows[r][entering];
            if a > self.tol {
                let ratio = self.rhs(r) / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - self.tol
                            || (ratio < bratio + self.tol && self.basis[r] < self.basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }
}

/// Runs simplex iterations to optimality for the *minimization* objective
/// `cost`, given a starting basic feasible solution already in `t`.
///
/// Returns `Err(SolveError::Unbounded)` or `Err(SolveError::IterationLimit)`.
fn optimize(
    t: &mut Tableau,
    cost: &[f64],
    options: &SolverOptions,
    allow_cols: usize,
) -> Result<(), SolveError> {
    let m = t.rows.len();
    let limit = options
        .max_iterations
        .unwrap_or(2_000 + 200 * (m + allow_cols));
    // Reduced-cost row maintained incrementally would be faster; recomputing
    // from the basis keeps the code simple and numerically self-correcting.
    let mut degenerate_streak = 0usize;
    for _ in 0..limit {
        // Price: r_j = c_j - sum_i c_B(i) * T[i][j]
        let mut multipliers = vec![0.0; m];
        for (i, &b) in t.basis.iter().enumerate() {
            multipliers[i] = cost.get(b).copied().unwrap_or(0.0);
        }
        let use_bland = match options.pricing {
            Pricing::Bland => true,
            Pricing::Dantzig => false,
            Pricing::Auto => degenerate_streak >= DEGENERATE_STREAK_LIMIT,
        };
        let mut entering: Option<(usize, f64)> = None;
        for j in 0..allow_cols {
            if t.basis.contains(&j) {
                continue;
            }
            let mut rc = cost.get(j).copied().unwrap_or(0.0);
            for (mu, row) in multipliers.iter().zip(&t.rows) {
                if *mu != 0.0 {
                    rc -= mu * row[j];
                }
            }
            if rc < -options.tolerance {
                if use_bland {
                    entering = Some((j, rc));
                    break;
                }
                match entering {
                    None => entering = Some((j, rc)),
                    Some((_, best)) if rc < best => entering = Some((j, rc)),
                    _ => {}
                }
            }
        }
        let Some((col, _)) = entering else {
            return Ok(()); // optimal
        };
        let Some(row) = t.leaving_row(col) else {
            return Err(SolveError::Unbounded);
        };
        if t.rhs(row).abs() <= options.tolerance {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
        t.pivot(row, col);
    }
    Err(SolveError::IterationLimit { limit })
}

/// Solves `problem`, translating to/from the internal minimization form.
pub(crate) fn solve(problem: &Problem, options: SolverOptions) -> Result<Solution, SolveError> {
    let n = problem.num_vars();
    let cons = problem.constraints();
    let m = cons.len();

    // Count slack and artificial columns. Every row gets exactly one of:
    //   Le with rhs>=0: slack; Ge with rhs>=0: surplus + artificial;
    //   Eq: artificial. Rows with negative rhs are sign-flipped first.
    #[derive(Clone, Copy)]
    struct RowPlan {
        flip: bool,
        relation: Relation,
    }
    let plans: Vec<RowPlan> = cons
        .iter()
        .map(|c| {
            let flip = c.rhs < 0.0;
            let relation = if flip {
                match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                }
            } else {
                c.relation
            };
            RowPlan { flip, relation }
        })
        .collect();

    let num_slack = plans
        .iter()
        .filter(|p| !matches!(p.relation, Relation::Eq))
        .count();
    let num_artificial = plans
        .iter()
        .filter(|p| matches!(p.relation, Relation::Ge | Relation::Eq))
        .count();
    let cols = n + num_slack + num_artificial;
    let artificial_start = n + num_slack;

    let mut rows = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut next_slack = n;
    let mut next_artificial = artificial_start;
    // The column holding each original row's +1 identity entry, from which
    // dual values are recovered after phase 2.
    let mut identity_col = vec![0usize; m];
    for (r, (c, plan)) in cons.iter().zip(&plans).enumerate() {
        let sign = if plan.flip { -1.0 } else { 1.0 };
        for (j, &a) in c.coeffs.iter().enumerate() {
            rows[r][j] = sign * a;
        }
        rows[r][cols] = sign * c.rhs;
        match plan.relation {
            Relation::Le => {
                rows[r][next_slack] = 1.0;
                basis[r] = next_slack;
                identity_col[r] = next_slack;
                next_slack += 1;
            }
            Relation::Ge => {
                rows[r][next_slack] = -1.0;
                next_slack += 1;
                rows[r][next_artificial] = 1.0;
                basis[r] = next_artificial;
                identity_col[r] = next_artificial;
                next_artificial += 1;
            }
            Relation::Eq => {
                rows[r][next_artificial] = 1.0;
                basis[r] = next_artificial;
                identity_col[r] = next_artificial;
                next_artificial += 1;
            }
        }
    }

    let mut t = Tableau {
        rows,
        basis,
        cols,
        tol: options.tolerance,
    };

    // Phase 1: minimize the sum of artificials, if any are present.
    if num_artificial > 0 {
        let mut phase1_cost = vec![0.0; cols];
        for c in phase1_cost.iter_mut().skip(artificial_start) {
            *c = 1.0;
        }
        optimize(&mut t, &phase1_cost, &options, cols)?;
        let infeasibility: f64 = t
            .basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| b >= artificial_start)
            .map(|(r, _)| t.rhs(r))
            .sum();
        if infeasibility > options.tolerance.max(1e-7) {
            return Err(SolveError::Infeasible);
        }
        // Drive any residual (zero-valued) artificials out of the basis.
        let mut r = 0;
        while r < t.rows.len() {
            if t.basis[r] >= artificial_start {
                let pivot_col = (0..artificial_start)
                    .find(|&j| t.rows[r][j].abs() > options.tolerance.max(1e-8));
                match pivot_col {
                    Some(j) => t.pivot(r, j),
                    None => {
                        // Redundant row: remove it entirely.
                        t.rows.remove(r);
                        t.basis.remove(r);
                        continue;
                    }
                }
            }
            r += 1;
        }
    }

    // Phase 2: minimize the (possibly negated) objective over structural and
    // slack columns only.
    let mut cost = vec![0.0; cols];
    let obj = problem.objective_coeffs();
    for j in 0..n {
        cost[j] = match problem.direction() {
            Direction::Maximize => -obj[j],
            Direction::Minimize => obj[j],
        };
    }
    optimize(&mut t, &cost, &options, artificial_start)?;

    let mut x = vec![0.0; n];
    for (r, &b) in t.basis.iter().enumerate() {
        if b < n {
            // Clamp tiny negatives produced by roundoff.
            x[b] = t.rhs(r).max(0.0);
        }
    }
    let objective: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();

    // Dual values (shadow prices). The identity column of original row `i`
    // carries `B^{-1} e_i` in the final tableau, so the internal dual is
    // `y_i = ĉ_B · T[·][identity_col(i)]`; translate back through the
    // direction and sign normalizations. Rows dropped as redundant get 0.
    let dir_sign = match problem.direction() {
        Direction::Maximize => -1.0,
        Direction::Minimize => 1.0,
    };
    let multipliers: Vec<f64> = t
        .basis
        .iter()
        .map(|&b| cost.get(b).copied().unwrap_or(0.0))
        .collect();
    let duals: Vec<f64> = (0..m)
        .map(|i| {
            let col = identity_col[i];
            let y_internal: f64 = multipliers
                .iter()
                .zip(&t.rows)
                .map(|(&mu, row)| mu * row[col])
                .sum();
            let flip_sign = if plans[i].flip { -1.0 } else { 1.0 };
            dir_sign * flip_sign * y_internal
        })
        .collect();
    Ok(Solution::new(
        x,
        objective,
        problem.var_names().to_vec(),
        duals,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, Problem, Relation};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn maximize_two_vars() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 36.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 6.0);
    }

    #[test]
    fn minimize_with_ge_constraints_uses_phase_one() {
        // min 2x + 3y  s.t.  x + y >= 10, x >= 2  -> x=10 wait: coefficient
        // check: optimum is y=0, x=10, obj 20 (since 2 < 3).
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 2.0);
        let y = p.add_var("y", 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 20.0);
        approx(s.value(x), 10.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + 2y = 4, x <= 2 -> x=2, y=1, obj=3.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        p.bound_var(x, 2.0).unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 3.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_is_detected() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 0.0);
        // x - y <= 1 does not bound x when y is free to grow.
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0)
            .unwrap();
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x >= 3 written as -x <= -3.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0).unwrap();
        let s = p.solve().unwrap();
        approx(s.value(x), 3.0);
    }

    #[test]
    fn redundant_equality_rows_are_dropped() {
        // Two identical equalities; phase 1 leaves a redundant artificial row.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 2.0);
    }

    #[test]
    fn degenerate_problem_terminates_with_all_pricings() {
        // Beale's classic cycling example (degenerate under naive Dantzig).
        for pricing in [Pricing::Auto, Pricing::Bland, Pricing::Dantzig] {
            let mut p = Problem::new(Direction::Minimize);
            let x1 = p.add_var("x1", -0.75);
            let x2 = p.add_var("x2", 150.0);
            let x3 = p.add_var("x3", -0.02);
            let x4 = p.add_var("x4", 6.0);
            p.add_constraint(
                &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
                Relation::Le,
                0.0,
            )
            .unwrap();
            p.add_constraint(
                &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
                Relation::Le,
                0.0,
            )
            .unwrap();
            p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0).unwrap();
            let result = p.solve_with(SolverOptions {
                pricing,
                ..SolverOptions::default()
            });
            match (pricing, result) {
                // Pure Dantzig pricing is *allowed* to cycle on Beale's
                // example; hitting the iteration cap is acceptable there.
                (Pricing::Dantzig, Err(SolveError::IterationLimit { .. })) => {}
                (_, Ok(s)) => approx(s.objective(), -0.05),
                (p, Err(e)) => panic!("{p:?} failed: {e}"),
            }
        }
    }

    #[test]
    fn zero_constraint_problem_with_bounded_objective() {
        // No constraints and a zero objective: optimum 0 at the origin.
        let mut p = Problem::new(Direction::Maximize);
        let _x = p.add_var("x", 0.0);
        let s = p.solve().unwrap();
        approx(s.objective(), 0.0);
    }

    #[test]
    fn minimization_of_nonnegative_vars_is_zero_at_origin() {
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 5.0);
        let y = p.add_var("y", 7.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 100.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 0.0);
        approx(s.value(x), 0.0);
        approx(s.value(y), 0.0);
    }

    #[test]
    fn scheduling_shaped_lp_matches_hand_solution() {
        // A miniature of the paper's Eq. 6: maximize f with two independent
        // sets of rates (54, 0) and (0, 54) serving a 2-link path:
        //   f <= 54*l1, f <= 54*l2, l1 + l2 <= 1  ->  f = 27.
        let mut p = Problem::new(Direction::Maximize);
        let f = p.add_var("f", 1.0);
        let l1 = p.add_var("l1", 0.0);
        let l2 = p.add_var("l2", 0.0);
        p.add_constraint(&[(l1, 1.0), (l2, 1.0)], Relation::Le, 1.0)
            .unwrap();
        p.add_constraint(&[(l1, 54.0), (f, -1.0)], Relation::Ge, 0.0)
            .unwrap();
        p.add_constraint(&[(l2, 54.0), (f, -1.0)], Relation::Ge, 0.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 27.0);
    }
}
