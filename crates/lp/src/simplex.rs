//! Dense two-phase primal simplex.
//!
//! The implementation keeps an explicit full tableau. Sizes in this workspace
//! are tiny (tens of rows, at most a few thousand columns for the Eq. 9 upper
//! bound), so clarity wins over sparsity tricks. The tableau is stored as one
//! row-major allocation with stride indexing so pivots stream through memory
//! instead of chasing per-row pointers.

use crate::error::{ProblemError, SolveError};
use crate::problem::{Direction, Problem, Relation};
use crate::solution::Solution;
use std::ops::Range;

/// Column-selection (pricing) rule used by the simplex iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pricing {
    /// Dantzig's rule (most negative reduced cost) with an automatic fallback
    /// to Bland's rule when a long degenerate streak suggests cycling.
    #[default]
    Auto,
    /// Always Dantzig's rule. May cycle on degenerate inputs.
    Dantzig,
    /// Always Bland's rule. Terminates on any input, usually slower.
    Bland,
}

/// Options controlling [`Problem::solve_with`](crate::Problem::solve_with).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Pricing rule. Defaults to [`Pricing::Auto`].
    pub pricing: Pricing,
    /// Numerical tolerance for feasibility and optimality tests.
    pub tolerance: f64,
    /// Hard cap on simplex pivots per phase; `None` picks a size-based cap.
    pub max_iterations: Option<usize>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            pricing: Pricing::Auto,
            tolerance: 1e-9,
            max_iterations: None,
        }
    }
}

/// Number of consecutive degenerate pivots after which [`Pricing::Auto`]
/// switches to Bland's rule.
const DEGENERATE_STREAK_LIMIT: usize = 40;

#[derive(Debug)]
struct Tableau {
    /// Row-major `rows x stride` storage with `stride == cols + 1`; the last
    /// entry of each row is the rhs.
    data: Vec<f64>,
    stride: usize,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of structural + slack + artificial (+ appended) columns.
    cols: usize,
    tol: f64,
    /// Scratch copy of the pivot row, reused across pivots.
    scratch: Vec<f64>,
}

impl Tableau {
    fn num_rows(&self) -> usize {
        self.basis.len()
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.stride + col]
    }

    #[inline]
    fn row(&self, row: usize) -> &[f64] {
        &self.data[row * self.stride..(row + 1) * self.stride]
    }

    fn rhs(&self, row: usize) -> f64 {
        self.at(row, self.cols)
    }

    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_val = self.at(pivot_row, pivot_col);
        debug_assert!(pivot_val.abs() > self.tol);
        let inv = 1.0 / pivot_val;
        let start = pivot_row * self.stride;
        for v in &mut self.data[start..start + self.stride] {
            *v *= inv;
        }
        // Re-normalize the pivot entry exactly to avoid drift.
        self.data[start + pivot_col] = 1.0;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(self.row(pivot_row));
        for r in 0..self.num_rows() {
            if r == pivot_row {
                continue;
            }
            let factor = self.at(r, pivot_col);
            // awb-audit: allow(no-float-eq) — exact-zero fast path: skipping the row
            // elimination is only sound when the factor is bit-for-bit zero.
            if factor == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.stride..(r + 1) * self.stride];
            for (v, p) in row.iter_mut().zip(&scratch) {
                *v -= factor * p;
            }
            row[pivot_col] = 0.0;
        }
        self.scratch = scratch;
        self.basis[pivot_row] = pivot_col;
        #[cfg(feature = "debug-invariants")]
        {
            invariants::tableau_finite(self);
            invariants::rhs_feasible(self);
        }
    }

    /// Ratio test: returns the leaving row for `entering`, or `None` if the
    /// column is non-positive (unbounded direction). Ties are broken by the
    /// smallest basic variable index (lexicographic/Bland-compatible).
    fn leaving_row(&self, entering: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.num_rows() {
            let a = self.at(r, entering);
            if a > self.tol {
                let ratio = self.rhs(r) / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - self.tol
                            || (ratio < bratio + self.tol && self.basis[r] < self.basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Removes row `r` from the tableau (redundant after phase 1).
    fn remove_row(&mut self, r: usize) {
        self.data.drain(r * self.stride..(r + 1) * self.stride);
        self.basis.remove(r);
    }

    /// Appends a column (already expressed in the current basis) just before
    /// the rhs. Grows the stride, so the storage is rebuilt once per append.
    fn push_column(&mut self, col_vals: &[f64]) {
        debug_assert_eq!(col_vals.len(), self.num_rows());
        let old_stride = self.stride;
        let mut data = Vec::with_capacity(self.num_rows() * (old_stride + 1));
        for (r, &v) in col_vals.iter().enumerate() {
            let row = &self.data[r * old_stride..(r + 1) * old_stride];
            data.extend_from_slice(&row[..self.cols]);
            data.push(v);
            data.push(row[self.cols]);
        }
        self.data = data;
        self.cols += 1;
        self.stride += 1;
    }
}

/// Runs simplex iterations to optimality for the *minimization* objective
/// `cost`, given a starting basic feasible solution already in `t`. Columns
/// `0..main_cols` and `extra` (appended columns living past the artificial
/// block) are priced; everything else is frozen out of the basis.
///
/// Returns the number of pivots performed, or
/// `Err(SolveError::Unbounded)` / `Err(SolveError::IterationLimit)`.
fn optimize(
    t: &mut Tableau,
    cost: &[f64],
    options: &SolverOptions,
    main_cols: usize,
    extra: Range<usize>,
) -> Result<usize, SolveError> {
    let m = t.num_rows();
    let priced = main_cols + extra.len();
    let limit = options.max_iterations.unwrap_or(2_000 + 200 * (m + priced));
    // Reduced-cost row maintained incrementally would be faster; recomputing
    // from the basis keeps the code simple and numerically self-correcting.
    let mut degenerate_streak = 0usize;
    for pivots in 0..limit {
        // Price: r_j = c_j - sum_i c_B(i) * T[i][j]
        let mut multipliers = vec![0.0; m];
        for (i, &b) in t.basis.iter().enumerate() {
            multipliers[i] = cost.get(b).copied().unwrap_or(0.0);
        }
        let use_bland = match options.pricing {
            Pricing::Bland => true,
            Pricing::Dantzig => false,
            Pricing::Auto => degenerate_streak >= DEGENERATE_STREAK_LIMIT,
        };
        let mut entering: Option<(usize, f64)> = None;
        for j in (0..main_cols).chain(extra.clone()) {
            if t.basis.contains(&j) {
                continue;
            }
            let mut rc = cost.get(j).copied().unwrap_or(0.0);
            for (i, mu) in multipliers.iter().enumerate() {
                // awb-audit: allow(no-float-eq) — exact-zero sparsity skip; a tolerance
                // here would silently drop small-but-real dual contributions.
                if *mu != 0.0 {
                    rc -= mu * t.at(i, j);
                }
            }
            if rc < -options.tolerance {
                if use_bland {
                    entering = Some((j, rc));
                    break;
                }
                match entering {
                    None => entering = Some((j, rc)),
                    Some((_, best)) if rc < best => entering = Some((j, rc)),
                    _ => {}
                }
            }
        }
        let Some((col, _)) = entering else {
            return Ok(pivots); // optimal
        };
        let Some(row) = t.leaving_row(col) else {
            return Err(SolveError::Unbounded);
        };
        if t.rhs(row).abs() <= options.tolerance {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
        t.pivot(row, col);
    }
    Err(SolveError::IterationLimit { limit })
}

/// A built simplex instance: the tableau plus the bookkeeping required to run
/// both phases, recover a [`Solution`], and append priced-in columns for the
/// incremental (column-generation) driver.
#[derive(Debug)]
pub(crate) struct Instance {
    t: Tableau,
    /// Whether each *original* row was sign-flipped during normalization.
    flips: Vec<bool>,
    /// The column holding each original row's +1 identity entry, from which
    /// dual values (and appended columns' basis representations) are
    /// recovered.
    identity_col: Vec<usize>,
    /// Original structural variable count.
    n: usize,
    artificial_start: usize,
    /// One past the last artificial column; appended columns live from here.
    artificial_end: usize,
    /// Internal minimization cost, kept in lockstep with the columns.
    cost: Vec<f64>,
    direction: Direction,
    rows_dropped: bool,
    pivots: usize,
}

impl Instance {
    pub(crate) fn build(problem: &Problem, options: &SolverOptions) -> Instance {
        let n = problem.num_vars();
        let cons = problem.constraints();
        let m = cons.len();

        // Every row gets exactly one of:
        //   Le with rhs>=0: slack; Ge with rhs>=0: surplus + artificial;
        //   Eq: artificial. Rows with negative rhs are sign-flipped first.
        let plans: Vec<(bool, Relation)> = cons
            .iter()
            .map(|c| {
                let flip = c.rhs < 0.0;
                let relation = if flip {
                    match c.relation {
                        Relation::Le => Relation::Ge,
                        Relation::Ge => Relation::Le,
                        Relation::Eq => Relation::Eq,
                    }
                } else {
                    c.relation
                };
                (flip, relation)
            })
            .collect();

        let num_slack = plans
            .iter()
            .filter(|(_, rel)| !matches!(rel, Relation::Eq))
            .count();
        let num_artificial = plans
            .iter()
            .filter(|(_, rel)| matches!(rel, Relation::Ge | Relation::Eq))
            .count();
        let cols = n + num_slack + num_artificial;
        let artificial_start = n + num_slack;
        let stride = cols + 1;

        let mut data = vec![0.0; m * stride];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_artificial = artificial_start;
        let mut identity_col = vec![0usize; m];
        for (r, (c, &(flip, relation))) in cons.iter().zip(&plans).enumerate() {
            let sign = if flip { -1.0 } else { 1.0 };
            let row = &mut data[r * stride..(r + 1) * stride];
            for (j, &a) in c.coeffs.iter().enumerate() {
                row[j] = sign * a;
            }
            row[cols] = sign * c.rhs;
            match relation {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    basis[r] = next_slack;
                    identity_col[r] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    row[next_artificial] = 1.0;
                    basis[r] = next_artificial;
                    identity_col[r] = next_artificial;
                    next_artificial += 1;
                }
                Relation::Eq => {
                    row[next_artificial] = 1.0;
                    basis[r] = next_artificial;
                    identity_col[r] = next_artificial;
                    next_artificial += 1;
                }
            }
        }

        // Phase-2 internal minimization cost over the original structurals.
        let mut cost = vec![0.0; cols];
        let obj = problem.objective_coeffs();
        for j in 0..n {
            cost[j] = match problem.direction() {
                Direction::Maximize => -obj[j],
                Direction::Minimize => obj[j],
            };
        }

        Instance {
            t: Tableau {
                data,
                stride,
                basis,
                cols,
                tol: options.tolerance,
                scratch: Vec::new(),
            },
            flips: plans.iter().map(|&(flip, _)| flip).collect(),
            identity_col,
            n,
            artificial_start,
            artificial_end: cols,
            cost,
            direction: problem.direction(),
            rows_dropped: false,
            pivots: 0,
        }
    }

    /// Phase 1: minimize the sum of artificials, if any are present, then
    /// drive residual artificials out of the basis (dropping redundant rows).
    pub(crate) fn phase1(&mut self, options: &SolverOptions) -> Result<(), SolveError> {
        if self.artificial_end == self.artificial_start {
            return Ok(());
        }
        let mut phase1_cost = vec![0.0; self.artificial_end];
        for c in phase1_cost.iter_mut().skip(self.artificial_start) {
            *c = 1.0;
        }
        let all_cols = self.t.cols;
        self.pivots += optimize(&mut self.t, &phase1_cost, options, all_cols, 0..0)?;
        let infeasibility: f64 = self
            .t
            .basis
            .iter()
            .enumerate()
            .filter(|(_, &b)| b >= self.artificial_start)
            .map(|(r, _)| self.t.rhs(r))
            .sum();
        if infeasibility > options.tolerance.max(1e-7) {
            return Err(SolveError::Infeasible);
        }
        // Drive any residual (zero-valued) artificials out of the basis.
        let mut r = 0;
        while r < self.t.num_rows() {
            if self.t.basis[r] >= self.artificial_start {
                let pivot_col = (0..self.artificial_start)
                    .find(|&j| self.t.at(r, j).abs() > options.tolerance.max(1e-8));
                match pivot_col {
                    Some(j) => self.t.pivot(r, j),
                    None => {
                        // Redundant row: remove it entirely.
                        self.t.remove_row(r);
                        self.rows_dropped = true;
                        continue;
                    }
                }
            }
            r += 1;
        }
        Ok(())
    }

    /// Phase 2: minimize the internal cost over structural, slack, and
    /// appended columns (artificials stay frozen out).
    pub(crate) fn phase2(&mut self, options: &SolverOptions) -> Result<(), SolveError> {
        let extra = self.artificial_end..self.t.cols;
        self.pivots += optimize(
            &mut self.t,
            &self.cost,
            options,
            self.artificial_start,
            extra,
        )?;
        Ok(())
    }

    /// Appends a structural column with the given *user-direction* objective
    /// coefficient and sparse per-original-constraint coefficients, expressed
    /// in the current basis via the identity columns. The column enters
    /// nonbasic; call [`Instance::phase2`] to re-optimize.
    ///
    /// Returns the solution-vector index of the new variable.
    pub(crate) fn add_column(
        &mut self,
        objective: f64,
        terms: &[(usize, f64)],
    ) -> Result<usize, ProblemError> {
        if self.rows_dropped {
            return Err(ProblemError::RedundantRowsEliminated);
        }
        let m = self.flips.len();
        if !objective.is_finite() {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        let mut seen = vec![false; m];
        for &(row, a) in terms {
            if row >= m {
                return Err(ProblemError::UnknownConstraint {
                    index: row,
                    declared: m,
                });
            }
            if !a.is_finite() {
                return Err(ProblemError::NonFiniteCoefficient);
            }
            if seen[row] {
                return Err(ProblemError::DuplicateConstraint { index: row });
            }
            seen[row] = true;
        }
        // The initial-tableau column is `a` with per-row sign flips; its
        // representation in the current basis is `B^{-1} a`, assembled from
        // the identity columns: `B^{-1} e_i` sits at `identity_col[i]`.
        let mut col = vec![0.0; self.t.num_rows()];
        for &(row, a) in terms {
            let signed = if self.flips[row] { -a } else { a };
            // awb-audit: allow(no-float-eq) — exact-zero sparsity skip on caller-given
            // coefficients; only bit-zero entries may be omitted from B^{-1}a.
            if signed == 0.0 {
                continue;
            }
            let ic = self.identity_col[row];
            for (r, v) in col.iter_mut().enumerate() {
                *v += signed * self.t.at(r, ic);
            }
        }
        self.t.push_column(&col);
        self.cost.push(match self.direction {
            Direction::Maximize => -objective,
            Direction::Minimize => objective,
        });
        Ok(self.n + (self.t.cols - 1 - self.artificial_end))
    }

    /// Number of variables in the solution vector (original + appended).
    pub(crate) fn num_solution_vars(&self) -> usize {
        self.n + (self.t.cols - self.artificial_end)
    }

    /// Number of original constraints (valid row indices for
    /// [`Instance::add_column`]).
    pub(crate) fn num_original_rows(&self) -> usize {
        self.flips.len()
    }

    /// Total simplex pivots performed so far, across both phases and every
    /// re-optimization.
    pub(crate) fn pivots(&self) -> usize {
        self.pivots
    }

    /// Recovers the primal/dual solution at the current (optimal) basis.
    /// `objective` must cover original + appended variables, user direction.
    pub(crate) fn extract(&self, objective: &[f64], names: Vec<String>) -> Solution {
        let mut x = vec![0.0; self.num_solution_vars()];
        for (r, &b) in self.t.basis.iter().enumerate() {
            let var = if b < self.n {
                Some(b)
            } else if b >= self.artificial_end {
                Some(self.n + (b - self.artificial_end))
            } else {
                None
            };
            if let Some(j) = var {
                // Clamp tiny negatives produced by roundoff.
                x[j] = self.t.rhs(r).max(0.0);
            }
        }
        let objective_value: f64 = objective.iter().zip(&x).map(|(c, v)| c * v).sum();

        // Dual values (shadow prices). The identity column of original row `i`
        // carries `B^{-1} e_i` in the final tableau, so the internal dual is
        // `y_i = ĉ_B · T[·][identity_col(i)]`; translate back through the
        // direction and sign normalizations. Rows dropped as redundant get 0.
        let dir_sign = match self.direction {
            Direction::Maximize => -1.0,
            Direction::Minimize => 1.0,
        };
        let multipliers: Vec<f64> = self
            .t
            .basis
            .iter()
            .map(|&b| self.cost.get(b).copied().unwrap_or(0.0))
            .collect();
        let duals: Vec<f64> = (0..self.flips.len())
            .map(|i| {
                let col = self.identity_col[i];
                let y_internal: f64 = multipliers
                    .iter()
                    .enumerate()
                    .map(|(r, &mu)| mu * self.t.at(r, col))
                    .sum();
                let flip_sign = if self.flips[i] { -1.0 } else { 1.0 };
                dir_sign * flip_sign * y_internal
            })
            .collect();
        #[cfg(feature = "debug-invariants")]
        invariants::duals_finite(&duals);
        Solution::new(x, objective_value, names, duals, self.pivots)
    }
}

/// Solves `problem`, translating to/from the internal minimization form.
pub(crate) fn solve(problem: &Problem, options: SolverOptions) -> Result<Solution, SolveError> {
    let mut inst = Instance::build(problem, &options);
    inst.phase1(&options)?;
    inst.phase2(&options)?;
    Ok(inst.extract(problem.objective_coeffs(), problem.var_names().to_vec()))
}

/// Runtime invariant guards at pivot and solve boundaries, compiled in only
/// under the `debug-invariants` feature. All checks are `debug_assert!`s, so
/// even with the feature on they vanish from release builds; enabling the
/// feature in CI's debug test leg makes the solver self-checking.
#[cfg(feature = "debug-invariants")]
mod invariants {
    use super::Tableau;

    /// Every tableau entry (including the rhs column) must stay finite: a
    /// NaN or infinity here silently corrupts every later pivot and the
    /// duals extracted from the final basis.
    pub(super) fn tableau_finite(t: &Tableau) {
        debug_assert!(
            t.data.iter().all(|v| v.is_finite()),
            "tableau contains a non-finite entry after a pivot"
        );
    }

    /// The simplex ratio test preserves primal feasibility: every basic
    /// variable's value (the rhs) stays non-negative up to tolerance.
    pub(super) fn rhs_feasible(t: &Tableau) {
        for r in 0..t.num_rows() {
            debug_assert!(
                t.rhs(r) >= -t.tol.max(1e-7),
                "pivot broke primal feasibility: rhs[{r}] = {}",
                t.rhs(r)
            );
        }
    }

    /// Extracted shadow prices feed the colgen pricing oracle; a non-finite
    /// dual would poison the reduced-cost test without failing loudly.
    pub(super) fn duals_finite(duals: &[f64]) {
        debug_assert!(
            duals.iter().all(|d| d.is_finite()),
            "extracted a non-finite dual value"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Direction, Problem, Relation};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn maximize_two_vars() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 3.0);
        let y = p.add_var("y", 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        p.add_constraint(&[(y, 2.0)], Relation::Le, 12.0).unwrap();
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 36.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 6.0);
    }

    #[test]
    fn minimize_with_ge_constraints_uses_phase_one() {
        // min 2x + 3y  s.t.  x + y >= 10, x >= 2  -> x=10 wait: coefficient
        // check: optimum is y=0, x=10, obj 20 (since 2 < 3).
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 2.0);
        let y = p.add_var("y", 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 10.0)
            .unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 20.0);
        approx(s.value(x), 10.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + 2y = 4, x <= 2 -> x=2, y=1, obj=3.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        p.bound_var(x, 2.0).unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 3.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_is_detected() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_is_detected() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 0.0);
        // x - y <= 1 does not bound x when y is free to grow.
        p.add_constraint(&[(x, 1.0), (y, -1.0)], Relation::Le, 1.0)
            .unwrap();
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x >= 3 written as -x <= -3.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0).unwrap();
        let s = p.solve().unwrap();
        approx(s.value(x), 3.0);
    }

    #[test]
    fn redundant_equality_rows_are_dropped() {
        // Two identical equalities; phase 1 leaves a redundant artificial row.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 2.0);
    }

    #[test]
    fn degenerate_problem_terminates_with_all_pricings() {
        // Beale's classic cycling example (degenerate under naive Dantzig).
        for pricing in [Pricing::Auto, Pricing::Bland, Pricing::Dantzig] {
            let mut p = Problem::new(Direction::Minimize);
            let x1 = p.add_var("x1", -0.75);
            let x2 = p.add_var("x2", 150.0);
            let x3 = p.add_var("x3", -0.02);
            let x4 = p.add_var("x4", 6.0);
            p.add_constraint(
                &[(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
                Relation::Le,
                0.0,
            )
            .unwrap();
            p.add_constraint(
                &[(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
                Relation::Le,
                0.0,
            )
            .unwrap();
            p.add_constraint(&[(x3, 1.0)], Relation::Le, 1.0).unwrap();
            let result = p.solve_with(SolverOptions {
                pricing,
                ..SolverOptions::default()
            });
            match (pricing, result) {
                // Pure Dantzig pricing is *allowed* to cycle on Beale's
                // example; hitting the iteration cap is acceptable there.
                (Pricing::Dantzig, Err(SolveError::IterationLimit { .. })) => {}
                (_, Ok(s)) => approx(s.objective(), -0.05),
                (p, Err(e)) => panic!("{p:?} failed: {e}"),
            }
        }
    }

    #[test]
    fn zero_constraint_problem_with_bounded_objective() {
        // No constraints and a zero objective: optimum 0 at the origin.
        let mut p = Problem::new(Direction::Maximize);
        let _x = p.add_var("x", 0.0);
        let s = p.solve().unwrap();
        approx(s.objective(), 0.0);
    }

    #[test]
    fn minimization_of_nonnegative_vars_is_zero_at_origin() {
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 5.0);
        let y = p.add_var("y", 7.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 100.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 0.0);
        approx(s.value(x), 0.0);
        approx(s.value(y), 0.0);
    }

    #[test]
    fn scheduling_shaped_lp_matches_hand_solution() {
        // A miniature of the paper's Eq. 6: maximize f with two independent
        // sets of rates (54, 0) and (0, 54) serving a 2-link path:
        //   f <= 54*l1, f <= 54*l2, l1 + l2 <= 1  ->  f = 27.
        let mut p = Problem::new(Direction::Maximize);
        let f = p.add_var("f", 1.0);
        let l1 = p.add_var("l1", 0.0);
        let l2 = p.add_var("l2", 0.0);
        p.add_constraint(&[(l1, 1.0), (l2, 1.0)], Relation::Le, 1.0)
            .unwrap();
        p.add_constraint(&[(l1, 54.0), (f, -1.0)], Relation::Ge, 0.0)
            .unwrap();
        p.add_constraint(&[(l2, 54.0), (f, -1.0)], Relation::Ge, 0.0)
            .unwrap();
        let s = p.solve().unwrap();
        approx(s.objective(), 27.0);
    }

    #[test]
    fn solution_reports_pivot_count() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 2.0).unwrap();
        let s = p.solve().unwrap();
        // One pivot brings x into the basis; no phase 1 needed.
        assert_eq!(s.pivots(), 1);
    }
}
