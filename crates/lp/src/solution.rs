use crate::problem::VarId;

/// An optimal solution returned by [`Problem::solve`](crate::Problem::solve).
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    names: Vec<String>,
    duals: Vec<f64>,
    pivots: usize,
}

impl Solution {
    pub(crate) fn new(
        values: Vec<f64>,
        objective: f64,
        names: Vec<String>,
        duals: Vec<f64>,
        pivots: usize,
    ) -> Self {
        Solution {
            values,
            objective,
            names,
            duals,
            pivots,
        }
    }

    /// Optimal objective value (in the problem's own direction).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of variable `var` at the optimum.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the problem that produced this
    /// solution.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of the first variable declared with `name`, if any.
    pub fn value_by_name(&self, name: &str) -> Option<f64> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.values[i])
    }

    /// All variable values in declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Variable names in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The dual value (shadow price) of constraint `index`: the rate of
    /// change of the optimal objective per unit increase of that
    /// constraint's right-hand side, in the problem's own direction.
    ///
    /// For a maximization problem a binding `<=` constraint has a
    /// non-negative dual; non-binding constraints have zero duals
    /// (complementary slackness). Duals of redundant rows are reported as
    /// zero; at degenerate optima the dual is one valid subgradient.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a constraint index of the solved problem.
    pub fn dual(&self, index: usize) -> f64 {
        self.duals[index]
    }

    /// All constraint duals in declaration order.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Total simplex pivots performed to reach this solution, across both
    /// phases and — for the incremental solver — every re-optimization since
    /// construction.
    pub fn pivots(&self) -> usize {
        self.pivots
    }
}

#[cfg(test)]
mod tests {
    use crate::{Direction, Problem, Relation};

    #[test]
    fn duals_for_le_in_maximization() {
        // max 3x s.t. x <= 4: shadow price 3.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 3.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 4.0).unwrap();
        let s = p.solve().unwrap();
        assert!((s.dual(0) - 3.0).abs() < 1e-9);
        assert_eq!(s.duals().len(), 1);
    }

    #[test]
    fn duals_for_ge_in_minimization() {
        // min 2x s.t. x >= 5: raising the rhs by 1 costs 2 more.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 2.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 5.0).unwrap();
        let s = p.solve().unwrap();
        assert!((s.objective() - 10.0).abs() < 1e-9);
        assert!((s.dual(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn duals_for_equality_constraints() {
        // max x + 2y s.t. x + y = 3, y <= 1: optimum x=2, y=1, obj=4.
        // d(obj)/d(3) = 1 (extra equality rhs goes to x).
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 3.0)
            .unwrap();
        p.bound_var(y, 1.0).unwrap();
        let s = p.solve().unwrap();
        assert!((s.objective() - 4.0).abs() < 1e-9);
        assert!((s.dual(0) - 1.0).abs() < 1e-9);
        // The y-bound's dual: d(obj)/d(1) = 2 - 1 = 1 (swap a unit of x
        // for y).
        assert!((s.dual(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_binding_constraints_have_zero_duals() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 2.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Le, 100.0).unwrap(); // slack
        let s = p.solve().unwrap();
        assert!((s.dual(0) - 1.0).abs() < 1e-9);
        assert!(s.dual(1).abs() < 1e-9);
    }

    #[test]
    fn negative_rhs_rows_report_correct_dual_sign() {
        // min x s.t. -x <= -3 (i.e. x >= 3): d(obj)/d(-3)... the dual is
        // reported against the row as *stated*: raising the stated rhs from
        // -3 to -2 weakens x >= 3 to x >= 2, improving (lowering) the
        // minimum by 1, so the shadow price is -1... in the problem's own
        // direction the derivative of the optimal value w.r.t. the stated
        // rhs is -1? Optimal = -(stated rhs): d = -1.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0).unwrap();
        let s = p.solve().unwrap();
        assert!((s.objective() - 3.0).abs() < 1e-9);
        assert!((s.dual(0) - (-1.0)).abs() < 1e-9, "dual {}", s.dual(0));
    }

    #[test]
    fn value_by_name_finds_first_match() {
        let mut p = Problem::new(Direction::Maximize);
        let a = p.add_var("alpha", 1.0);
        let _b = p.add_var("beta", 1.0);
        p.add_constraint(&[(a, 1.0)], Relation::Le, 2.0).unwrap();
        p.add_constraint(&[(_b, 1.0)], Relation::Le, 3.0).unwrap();
        let s = p.solve().unwrap();
        assert_eq!(s.value_by_name("alpha"), Some(s.value(a)));
        assert_eq!(s.value_by_name("missing"), None);
        assert_eq!(s.values().len(), 2);
        assert_eq!(s.names().len(), 2);
    }
}
