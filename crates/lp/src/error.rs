use std::error::Error;
use std::fmt;

/// Error raised while *stating* a problem with the [`Problem`](crate::Problem)
/// builder, before any solving is attempted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProblemError {
    /// A constraint or objective referenced a [`VarId`](crate::VarId) that does
    /// not belong to this problem.
    UnknownVariable {
        /// Index of the offending variable.
        index: usize,
        /// Number of variables currently declared.
        declared: usize,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    NonFiniteCoefficient,
    /// The same variable appeared more than once in a single constraint row.
    DuplicateVariable {
        /// Index of the variable that was repeated.
        index: usize,
    },
    /// An appended column referenced a constraint row that does not exist.
    UnknownConstraint {
        /// Index of the offending constraint row.
        index: usize,
        /// Number of constraints on the solved problem.
        declared: usize,
    },
    /// The same constraint row appeared more than once in an appended column.
    DuplicateConstraint {
        /// Index of the constraint row that was repeated.
        index: usize,
    },
    /// Columns cannot be appended to an
    /// [`IncrementalSolver`](crate::IncrementalSolver) after phase 1
    /// eliminated redundant rows: the per-row basis bookkeeping the append
    /// relies on no longer covers the dropped rows.
    RedundantRowsEliminated,
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::UnknownVariable { index, declared } => write!(
                f,
                "constraint references variable {index} but only {declared} are declared"
            ),
            ProblemError::NonFiniteCoefficient => {
                write!(f, "coefficient or bound is NaN or infinite")
            }
            ProblemError::DuplicateVariable { index } => {
                write!(
                    f,
                    "variable {index} appears more than once in one constraint"
                )
            }
            ProblemError::UnknownConstraint { index, declared } => write!(
                f,
                "column references constraint {index} but only {declared} exist"
            ),
            ProblemError::DuplicateConstraint { index } => {
                write!(f, "constraint {index} appears more than once in one column")
            }
            ProblemError::RedundantRowsEliminated => {
                write!(
                    f,
                    "cannot append columns after redundant rows were eliminated"
                )
            }
        }
    }
}

impl Error for ProblemError {}

/// Error raised by [`Problem::solve`](crate::Problem::solve).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The problem statement itself was invalid.
    Problem(ProblemError),
    /// The simplex iteration limit was exceeded (numerically pathological
    /// input; never expected for the LPs built by this workspace).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::Problem(e) => write!(f, "invalid problem: {e}"),
            SolveError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} iterations")
            }
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Problem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProblemError> for SolveError {
    fn from(e: ProblemError) -> Self {
        SolveError::Problem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        for e in [
            SolveError::Infeasible,
            SolveError::Unbounded,
            SolveError::IterationLimit { limit: 7 },
            SolveError::Problem(ProblemError::NonFiniteCoefficient),
        ] {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "{s:?} ends with punctuation");
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("simplex"));
        }
    }

    #[test]
    fn source_chains_problem_errors() {
        let e = SolveError::from(ProblemError::DuplicateVariable { index: 3 });
        assert!(e.source().is_some());
        assert!(SolveError::Infeasible.source().is_none());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
        assert_send_sync::<ProblemError>();
    }
}
