use crate::error::{ProblemError, SolveError};
use crate::simplex::{self, SolverOptions};
use crate::solution::Solution;

/// Optimization direction of a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Maximize the objective.
    #[default]
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation between a constraint's left-hand side and its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// Handle to a decision variable of a [`Problem`].
///
/// Returned by [`Problem::add_var`] and accepted wherever a variable is
/// referenced. Ids are only meaningful for the problem that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The positional index of this variable within its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Dense coefficient row, one entry per declared variable.
    pub(crate) coeffs: Vec<f64>,
    pub(crate) relation: Relation,
    pub(crate) rhs: f64,
}

/// A linear program under construction.
///
/// All variables are implicitly non-negative (`x >= 0`), which matches every
/// quantity in the available-bandwidth model (time shares, throughputs). Upper
/// bounds are expressed as ordinary `<=` constraints via
/// [`Problem::bound_var`].
///
/// See the [crate-level documentation](crate) for a worked example.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    direction: Direction,
    names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem optimizing in `direction`.
    pub fn new(direction: Direction) -> Self {
        Problem {
            direction,
            names: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a non-negative decision variable with the given objective
    /// coefficient and returns its handle.
    ///
    /// `name` is retained for debugging and for [`Solution::value_by_name`].
    pub fn add_var(&mut self, name: impl Into<String>, objective: f64) -> VarId {
        self.names.push(name.into());
        self.objective.push(objective);
        for c in &mut self.constraints {
            c.coeffs.push(0.0);
        }
        VarId(self.names.len() - 1)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimization direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Adds the constraint `sum(coeff * var) relation rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::UnknownVariable`] if a term references a
    /// variable not declared on this problem,
    /// [`ProblemError::DuplicateVariable`] if a variable appears twice, and
    /// [`ProblemError::NonFiniteCoefficient`] for NaN/infinite inputs.
    pub fn add_constraint(
        &mut self,
        terms: &[(VarId, f64)],
        relation: Relation,
        rhs: f64,
    ) -> Result<(), ProblemError> {
        if !rhs.is_finite() {
            return Err(ProblemError::NonFiniteCoefficient);
        }
        let mut coeffs = vec![0.0; self.names.len()];
        let mut seen = vec![false; self.names.len()];
        for &(var, c) in terms {
            if var.0 >= self.names.len() {
                return Err(ProblemError::UnknownVariable {
                    index: var.0,
                    declared: self.names.len(),
                });
            }
            if !c.is_finite() {
                return Err(ProblemError::NonFiniteCoefficient);
            }
            if seen[var.0] {
                return Err(ProblemError::DuplicateVariable { index: var.0 });
            }
            seen[var.0] = true;
            coeffs[var.0] = c;
        }
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        Ok(())
    }

    /// Convenience for the common single-variable bound `var <= upper`.
    ///
    /// # Errors
    ///
    /// Returns an error under the same conditions as [`Problem::add_constraint`].
    pub fn bound_var(&mut self, var: VarId, upper: f64) -> Result<(), ProblemError> {
        self.add_constraint(&[(var, 1.0)], Relation::Le, upper)
    }

    /// Solves the problem with default [`SolverOptions`].
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no point satisfies the constraints,
    /// [`SolveError::Unbounded`] if the objective can grow without limit, and
    /// [`SolveError::IterationLimit`] on pathological numerical behaviour.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(SolverOptions::default())
    }

    /// Solves the problem with explicit solver options.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn solve_with(&self, options: SolverOptions) -> Result<Solution, SolveError> {
        simplex::solve(self, options)
    }

    pub(crate) fn objective_coeffs(&self) -> &[f64] {
        &self.objective
    }

    pub(crate) fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    pub(crate) fn var_names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_after_constraint_extends_rows() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 5.0).unwrap();
        let y = p.add_var("y", 1.0);
        p.add_constraint(&[(y, 1.0)], Relation::Le, 3.0).unwrap();
        // The first constraint row must have been padded for y.
        assert_eq!(p.constraints()[0].coeffs.len(), 2);
        let sol = p.solve().unwrap();
        assert!((sol.objective() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_variable_is_rejected() {
        let mut p = Problem::new(Direction::Maximize);
        let mut other = Problem::new(Direction::Maximize);
        let _x = p.add_var("x", 1.0);
        let foreign = other.add_var("y", 1.0);
        let bogus = VarId(foreign.index() + 10);
        let err = p.add_constraint(&[(bogus, 1.0)], Relation::Le, 1.0);
        assert!(matches!(err, Err(ProblemError::UnknownVariable { .. })));
    }

    #[test]
    fn duplicate_variable_is_rejected() {
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 1.0);
        let err = p.add_constraint(&[(x, 1.0), (x, 2.0)], Relation::Le, 1.0);
        assert_eq!(err, Err(ProblemError::DuplicateVariable { index: 0 }));
    }

    #[test]
    fn non_finite_inputs_are_rejected() {
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 1.0);
        assert!(p
            .add_constraint(&[(x, f64::NAN)], Relation::Le, 1.0)
            .is_err());
        assert!(p
            .add_constraint(&[(x, 1.0)], Relation::Le, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn var_id_index_round_trips() {
        let mut p = Problem::new(Direction::Maximize);
        let a = p.add_var("a", 0.0);
        let b = p.add_var("b", 0.0);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(p.num_vars(), 2);
    }
}
