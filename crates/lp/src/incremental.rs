//! Warm-startable simplex for column generation.
//!
//! [`IncrementalSolver`] solves a [`Problem`] once with the ordinary two-phase
//! method, then keeps the final tableau and basis alive so that columns priced
//! in by an external oracle can be appended and the solver re-optimized from
//! the current (still feasible) basis in a handful of pivots, instead of
//! rebuilding and re-solving from scratch on every pricing round.
//!
//! Appending a column never disturbs the right-hand side, so primal
//! feasibility of the current basis is preserved and phase 1 never has to run
//! again; [`IncrementalSolver::reoptimize`] is pure phase 2. The appended
//! column's representation in the current basis is assembled from the identity
//! columns carried through every pivot (`B^{-1} e_i`), which is exactly the
//! bookkeeping the dual recovery already relies on.

use crate::error::SolveError;
use crate::problem::{Direction, Problem, VarId};
use crate::simplex::{Instance, SolverOptions};
use crate::solution::Solution;

/// A simplex solve that stays warm across appended columns.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use awb_lp::{Direction, IncrementalSolver, Problem, Relation, SolverOptions};
///
/// // max x s.t. x + y <= 4; then price in a better column z with the same
/// // row footprint and a bigger objective.
/// let mut p = Problem::new(Direction::Maximize);
/// let _x = p.add_var("x", 1.0);
/// let y = p.add_var("y", 0.0);
/// p.add_constraint(&[(_x, 1.0), (y, 1.0)], Relation::Le, 4.0)?;
/// let mut inc = IncrementalSolver::new(&p, SolverOptions::default())?;
/// assert!((inc.solution().objective() - 4.0).abs() < 1e-9);
///
/// let z = inc.add_column("z", 2.0, &[(0, 1.0)])?;
/// inc.reoptimize()?;
/// let s = inc.solution();
/// assert!((s.objective() - 8.0).abs() < 1e-9);
/// assert!((s.value(z) - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IncrementalSolver {
    inst: Instance,
    options: SolverOptions,
    direction: Direction,
    names: Vec<String>,
    /// User-direction objective, original + appended.
    objective: Vec<f64>,
}

impl IncrementalSolver {
    /// Solves `problem` to optimality and retains the warm state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Problem::solve`].
    pub fn new(problem: &Problem, options: SolverOptions) -> Result<Self, SolveError> {
        let mut inst = Instance::build(problem, &options);
        inst.phase1(&options)?;
        inst.phase2(&options)?;
        Ok(IncrementalSolver {
            inst,
            options,
            direction: problem.direction(),
            names: problem.var_names().to_vec(),
            objective: problem.objective_coeffs().to_vec(),
        })
    }

    /// Appends a non-negative structural column: `objective` is its objective
    /// coefficient (in the problem's own direction) and `terms` its sparse
    /// coefficients as `(constraint index, coefficient)` pairs over the
    /// *original* constraints. The column enters nonbasic; call
    /// [`IncrementalSolver::reoptimize`] once the pricing round is done.
    ///
    /// # Errors
    ///
    /// [`ProblemError::UnknownConstraint`](crate::ProblemError) for an
    /// out-of-range row, [`ProblemError::DuplicateConstraint`](crate::ProblemError)
    /// for a repeated row, [`ProblemError::NonFiniteCoefficient`](crate::ProblemError)
    /// for NaN/infinite input, and
    /// [`ProblemError::RedundantRowsEliminated`](crate::ProblemError) if phase 1
    /// dropped redundant rows (the append bookkeeping no longer covers them).
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        objective: f64,
        terms: &[(usize, f64)],
    ) -> Result<VarId, SolveError> {
        let index = self.inst.add_column(objective, terms)?;
        debug_assert_eq!(index, self.objective.len());
        self.names.push(name.into());
        self.objective.push(objective);
        Ok(VarId(index))
    }

    /// Re-optimizes from the current basis after columns were appended.
    /// A no-op (zero pivots) when the appended columns price out.
    ///
    /// # Errors
    ///
    /// [`SolveError::Unbounded`] or [`SolveError::IterationLimit`]; the
    /// current basis stays primal-feasible, so infeasibility cannot arise.
    pub fn reoptimize(&mut self) -> Result<(), SolveError> {
        self.inst.phase2(&self.options)
    }

    /// The primal/dual solution at the current basis. Valid after
    /// [`IncrementalSolver::new`] and after every successful
    /// [`IncrementalSolver::reoptimize`].
    pub fn solution(&self) -> Solution {
        self.inst.extract(&self.objective, self.names.clone())
    }

    /// Number of variables (original + appended).
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of original constraints (valid row indices for
    /// [`IncrementalSolver::add_column`]).
    pub fn num_constraints(&self) -> usize {
        self.inst.num_original_rows()
    }

    /// Total simplex pivots across the initial solve and all re-optimizations.
    pub fn pivots(&self) -> usize {
        self.inst.pivots()
    }

    /// The optimization direction of the underlying problem.
    pub fn direction(&self) -> Direction {
        self.direction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ProblemError;
    use crate::problem::{Problem, Relation};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    /// Incremental solve with appended columns must match solving the fully
    /// stated problem from scratch.
    #[test]
    fn appended_columns_match_from_scratch_solve() {
        // max 3a + 5b + 4c s.t. a + b + c <= 10, 2a + b <= 8, b + 3c >= 3.
        let build_full = || {
            let mut p = Problem::new(Direction::Maximize);
            let a = p.add_var("a", 3.0);
            let b = p.add_var("b", 5.0);
            let c = p.add_var("c", 4.0);
            p.add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], Relation::Le, 10.0)
                .unwrap();
            p.add_constraint(&[(a, 2.0), (b, 1.0)], Relation::Le, 8.0)
                .unwrap();
            p.add_constraint(&[(b, 1.0), (c, 3.0)], Relation::Ge, 3.0)
                .unwrap();
            p
        };
        let full = build_full().solve().unwrap();

        // Same problem, but c arrives later as a priced-in column.
        let mut p = Problem::new(Direction::Maximize);
        let a = p.add_var("a", 3.0);
        let b = p.add_var("b", 5.0);
        p.add_constraint(&[(a, 1.0), (b, 1.0)], Relation::Le, 10.0)
            .unwrap();
        p.add_constraint(&[(a, 2.0), (b, 1.0)], Relation::Le, 8.0)
            .unwrap();
        p.add_constraint(&[(b, 1.0)], Relation::Ge, 3.0).unwrap();
        let mut inc = IncrementalSolver::new(&p, SolverOptions::default()).unwrap();
        let c = inc.add_column("c", 4.0, &[(0, 1.0), (2, 3.0)]).unwrap();
        inc.reoptimize().unwrap();
        let s = inc.solution();
        approx(s.objective(), full.objective());
        approx(s.value(c), full.value_by_name("c").unwrap());
        for i in 0..3 {
            approx(s.dual(i), full.dual(i));
        }
    }

    #[test]
    fn column_that_prices_out_leaves_solution_unchanged() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 5.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 3.0).unwrap();
        let mut inc = IncrementalSolver::new(&p, SolverOptions::default()).unwrap();
        let before = inc.solution();
        let pivots_before = inc.pivots();
        // Worse objective per unit of the same resource: never enters.
        let z = inc.add_column("z", 1.0, &[(0, 1.0)]).unwrap();
        inc.reoptimize().unwrap();
        let after = inc.solution();
        approx(after.objective(), before.objective());
        approx(after.value(z), 0.0);
        assert_eq!(inc.pivots(), pivots_before, "no pivots were needed");
    }

    #[test]
    fn appended_column_respects_flipped_rows() {
        // min x s.t. -x <= -3 (flipped to x >= 3 internally); append y with
        // coefficient -1 on the *stated* row, i.e. y also relieves the bound.
        let mut p = Problem::new(Direction::Minimize);
        let x = p.add_var("x", 2.0);
        p.add_constraint(&[(x, -1.0)], Relation::Le, -3.0).unwrap();
        let mut inc = IncrementalSolver::new(&p, SolverOptions::default()).unwrap();
        approx(inc.solution().objective(), 6.0);
        let y = inc.add_column("y", 1.0, &[(0, -1.0)]).unwrap();
        inc.reoptimize().unwrap();
        let s = inc.solution();
        approx(s.objective(), 3.0);
        approx(s.value(y), 3.0);
    }

    #[test]
    fn add_column_validates_rows() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        let mut inc = IncrementalSolver::new(&p, SolverOptions::default()).unwrap();
        assert!(matches!(
            inc.add_column("bad", 1.0, &[(7, 1.0)]),
            Err(SolveError::Problem(ProblemError::UnknownConstraint {
                index: 7,
                declared: 1
            }))
        ));
        assert!(matches!(
            inc.add_column("dup", 1.0, &[(0, 1.0), (0, 2.0)]),
            Err(SolveError::Problem(ProblemError::DuplicateConstraint {
                index: 0
            }))
        ));
        assert!(matches!(
            inc.add_column("nan", f64::NAN, &[(0, 1.0)]),
            Err(SolveError::Problem(ProblemError::NonFiniteCoefficient))
        ));
        // The solver is still usable after rejected appends.
        assert_eq!(inc.num_vars(), 1);
        approx(inc.solution().objective(), 1.0);
    }

    #[test]
    fn add_column_refuses_after_redundant_row_drop() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        let y = p.add_var("y", 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 2.0)
            .unwrap();
        p.add_constraint(&[(x, 2.0), (y, 2.0)], Relation::Eq, 4.0)
            .unwrap();
        let mut inc = IncrementalSolver::new(&p, SolverOptions::default()).unwrap();
        assert!(matches!(
            inc.add_column("z", 1.0, &[(0, 1.0)]),
            Err(SolveError::Problem(ProblemError::RedundantRowsEliminated))
        ));
    }

    #[test]
    fn repeated_appends_stay_consistent() {
        // Start from a single slot and keep pricing in better columns; after
        // each reoptimize the objective equals the best column seen so far.
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x0", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        let mut inc = IncrementalSolver::new(&p, SolverOptions::default()).unwrap();
        for k in 1..6 {
            inc.add_column(format!("x{k}"), 1.0 + k as f64, &[(0, 1.0)])
                .unwrap();
            inc.reoptimize().unwrap();
            approx(inc.solution().objective(), 1.0 + k as f64);
        }
        assert_eq!(inc.num_vars(), 6);
        assert_eq!(inc.num_constraints(), 1);
        assert_eq!(inc.direction(), Direction::Maximize);
    }

    #[test]
    fn infeasible_problem_is_rejected_at_construction() {
        let mut p = Problem::new(Direction::Maximize);
        let x = p.add_var("x", 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 1.0).unwrap();
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(
            IncrementalSolver::new(&p, SolverOptions::default()).unwrap_err(),
            SolveError::Infeasible
        );
    }
}
