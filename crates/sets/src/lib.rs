//! Rate-coupled independent sets and cliques (paper §2.4, §3.1).
//!
//! In a multirate network a concurrent-transmission set is not just a set of
//! links: it is a set of links **coupled with a rate vector** ([`RatedSet`]).
//! This crate enumerates the admissible rated sets of a link universe under
//! any [`awb_net::LinkRateModel`], identifies the *maximal independent sets
//! with maximum supported rates* the feasibility condition (Eq. 4) is built
//! from, and enumerates rate-coupled cliques, including the *local
//! interference cliques* along a path used by the distributed estimators
//! (§4).
//!
//! The enumeration exploits that admissibility is **downward closed** in
//! both models (removing a transmitter can only raise every SINR), which
//! permits aggressive pruning: a partial assignment that is already
//! inadmissible cannot be completed.
//!
//! # Example
//!
//! ```
//! use awb_net::{DeclarativeModel, Topology};
//! use awb_phy::Rate;
//! use awb_sets::{enumerate_admissible, EnumerationOptions};
//!
//! // Two mutually non-interfering links.
//! let mut t = Topology::new();
//! let n: Vec<_> = (0..4).map(|i| t.add_node(i as f64, 0.0)).collect();
//! let l1 = t.add_link(n[0], n[1])?;
//! let l2 = t.add_link(n[2], n[3])?;
//! let r = Rate::from_mbps(54.0);
//! let m = DeclarativeModel::builder(t)
//!     .alone_rates(l1, &[r])
//!     .alone_rates(l2, &[r])
//!     .build();
//! let sets = enumerate_admissible(&m, &[l1, l2], &EnumerationOptions::default());
//! // {L1}, {L2}, {L1, L2} — dominance pruning keeps only {L1, L2}.
//! assert_eq!(sets.len(), 1);
//! assert_eq!(sets[0].len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
mod clique;
mod coloring;
mod compiled;
mod concurrent;
mod engine;
mod enumerate;
mod local;
mod price;

pub use clique::{
    is_clique, is_maximal_clique, is_maximal_clique_with_max_rates, maximal_cliques,
    maximal_rated_cliques, ConflictGraph,
};
pub use coloring::{clique_number, greedy_coloring, tdma_throughput, Coloring};
pub use concurrent::RatedSet;
pub use enumerate::{
    enumerate_admissible, maximal_independent_sets, maximal_independent_sets_with, EngineKind,
    EnumerationOptions,
};
pub use local::{local_cliques, LocalClique};
pub use price::{
    price_component, price_components, MaxWeightOracle, PriceScratch, PricingAnswer, PricingRequest,
};
