//! Local interference cliques along a path (paper §4).

use awb_net::{LinkId, LinkRateModel};
use awb_phy::Rate;

/// A maximal run of consecutive path hops that pairwise conflict — the
/// paper's *local interference clique*: "a clique \[whose\] links are in a
/// sequence on the path".
///
/// `start..=end` are hop indices into the path's link sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalClique {
    /// First hop index (inclusive).
    pub start: usize,
    /// Last hop index (inclusive).
    pub end: usize,
}

impl LocalClique {
    /// Number of hops in the clique.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Always false: a local clique spans at least one hop.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The hop indices covered by this clique.
    pub fn hops(&self) -> impl Iterator<Item = usize> {
        self.start..=self.end
    }
}

/// Finds all maximal local interference cliques of a path whose hops carry
/// the given `(link, rate)` couples (the rates are the links' effective data
/// rates, as used by the distributed estimators).
///
/// A window of consecutive hops is a clique when every pair of couples in it
/// conflicts; maximal windows are those not contained in a longer one. Every
/// hop belongs to at least one local clique (singletons count), matching the
/// construction of Zhai & Fang (ICNP'06) that the paper adopts.
pub fn local_cliques<M: LinkRateModel>(model: &M, hops: &[(LinkId, Rate)]) -> Vec<LocalClique> {
    if hops.is_empty() {
        return Vec::new();
    }
    let n = hops.len();
    // reach[i] = largest j such that hops[i..=j] is a clique.
    let mut reach = vec![0usize; n];
    #[allow(clippy::needless_range_loop)] // i indexes both hops and reach
    for i in 0..n {
        let mut j = i;
        'grow: while j + 1 < n {
            let cand = hops[j + 1];
            for k in i..=j {
                if !model.conflicts(hops[k], cand) {
                    break 'grow;
                }
            }
            j += 1;
        }
        reach[i] = j;
    }
    let mut out = Vec::new();
    let mut best_prev_reach: Option<usize> = None;
    #[allow(clippy::needless_range_loop)] // i indexes reach and names hops
    for i in 0..n {
        // A window is maximal when no earlier window covers it.
        if best_prev_reach.is_none_or(|r| reach[i] > r) {
            out.push(LocalClique {
                start: i,
                end: reach[i],
            });
        }
        best_prev_reach = Some(best_prev_reach.map_or(reach[i], |r| r.max(reach[i])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// A chain path of `n` links where hop `i` conflicts with hops within
    /// `spread` of it.
    fn chain_model(n: usize, spread: usize) -> (DeclarativeModel, Vec<(LinkId, Rate)>) {
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..=n).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| t.add_link(w[0], w[1]).unwrap())
            .collect();
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0)]);
        }
        for i in 0..n {
            for j in (i + 1)..n.min(i + spread + 1) {
                b = b.conflict_all(links[i], links[j]);
            }
        }
        let hops = links.into_iter().map(|l| (l, r(54.0))).collect();
        (b.build(), hops)
    }

    #[test]
    fn no_conflicts_yield_singletons() {
        let (m, hops) = chain_model(4, 0);
        let cs = local_cliques(&m, &hops);
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn adjacent_conflicts_yield_pair_windows() {
        let (m, hops) = chain_model(4, 1);
        let cs = local_cliques(&m, &hops);
        // Windows: [0,1], [1,2], [2,3].
        assert_eq!(cs.len(), 3);
        assert!(cs.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn two_hop_interference_yields_triple_windows() {
        let (m, hops) = chain_model(5, 2);
        let cs = local_cliques(&m, &hops);
        // [0..2], [1..3], [2..4].
        assert_eq!(cs.len(), 3);
        assert!(cs.iter().all(|c| c.len() == 3));
        assert_eq!(cs[0], LocalClique { start: 0, end: 2 });
        assert_eq!(cs[2].hops().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn full_conflict_is_one_window() {
        let (m, hops) = chain_model(4, 4);
        let cs = local_cliques(&m, &hops);
        assert_eq!(cs, vec![LocalClique { start: 0, end: 3 }]);
    }

    #[test]
    fn short_paths() {
        let (m, hops) = chain_model(1, 1);
        assert_eq!(local_cliques(&m, &hops).len(), 1);
        assert!(local_cliques(&m, &[]).is_empty());
    }

    #[test]
    fn contained_windows_are_suppressed() {
        // Conflicts: 0-1, 0-2, 1-2 and 2-3. Windows: [0..2] and [2..3];
        // window starting at 1 reaches 2 and is contained in [0..2].
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..5)
            .map(|i| t.add_node(f64::from(i) * 10.0, 0.0))
            .collect();
        let links: Vec<LinkId> = nodes
            .windows(2)
            .map(|w| t.add_link(w[0], w[1]).unwrap())
            .collect();
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0)]);
        }
        b = b
            .conflict_all(links[0], links[1])
            .conflict_all(links[0], links[2])
            .conflict_all(links[1], links[2])
            .conflict_all(links[2], links[3]);
        let m = b.build();
        let hops: Vec<(LinkId, Rate)> = links.iter().map(|&l| (l, r(54.0))).collect();
        let cs = local_cliques(&m, &hops);
        assert_eq!(
            cs,
            vec![
                LocalClique { start: 0, end: 2 },
                LocalClique { start: 2, end: 3 }
            ]
        );
    }
}
