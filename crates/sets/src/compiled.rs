//! Word-packed compilation of a [`ConflictSnapshot`]: the flat-array model
//! the bitset enumeration engine (see [`crate::engine`]) searches over.
//!
//! A one-time pass turns the snapshot's boolean pair matrix into `u64`
//! bitmask rows, one per couple, so the inner admissibility test of the
//! search becomes an O(words) mask intersection instead of a
//! whole-assignment model callback. The compiled form is plain owned data
//! (`Send + Sync`), which is what lets the engine fan subtrees out across
//! threads without borrowing the model.

use awb_net::{ConflictSnapshot, LinkId};
use awb_phy::Rate;

/// A bitset over couples, `words` words wide.
pub(crate) type Mask = Vec<u64>;

/// The compiled model: couple tables plus per-couple conflict/compatibility
/// mask rows.
#[derive(Debug, Clone)]
pub(crate) struct Compiled {
    /// Words per mask row.
    pub words: usize,
    /// Live links, universe order.
    pub links: Vec<LinkId>,
    /// Descending alone rates per live link.
    pub rates: Vec<Vec<Rate>>,
    /// Couple id → live link index.
    pub couple_link: Vec<usize>,
    /// Couple id → rate.
    pub couple_rate: Vec<Rate>,
    /// Live link index → couple-id range bounds (couples of link `i` are
    /// `offsets[i]..offsets[i + 1]`, rates descending).
    pub offsets: Vec<usize>,
    /// Conflict rows: `conflict[c]` has a bit for every couple that cannot
    /// transmit concurrently with `c`, *including* every couple of `c`'s own
    /// link and `c` itself.
    conflict: Vec<u64>,
    /// Complement rows, restricted to valid couple bits:
    /// `compat[c] = !conflict[c] & universe`.
    compat: Vec<u64>,
    /// Whether the conflict rows are the whole admissibility test.
    pub pairwise_exact: bool,
}

impl Compiled {
    pub(crate) fn new(snap: &ConflictSnapshot) -> Compiled {
        let n = snap.num_couples();
        let num_links = snap.links().len();
        let words = n.div_ceil(64).max(1);
        let links = snap.links().to_vec();
        let rates: Vec<Vec<Rate>> = (0..num_links).map(|i| snap.rates_of(i).to_vec()).collect();
        let mut couple_link = Vec::with_capacity(n);
        let mut couple_rate = Vec::with_capacity(n);
        let mut offsets = vec![0usize];
        for i in 0..num_links {
            for c in snap.couples_of(i) {
                let (link, rate) = snap.couple(c);
                debug_assert_eq!(link, i);
                couple_link.push(link);
                couple_rate.push(rate);
            }
            offsets.push(couple_link.len());
        }
        let mut conflict = vec![0u64; n * words];
        for a in 0..n {
            let row = &mut conflict[a * words..(a + 1) * words];
            set_bit(row, a); // a couple "conflicts" with itself: once chosen,
                             // it leaves the candidate pool.
            for b in 0..n {
                if a != b && snap.conflict(a, b) {
                    set_bit(row, b);
                }
            }
        }
        let mut universe_mask = vec![0u64; words];
        for c in 0..n {
            set_bit(&mut universe_mask, c);
        }
        let mut compat = vec![0u64; n * words];
        for c in 0..n {
            for w in 0..words {
                compat[c * words + w] = !conflict[c * words + w] & universe_mask[w];
            }
        }
        Compiled {
            words,
            links,
            rates,
            couple_link,
            couple_rate,
            offsets,
            conflict,
            compat,
            pairwise_exact: snap.pairwise_exact(),
        }
    }

    /// Number of couples.
    pub(crate) fn num_couples(&self) -> usize {
        self.couple_link.len()
    }

    /// Number of live links.
    pub(crate) fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Conflict row of couple `c`.
    pub(crate) fn conflict_row(&self, c: usize) -> &[u64] {
        &self.conflict[c * self.words..(c + 1) * self.words]
    }

    /// Compatibility row of couple `c` (valid couples only).
    pub(crate) fn compat_row(&self, c: usize) -> &[u64] {
        &self.compat[c * self.words..(c + 1) * self.words]
    }

    /// The lowest-rate couple of live link `i`.
    pub(crate) fn lowest_couple(&self, i: usize) -> usize {
        self.offsets[i + 1] - 1
    }

    /// The couple-id range of live link `i`, rates descending.
    pub(crate) fn couples_of(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// A zeroed mask.
    pub(crate) fn zero_mask(&self) -> Mask {
        vec![0u64; self.words]
    }

    /// Whether couple `c` is compatible with every couple in `chosen`.
    pub(crate) fn compatible_with(&self, c: usize, chosen: &[u64]) -> bool {
        disjoint(self.conflict_row(c), chosen)
    }
}

// The bit primitives live in the public [`crate::bitset`] module (they are
// shared with the compiled MAC-simulator kernels in `awb-sim`); re-export
// them under the old crate-private paths so the engine/pricing internals
// keep reading naturally.
pub(crate) use crate::bitset::{
    and_count, and_into, clear_bit, disjoint, is_empty, iter_bits, set_bit, test_bit,
};

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, LinkRateModel, Topology};

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    #[test]
    fn masks_mirror_the_snapshot() {
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
        let l0 = t.add_link(n[0], n[1]).unwrap();
        let l1 = t.add_link(n[2], n[3]).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(l0, &[r(54.0), r(36.0)])
            .alone_rates(l1, &[r(54.0), r(36.0)])
            .conflict_at(l0, r(54.0), l1, r(54.0))
            .build();
        let c = Compiled::new(&m.conflict_snapshot(&[l0, l1]));
        assert_eq!(c.num_couples(), 4);
        assert_eq!(c.num_links(), 2);
        assert!(c.pairwise_exact);
        // Couple 0 = (l0, 54): conflicts with itself, its sibling rate, and
        // (l1, 54) = couple 2.
        assert_eq!(c.conflict_row(0)[0], 0b0111);
        assert_eq!(c.compat_row(0)[0], 0b1000);
        // Couple 1 = (l0, 36) is compatible with both rates of l1.
        assert_eq!(c.compat_row(1)[0], 0b1100);
        assert_eq!(c.lowest_couple(0), 1);
        let mut mask = c.zero_mask();
        set_bit(&mut mask, 2);
        assert!(!c.compatible_with(0, &mask));
        assert!(c.compatible_with(1, &mask));
        assert_eq!(iter_bits(&mask).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn bit_helpers_roundtrip() {
        let mut m = vec![0u64; 2];
        set_bit(&mut m, 3);
        set_bit(&mut m, 70);
        assert!(test_bit(&m, 3) && test_bit(&m, 70));
        assert_eq!(iter_bits(&m).collect::<Vec<_>>(), vec![3, 70]);
        assert_eq!(and_count(&m, &m), 2);
        let mut out = vec![0u64; 2];
        assert_eq!(and_into(&m, &m, &mut out), 2);
        clear_bit(&mut m, 3);
        assert!(!test_bit(&m, 3));
        assert!(!is_empty(&m));
        clear_bit(&mut m, 70);
        assert!(is_empty(&m));
        assert!(disjoint(&m, &out));
    }
}
