//! Sets of links coupled with rate vectors.

use awb_net::LinkId;
use awb_phy::Rate;
use std::fmt;

/// A set of links coupled with a transmission rate per link — the object the
/// paper's independent sets (§2.4) and cliques (§3.1) both are.
///
/// Couples are stored sorted by link id, so two `RatedSet`s with equal
/// contents compare equal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RatedSet {
    couples: Vec<(LinkId, Rate)>,
}

impl RatedSet {
    /// Creates a set from couples (any order).
    ///
    /// # Panics
    ///
    /// Panics if a link appears twice or a rate is zero.
    pub fn new(mut couples: Vec<(LinkId, Rate)>) -> RatedSet {
        couples.sort_by_key(|&(l, _)| l);
        for w in couples.windows(2) {
            assert!(w[0].0 != w[1].0, "link {} appears twice", w[0].0);
        }
        assert!(
            couples.iter().all(|(_, r)| !r.is_zero()),
            "rated sets contain non-zero rates only"
        );
        RatedSet { couples }
    }

    /// The empty set.
    pub fn empty() -> RatedSet {
        RatedSet::default()
    }

    /// Couples sorted by link id.
    pub fn couples(&self) -> &[(LinkId, Rate)] {
        &self.couples
    }

    /// The links of the set, sorted.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.couples.iter().map(|&(l, _)| l)
    }

    /// The rate of `link` in this set, if present.
    pub fn rate_of(&self, link: LinkId) -> Option<Rate> {
        self.couples
            .binary_search_by_key(&link, |&(l, _)| l)
            .ok()
            .map(|i| self.couples[i].1)
    }

    /// Whether `link` is in the set.
    pub fn contains(&self, link: LinkId) -> bool {
        self.rate_of(link).is_some()
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.couples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.couples.is_empty()
    }

    /// Returns a new set with `link` added at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is already present or `rate` is zero.
    pub fn with(&self, link: LinkId, rate: Rate) -> RatedSet {
        let mut couples = self.couples.clone();
        couples.push((link, rate));
        RatedSet::new(couples)
    }

    /// Returns a new set with `link`'s rate replaced.
    ///
    /// # Panics
    ///
    /// Panics if `link` is absent or `rate` is zero.
    pub fn with_rate(&self, link: LinkId, rate: Rate) -> RatedSet {
        assert!(!rate.is_zero(), "rated sets contain non-zero rates only");
        let mut couples = self.couples.clone();
        let i = couples
            .binary_search_by_key(&link, |&(l, _)| l)
            // awb-audit: allow(no-panic-in-lib) — documented `# Panics` contract of with_rate
            .unwrap_or_else(|_| panic!("link {link} not in set"));
        couples[i].1 = rate;
        RatedSet { couples }
    }

    /// Returns a new set without `link` (no-op if absent).
    pub fn without(&self, link: LinkId) -> RatedSet {
        RatedSet {
            couples: self
                .couples
                .iter()
                .copied()
                .filter(|&(l, _)| l != link)
                .collect(),
        }
    }

    /// The throughput vector of this set over a link `universe`: entry `i`
    /// is the rate of `universe[i]` in Mbps, or 0 if absent. This is the
    /// `R_i^*` column of the feasibility LP (Eq. 4/Eq. 6).
    pub fn throughput_vector(&self, universe: &[LinkId]) -> Vec<f64> {
        universe
            .iter()
            .map(|&l| self.rate_of(l).map_or(0.0, Rate::as_mbps))
            .collect()
    }

    /// Whether `self` dominates `other`: every couple of `other` appears in
    /// `self` with an equal or higher rate. A dominated set contributes
    /// nothing to the feasibility LP (its column is componentwise ≤).
    pub fn dominates(&self, other: &RatedSet) -> bool {
        other
            .couples
            .iter()
            .all(|&(l, r)| self.rate_of(l).is_some_and(|mine| mine >= r))
    }
}

impl fmt::Display for RatedSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (l, r)) in self.couples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({l}, {r})")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(LinkId, Rate)> for RatedSet {
    fn from_iter<T: IntoIterator<Item = (LinkId, Rate)>>(iter: T) -> Self {
        RatedSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> LinkId {
        LinkId::from_index(i)
    }

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    #[test]
    fn construction_sorts_and_orders_do_not_matter() {
        let a = RatedSet::new(vec![(l(2), r(54.0)), (l(0), r(36.0))]);
        let b = RatedSet::new(vec![(l(0), r(36.0)), (l(2), r(54.0))]);
        assert_eq!(a, b);
        assert_eq!(a.rate_of(l(0)), Some(r(36.0)));
        assert_eq!(a.rate_of(l(1)), None);
        assert!(a.contains(l(2)));
    }

    #[test]
    fn with_and_without() {
        let s = RatedSet::empty().with(l(1), r(54.0)).with(l(3), r(6.0));
        assert_eq!(s.len(), 2);
        let t = s.without(l(1));
        assert_eq!(t.len(), 1);
        assert!(!t.contains(l(1)));
        // Removing an absent link is a no-op.
        assert_eq!(t.without(l(9)), t);
    }

    #[test]
    fn with_rate_replaces() {
        let s = RatedSet::empty().with(l(0), r(36.0));
        let t = s.with_rate(l(0), r(54.0));
        assert_eq!(t.rate_of(l(0)), Some(r(54.0)));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_links_panic() {
        let _ = RatedSet::new(vec![(l(0), r(1.0)), (l(0), r(2.0))]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rates_panic() {
        let _ = RatedSet::new(vec![(l(0), Rate::ZERO)]);
    }

    #[test]
    fn throughput_vector_respects_universe_order() {
        let s = RatedSet::new(vec![(l(0), r(36.0)), (l(3), r(54.0))]);
        assert_eq!(
            s.throughput_vector(&[l(3), l(1), l(0)]),
            vec![54.0, 0.0, 36.0]
        );
    }

    #[test]
    fn dominance_on_same_links() {
        let lo = RatedSet::new(vec![(l(0), r(36.0)), (l(1), r(54.0))]);
        let hi = RatedSet::new(vec![(l(0), r(54.0)), (l(1), r(54.0))]);
        assert!(hi.dominates(&lo));
        assert!(!lo.dominates(&hi));
        assert!(hi.dominates(&hi));
    }

    #[test]
    fn dominance_with_extra_links() {
        let small = RatedSet::new(vec![(l(0), r(36.0))]);
        let big = RatedSet::new(vec![(l(0), r(36.0)), (l(1), r(6.0))]);
        assert!(big.dominates(&small));
        assert!(!small.dominates(&big));
        // Incomparable when rates cross.
        let crossed = RatedSet::new(vec![(l(0), r(54.0))]);
        assert!(!crossed.dominates(&big));
        assert!(!big.dominates(&crossed));
    }

    #[test]
    fn display_lists_couples() {
        let s = RatedSet::new(vec![(l(0), r(36.0)), (l(1), r(54.0))]);
        assert_eq!(s.to_string(), "{(L0, 36 Mbps), (L1, 54 Mbps)}");
        assert_eq!(RatedSet::empty().to_string(), "{}");
    }

    #[test]
    fn from_iterator_collects() {
        let s: RatedSet = vec![(l(1), r(6.0)), (l(0), r(18.0))].into_iter().collect();
        assert_eq!(s.links().collect::<Vec<_>>(), vec![l(0), l(1)]);
    }
}
