//! Maximum-weight rated-set pricing oracles for column generation.
//!
//! Given non-negative per-link weights `w_e` (the link duals of a restricted
//! master LP), [`MaxWeightOracle`] finds the admissible rated set `S`
//! maximizing `sum_{e in S} w_e * R_S[e]` — the most violated column of the
//! Eq. 6 scheduling LP — by branch and bound over the compiled `u64` conflict
//! bitmasks of [`crate::enumerate`]'s bitset engine, instead of enumerating
//! the exponential admissible pool.
//!
//! Three search modes cover the model taxonomy:
//!
//! - **exact** (pairwise-exact models, e.g. declarative conflict tables):
//!   branches over (link, rate) couples; the mask intersection *is* the
//!   admissibility test. The search carries an incremental candidate mask per
//!   branch level (`cand_child = cand ∩ compat(couple)`), so membership tests
//!   are O(1) bit probes and a *residual* upper bound — each remaining link's
//!   best **surviving** couple instead of its best-case alone rate — prunes
//!   subtrees the static suffix bound cannot.
//! - **rate-independent** (e.g. SINR models, where membership decides
//!   admissibility and each member's rate is then lifted): branches over
//!   membership with the lowest-rate couple masks as a sound prefilter, then
//!   confirms joint admissibility through the model and values the node by
//!   lifting every member to its maximum supported rate.
//! - **generic** (neither property): branches over couples with the mask
//!   prefilter, confirming every extension through the model.
//!
//! All three are exact searches: bounds only discard subtrees that cannot
//! strictly improve the incumbent, so the returned set (first best found,
//! links in descending-potential order) is independent of how aggressively
//! they fire. A cheap **greedy + local-search heuristic**
//! ([`MaxWeightOracle::heuristic_max_weight_set_with`]) produces good — not
//! certified — columns in near-linear time; column generation runs it first
//! and falls back to the exact search only when the heuristic column fails
//! the reduced-cost test, which is what [`price_component`] packages.
//!
//! Pricing is a per-conflict-component problem, so [`price_components`] fans
//! the per-component oracle calls out across threads with the deterministic
//! chunked-merge discipline of the enumeration engine: answers are returned
//! in component order and are bit-identical for any thread count.

use crate::compiled::{and_into, clear_bit, set_bit, test_bit, Compiled};
use crate::concurrent::RatedSet;
use crate::engine::lift_to_max;
use awb_net::{LinkId, LinkRateModel};
use awb_phy::Rate;

/// Weights below this are treated as zero: their links can never improve the
/// objective and are excluded from the search.
const WEIGHT_EPS: f64 = 1e-12;

/// Improvement margin for replacing the incumbent (keeps tie-breaking
/// deterministic: the first best found wins).
const VALUE_EPS: f64 = 1e-12;

/// Bounded number of local-search improvement sweeps in the heuristic.
const HEUR_PASSES: usize = 3;

/// Deterministic destroy-and-repair perturbations of the exact-mode
/// heuristic after its two greedy starts. Each removes one member, bans it
/// for the repair, and re-runs greedy + local search; the best set over all
/// starts wins.
const HEUR_RESTARTS: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Exact,
    RateIndependent,
    Generic,
}

/// Reusable working memory for one oracle's pricing rounds.
///
/// A column-generation loop prices the same compiled component hundreds of
/// times with fresh weights; every buffer the search needs lives here so the
/// steady state allocates nothing. Obtain one per oracle via
/// [`MaxWeightOracle::new_scratch`] and pass it to the `_with` entry points.
/// Contents are fully overwritten by each call — reuse never changes answers.
#[derive(Debug, Clone, Default)]
pub struct PriceScratch {
    /// Per live link: best-case contribution (weight × max alone rate).
    potential: Vec<f64>,
    /// Per couple: its contribution (weight of its link × its rate).
    contrib: Vec<f64>,
    /// Live links with usable weight, descending potential.
    order: Vec<usize>,
    /// Alternate greedy order (potential discounted by conflict degree).
    order_alt: Vec<usize>,
    /// Per live link: score backing `order_alt`.
    score: Vec<f64>,
    /// Best couple set seen across heuristic restarts.
    best_couples: Vec<usize>,
    /// `suffix[k]` = best-case contribution of `order[k..]`.
    suffix: Vec<f64>,
    /// Level-indexed candidate-mask stack for the exact search.
    cand: Vec<u64>,
    /// Chosen-couple mask for the model-confirmed searches and heuristics.
    chosen: Vec<u64>,
    /// Chosen live link indices, in choice order.
    members: Vec<usize>,
    /// Chosen couple ids, parallel to `members` (heuristic bookkeeping).
    member_couples: Vec<usize>,
    /// Chosen couples as a model assignment, parallel to `members`.
    assignment: Vec<(LinkId, Rate)>,
}

/// A reusable branch-and-bound maximum-weight rated-set searcher over one
/// `(model, universe)` pair.
///
/// Construction compiles the model's conflict snapshot once (the same
/// word-packed form the enumeration engine uses); each
/// [`MaxWeightOracle::max_weight_set`] call then runs a fresh search against
/// new weights, which is what a column-generation loop needs — one compile,
/// many pricing rounds.
#[derive(Debug, Clone)]
pub struct MaxWeightOracle {
    c: Compiled,
    mode: Mode,
}

impl MaxWeightOracle {
    /// Compiles the oracle for `model` over `universe`. Dead links (no alone
    /// rates) are excluded; the remaining live links, in universe order, are
    /// exposed through [`MaxWeightOracle::links`] and index the weight
    /// vector.
    pub fn new<M: LinkRateModel + ?Sized>(model: &M, universe: &[LinkId]) -> MaxWeightOracle {
        let c = Compiled::new(&model.conflict_snapshot(universe));
        let mode = if model.pairwise_admissibility_exact() {
            Mode::Exact
        } else if model.rate_independent_interference() {
            Mode::RateIndependent
        } else {
            Mode::Generic
        };
        MaxWeightOracle { c, mode }
    }

    /// The live links this oracle searches over, in universe order. Weight
    /// vectors passed to [`MaxWeightOracle::max_weight_set`] are indexed by
    /// position in this slice.
    pub fn links(&self) -> &[LinkId] {
        &self.c.links
    }

    /// Allocates a scratch arena sized for this oracle, for reuse across
    /// pricing rounds via the `_with` entry points.
    pub fn new_scratch(&self) -> PriceScratch {
        let n = self.c.num_links();
        let couples = self.c.num_couples();
        let words = self.c.words;
        PriceScratch {
            potential: Vec::with_capacity(n),
            contrib: Vec::with_capacity(couples),
            order: Vec::with_capacity(n),
            order_alt: Vec::with_capacity(n),
            score: Vec::with_capacity(n),
            best_couples: Vec::with_capacity(n),
            suffix: Vec::with_capacity(n + 1),
            cand: Vec::with_capacity((n + 1) * words),
            chosen: vec![0; words],
            members: Vec::with_capacity(n),
            member_couples: Vec::with_capacity(n),
            assignment: Vec::with_capacity(n),
        }
    }

    /// The canonical value of `set` under `weights`: couples in link order,
    /// each contributing `w_link * rate` (negative weights clamped to zero).
    /// Both the heuristic and the exact oracle's answers are re-valued with
    /// this one rule before the reduced-cost test, so the accept decision
    /// never depends on which search produced the column.
    pub fn set_value(&self, weights: &[f64], set: &RatedSet) -> f64 {
        set.couples()
            .iter()
            .map(|&(l, r)| {
                self.c
                    .links
                    .iter()
                    .position(|&cl| cl == l)
                    .map_or(0.0, |i| weights[i].max(0.0) * r.as_mbps())
            })
            .sum()
    }

    /// Finds an admissible rated set maximizing `sum w_i * rate_i` over the
    /// live links, together with its weight. Returns `None` when no set has
    /// positive weight (all weights effectively zero, or no live links).
    ///
    /// `model` must be the model the oracle was compiled from; weights must
    /// be finite and are clamped at zero from below (negative or NaN weights
    /// exclude their links — an admissible set never benefits from them,
    /// since dropping a link keeps the set admissible).
    ///
    /// Allocates a fresh scratch; loops should hold a [`PriceScratch`] and
    /// call [`MaxWeightOracle::max_weight_set_with`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.links().len()`.
    pub fn max_weight_set<M: LinkRateModel + ?Sized>(
        &self,
        model: &M,
        weights: &[f64],
    ) -> Option<(RatedSet, f64)> {
        let mut scratch = self.new_scratch();
        self.max_weight_set_with(model, weights, &mut scratch)
    }

    /// [`MaxWeightOracle::max_weight_set`] against caller-owned scratch
    /// buffers: the allocation-free form for pricing loops.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.links().len()`.
    pub fn max_weight_set_with<M: LinkRateModel + ?Sized>(
        &self,
        model: &M,
        weights: &[f64],
        scratch: &mut PriceScratch,
    ) -> Option<(RatedSet, f64)> {
        if !self.prepare(weights, scratch) {
            return None;
        }
        match self.mode {
            Mode::Exact => {
                let words = self.c.words;
                let levels = scratch.order.len() + 1;
                scratch.cand.clear();
                scratch.cand.resize(levels * words, 0);
                for &i in &scratch.order {
                    for couple in self.c.couples_of(i) {
                        set_bit(&mut scratch.cand[..words], couple);
                    }
                }
                scratch.assignment.clear();
                let mut search = ExactSearch {
                    c: &self.c,
                    order: &scratch.order,
                    suffix: &scratch.suffix,
                    contrib: &scratch.contrib,
                    cand: &mut scratch.cand,
                    assignment: &mut scratch.assignment,
                    best: None,
                    words,
                };
                search.run(0, 0, 0.0);
                search.best
            }
            Mode::RateIndependent | Mode::Generic => {
                scratch.chosen.fill(0);
                scratch.members.clear();
                scratch.assignment.clear();
                let mut search = ModelSearch {
                    c: &self.c,
                    model,
                    weights,
                    order: &scratch.order,
                    suffix: &scratch.suffix,
                    contrib: &scratch.contrib,
                    chosen: &mut scratch.chosen,
                    members: &mut scratch.members,
                    assignment: &mut scratch.assignment,
                    best: None,
                };
                if self.mode == Mode::RateIndependent {
                    search.rate_independent(0, 0.0);
                } else {
                    search.generic(0, 0.0);
                }
                search.best
            }
        }
    }

    /// A cheap greedy + bounded-local-search column constructor: near-linear
    /// time, no optimality certificate. Returns an admissible rated set and
    /// its value under `weights`, or `None` when no link has usable weight.
    ///
    /// For pairwise-exact models the greedy insertion (descending
    /// `w * best_rate` over the compiled masks) is followed by up to
    /// [`HEUR_PASSES`] improvement sweeps, each trying to insert a couple and
    /// evict everything that conflicts with it — this subsumes 1-swap,
    /// 2-swap and rate-raise moves, and leaves the set maximal. The
    /// model-confirmed modes (SINR, generic) do the greedy pass only, with
    /// the model confirming each insertion (and rate lifting for
    /// rate-independent models).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.links().len()`.
    pub fn heuristic_max_weight_set_with<M: LinkRateModel + ?Sized>(
        &self,
        model: &M,
        weights: &[f64],
        scratch: &mut PriceScratch,
    ) -> Option<(RatedSet, f64)> {
        if !self.prepare(weights, scratch) {
            return None;
        }
        match self.mode {
            Mode::Exact => self.heuristic_exact(scratch),
            Mode::RateIndependent => self.heuristic_rate_independent(model, weights, scratch),
            Mode::Generic => self.heuristic_generic(model, scratch),
        }
    }

    /// Fills `potential`/`contrib`/`order`/`suffix` from `weights`. Returns
    /// `false` when no link has usable weight (search would be empty).
    fn prepare(&self, weights: &[f64], s: &mut PriceScratch) -> bool {
        assert_eq!(
            weights.len(),
            self.c.num_links(),
            "one weight per live link"
        );
        let n = self.c.num_links();
        s.potential.clear();
        for (i, &w) in weights.iter().enumerate() {
            s.potential.push(if w > WEIGHT_EPS {
                w * self.c.rates[i][0].as_mbps()
            } else {
                0.0
            });
        }
        s.contrib.clear();
        for couple in 0..self.c.num_couples() {
            let i = self.c.couple_link[couple];
            s.contrib.push(if s.potential[i] > 0.0 {
                weights[i] * self.c.couple_rate[couple].as_mbps()
            } else {
                0.0
            });
        }
        // Search order: links with usable weight, by descending best-case
        // contribution (weight x max alone rate), ties by universe position.
        let potential = &s.potential;
        s.order.clear();
        s.order.extend((0..n).filter(|&i| potential[i] > 0.0));
        s.order
            .sort_by(|&a, &b| potential[b].total_cmp(&potential[a]).then(a.cmp(&b)));
        if s.order.is_empty() {
            return false;
        }
        s.suffix.clear();
        s.suffix.resize(s.order.len() + 1, 0.0);
        for k in (0..s.order.len()).rev() {
            s.suffix[k] = s.suffix[k + 1] + s.potential[s.order[k]];
        }
        true
    }

    /// Multi-start greedy + eviction local search over the compiled masks
    /// (pairwise-exact models only: the masks decide admissibility).
    ///
    /// Two deterministic greedy starts — descending potential, and potential
    /// discounted by conflict degree (the classic weight/degree independent-
    /// set order) — are each polished by the eviction local search, then
    /// [`HEUR_RESTARTS`] destroy-and-repair perturbations kick the best set
    /// out of its local optimum: remove one member, ban it during the
    /// repair, refill greedily and re-polish. Everything is a pure function
    /// of `(masks, weights)`, so answers stay deterministic.
    fn heuristic_exact(&self, s: &mut PriceScratch) -> Option<(RatedSet, f64)> {
        // Start 1: greedy by descending potential.
        s.chosen.fill(0);
        s.members.clear();
        s.member_couples.clear();
        self.heur_fill(s, false, usize::MAX);
        self.heur_local_search(s, usize::MAX);
        let mut best_value = heur_value(s);
        s.best_couples.clear();
        s.best_couples.extend_from_slice(&s.member_couples);

        // Start 2: greedy by potential discounted by conflict degree, which
        // favours links that block little else and often lands on maximal
        // sets the pure-weight order walks past.
        s.score.clear();
        for i in 0..self.c.num_links() {
            let score = if s.potential[i] > 0.0 {
                let best = self.c.couples_of(i).start;
                let deg: u32 = self
                    .c
                    .conflict_row(best)
                    .iter()
                    .map(|w| w.count_ones())
                    .sum();
                s.potential[i] / (1.0 + f64::from(deg))
            } else {
                0.0
            };
            s.score.push(score);
        }
        s.order_alt.clear();
        s.order_alt.extend_from_slice(&s.order);
        let score = &s.score;
        s.order_alt
            .sort_by(|&a, &b| score[b].total_cmp(&score[a]).then(a.cmp(&b)));
        s.chosen.fill(0);
        s.members.clear();
        s.member_couples.clear();
        self.heur_fill(s, true, usize::MAX);
        self.heur_local_search(s, usize::MAX);
        let value = heur_value(s);
        if value > best_value + VALUE_EPS {
            best_value = value;
            s.best_couples.clear();
            s.best_couples.extend_from_slice(&s.member_couples);
        }

        // Iterated local search: perturb the incumbent by evicting one
        // member (rotating through positions across restarts), repair with
        // that link banned, and keep the result only when it strictly wins.
        for r in 0..HEUR_RESTARTS {
            if s.best_couples.len() <= 1 {
                break;
            }
            s.chosen.fill(0);
            s.members.clear();
            s.member_couples.clear();
            for idx in 0..s.best_couples.len() {
                let couple = s.best_couples[idx];
                set_bit(&mut s.chosen, couple);
                s.members.push(self.c.couple_link[couple]);
                s.member_couples.push(couple);
            }
            let victim = r % s.members.len();
            let banned = s.members.remove(victim);
            let evicted = s.member_couples.remove(victim);
            clear_bit(&mut s.chosen, evicted);
            self.heur_fill(s, false, banned);
            self.heur_local_search(s, banned);
            let value = heur_value(s);
            if value > best_value + VALUE_EPS {
                best_value = value;
                s.best_couples.clear();
                s.best_couples.extend_from_slice(&s.member_couples);
            }
        }

        if s.best_couples.is_empty() {
            return None;
        }
        let set = RatedSet::new(
            s.best_couples
                .iter()
                .map(|&c| (self.c.links[self.c.couple_link[c]], self.c.couple_rate[c]))
                // awb-audit: allow(hot-path-alloc) — the winning column is
                // materialized once per heuristic call, on success only.
                .collect(),
        );
        Some((set, best_value))
    }

    /// Greedy completion of the current partial set: first compatible
    /// (= highest-rate compatible) couple per link, links in `order` (or
    /// `order_alt`), skipping `banned`. Member links are skipped implicitly —
    /// conflict rows cover a link's own couples.
    fn heur_fill(&self, s: &mut PriceScratch, alt_order: bool, banned: usize) {
        for k in 0..s.order.len() {
            let i = if alt_order {
                s.order_alt[k]
            } else {
                s.order[k]
            };
            if i == banned {
                continue;
            }
            for couple in self.c.couples_of(i) {
                if self.c.compatible_with(couple, &s.chosen) {
                    set_bit(&mut s.chosen, couple);
                    s.members.push(i);
                    s.member_couples.push(couple);
                    break;
                }
            }
        }
    }

    /// Improvement sweeps over the current set: try to insert each couple,
    /// evicting everything that conflicts with it; apply when the trade
    /// strictly gains. An insertion with nothing to evict is the plain
    /// greedy completion, so the set stays maximal at a local optimum.
    fn heur_local_search(&self, s: &mut PriceScratch, banned: usize) {
        for _ in 0..HEUR_PASSES {
            let mut improved = false;
            for k in 0..s.order.len() {
                let i = s.order[k];
                if i == banned {
                    continue;
                }
                let current = s
                    .members
                    .iter()
                    .position(|&m| m == i)
                    .map(|p| s.member_couples[p]);
                for couple in self.c.couples_of(i) {
                    // Couples are rates-descending: at the current couple the
                    // remaining ones only lower this link's contribution
                    // while evicting at least as much, so stop.
                    if current == Some(couple) {
                        break;
                    }
                    let row = self.c.conflict_row(couple);
                    let mut evicted = 0.0;
                    for &mc in s.member_couples.iter() {
                        if test_bit(row, mc) {
                            evicted += s.contrib[mc];
                        }
                    }
                    if s.contrib[couple] - evicted > VALUE_EPS {
                        let mut idx = 0;
                        while idx < s.members.len() {
                            if test_bit(row, s.member_couples[idx]) {
                                clear_bit(&mut s.chosen, s.member_couples[idx]);
                                s.members.remove(idx);
                                s.member_couples.remove(idx);
                            } else {
                                idx += 1;
                            }
                        }
                        set_bit(&mut s.chosen, couple);
                        s.members.push(i);
                        s.member_couples.push(couple);
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }

    /// Greedy membership at the lowest-rate couples with model confirmation,
    /// then a single lift of every member to its maximum supported rate.
    fn heuristic_rate_independent<M: LinkRateModel + ?Sized>(
        &self,
        model: &M,
        weights: &[f64],
        s: &mut PriceScratch,
    ) -> Option<(RatedSet, f64)> {
        s.chosen.fill(0);
        s.members.clear();
        s.assignment.clear();
        for k in 0..s.order.len() {
            let i = s.order[k];
            let low = self.c.lowest_couple(i);
            if !self.c.compatible_with(low, &s.chosen) {
                continue;
            }
            s.assignment
                .push((self.c.links[i], self.c.couple_rate[low]));
            s.members.push(i);
            if model.admissible(&s.assignment) {
                set_bit(&mut s.chosen, low);
            } else {
                s.assignment.pop();
                s.members.pop();
            }
        }
        if s.members.is_empty() {
            return None;
        }
        let lifted = lift_to_max(model, &self.c, &s.members, &s.assignment);
        let value = lifted
            .couples()
            .iter()
            .map(|&(l, r)| {
                self.c
                    .links
                    .iter()
                    .position(|&cl| cl == l)
                    .map_or(0.0, |i| weights[i].max(0.0) * r.as_mbps())
            })
            .sum();
        Some((lifted, value))
    }

    /// Greedy couples with model confirmation (no local search: every probe
    /// costs a whole-assignment model callback).
    fn heuristic_generic<M: LinkRateModel + ?Sized>(
        &self,
        model: &M,
        s: &mut PriceScratch,
    ) -> Option<(RatedSet, f64)> {
        s.chosen.fill(0);
        s.member_couples.clear();
        s.assignment.clear();
        for k in 0..s.order.len() {
            let i = s.order[k];
            for couple in self.c.couples_of(i) {
                if !self.c.compatible_with(couple, &s.chosen) {
                    continue;
                }
                s.assignment
                    .push((self.c.links[i], self.c.couple_rate[couple]));
                if model.admissible(&s.assignment) {
                    set_bit(&mut s.chosen, couple);
                    s.member_couples.push(couple);
                    break;
                }
                s.assignment.pop();
            }
        }
        if s.member_couples.is_empty() {
            return None;
        }
        let value: f64 = s.member_couples.iter().map(|&c| s.contrib[c]).sum();
        // awb-audit: allow(hot-path-alloc) — one column copy per successful
        // heuristic call; the scratch assignment is reused across calls.
        Some((RatedSet::new(s.assignment.clone()), value))
    }
}

/// Value of the heuristic's current member couples under the prepared
/// contributions.
fn heur_value(s: &PriceScratch) -> f64 {
    s.member_couples.iter().map(|&c| s.contrib[c]).sum()
}

/// Branch and bound for pairwise-exact models. Carries a level-indexed stack
/// of candidate masks: `cand[level]` holds every couple compatible with all
/// chosen couples, so the include test is one bit probe and the residual
/// bound sums each remaining link's best *surviving* couple.
struct ExactSearch<'a> {
    c: &'a Compiled,
    order: &'a [usize],
    suffix: &'a [f64],
    contrib: &'a [f64],
    cand: &'a mut [u64],
    assignment: &'a mut Vec<(LinkId, Rate)>,
    best: Option<(RatedSet, f64)>,
    words: usize,
}

impl ExactSearch<'_> {
    fn best_value(&self) -> f64 {
        self.best.as_ref().map_or(0.0, |&(_, v)| v)
    }

    /// Installs the current assignment as the incumbent if it improves;
    /// the `RatedSet` is only materialized on improvement.
    fn offer(&mut self, value: f64) {
        if value > self.best_value() + VALUE_EPS {
            // awb-audit: allow(hot-path-alloc) — incumbent copied only on
            // strict improvement (see the doc comment above).
            self.best = Some((RatedSet::new(self.assignment.clone()), value));
        }
    }

    /// Whether some extension of this node can still beat the incumbent:
    /// adds each remaining link's best surviving couple (candidates are
    /// rates-descending, so the first surviving bit is the best) and early
    /// exits once the bound clears the incumbent. Sound because any
    /// extension picks at most one surviving couple per remaining link.
    fn residual_improves(&self, pos: usize, level: usize, value: f64) -> bool {
        let target = self.best_value() + VALUE_EPS;
        if value + self.suffix[pos] <= target {
            return false;
        }
        let cand = &self.cand[level * self.words..(level + 1) * self.words];
        let mut acc = value;
        for &i in &self.order[pos..] {
            for couple in self.c.couples_of(i) {
                if test_bit(cand, couple) {
                    acc += self.contrib[couple];
                    break;
                }
            }
            if acc > target {
                return true;
            }
        }
        false
    }

    fn run(&mut self, pos: usize, level: usize, value: f64) {
        if pos == self.order.len() || !self.residual_improves(pos, level, value) {
            return;
        }
        let w = self.words;
        let i = self.order[pos];
        for couple in self.c.couples_of(i) {
            if !test_bit(&self.cand[level * w..(level + 1) * w], couple) {
                continue;
            }
            let gain = self.contrib[couple];
            self.assignment
                .push((self.c.links[i], self.c.couple_rate[couple]));
            let (lo, hi) = self.cand.split_at_mut((level + 1) * w);
            and_into(&lo[level * w..], self.c.compat_row(couple), &mut hi[..w]);
            self.offer(value + gain);
            self.run(pos + 1, level + 1, value + gain);
            self.assignment.pop();
        }
        self.run(pos + 1, level, value);
    }
}

/// Branch and bound for the model-confirmed modes (rate-independent and
/// generic), mirroring the exact search but with the chosen-couple mask as a
/// sound prefilter and the model as the final judge.
struct ModelSearch<'a, M: LinkRateModel + ?Sized> {
    c: &'a Compiled,
    model: &'a M,
    weights: &'a [f64],
    order: &'a [usize],
    suffix: &'a [f64],
    contrib: &'a [f64],
    chosen: &'a mut [u64],
    members: &'a mut Vec<usize>,
    assignment: &'a mut Vec<(LinkId, Rate)>,
    best: Option<(RatedSet, f64)>,
}

impl<M: LinkRateModel + ?Sized> ModelSearch<'_, M> {
    fn best_value(&self) -> f64 {
        self.best.as_ref().map_or(0.0, |&(_, v)| v)
    }

    fn offer_set(&mut self, set: &RatedSet, value: f64) {
        if value > self.best_value() + VALUE_EPS {
            // awb-audit: allow(hot-path-alloc) — incumbent copied only on
            // strict improvement.
            self.best = Some((set.clone(), value));
        }
    }

    fn offer_assignment(&mut self, value: f64) {
        if value > self.best_value() + VALUE_EPS {
            // awb-audit: allow(hot-path-alloc) — incumbent copied only on
            // strict improvement.
            self.best = Some((RatedSet::new(self.assignment.clone()), value));
        }
    }

    /// Rate-independent models: membership decides admissibility; the chosen
    /// links' lowest-rate couple masks prefilter, the model confirms, and the
    /// node is valued by lifting every member to its maximum supported rate.
    fn rate_independent(&mut self, pos: usize, value: f64) {
        if pos == self.order.len() || value + self.suffix[pos] <= self.best_value() + VALUE_EPS {
            return;
        }
        let i = self.order[pos];
        let low = self.c.lowest_couple(i);
        if self.c.compatible_with(low, self.chosen) {
            let low_rate = self.c.couple_rate[low];
            self.assignment.push((self.c.links[i], low_rate));
            self.members.push(i);
            if self.model.admissible(self.assignment) {
                let lifted = lift_to_max(self.model, self.c, self.members, self.assignment);
                // `RatedSet` orders couples by link id, not choice order, so
                // match weights up by link.
                let lifted_value: f64 = lifted
                    .couples()
                    .iter()
                    .map(|&(l, r)| {
                        self.c
                            .links
                            .iter()
                            .position(|&cl| cl == l)
                            .map_or(0.0, |i| self.weights[i] * r.as_mbps())
                    })
                    .sum();
                self.offer_set(&lifted, lifted_value);
                set_bit(self.chosen, low);
                // Growing the set can only lower the members' lifted rates,
                // so `lifted_value` bounds the chosen part of any descendant.
                self.rate_independent(pos + 1, lifted_value);
                clear_bit(self.chosen, low);
            }
            self.members.pop();
            self.assignment.pop();
        }
        self.rate_independent(pos + 1, value);
    }

    /// Generic models: branch over couples with the mask prefilter, but let
    /// the model confirm every extension.
    fn generic(&mut self, pos: usize, value: f64) {
        if pos == self.order.len() || value + self.suffix[pos] <= self.best_value() + VALUE_EPS {
            return;
        }
        let i = self.order[pos];
        for couple in self.c.couples_of(i) {
            if !self.c.compatible_with(couple, self.chosen) {
                continue;
            }
            self.assignment
                .push((self.c.links[i], self.c.couple_rate[couple]));
            if self.model.admissible(self.assignment) {
                let gain = self.contrib[couple];
                set_bit(self.chosen, couple);
                self.offer_assignment(value + gain);
                self.generic(pos + 1, value + gain);
                clear_bit(self.chosen, couple);
            }
            self.assignment.pop();
        }
        self.generic(pos + 1, value);
    }
}

/// One conflict component's pricing problem for a column-generation round.
pub struct PricingRequest<'a> {
    /// The component's compiled oracle.
    pub oracle: &'a MaxWeightOracle,
    /// Raw master duals (clamped ≥ 0), indexed like `oracle.links()`. The
    /// reduced-cost accept test always uses these.
    pub raw_weights: &'a [f64],
    /// Weights steering the heuristic proposal — possibly a stabilized
    /// (smoothed) version of `raw_weights`. Exactness is unaffected: every
    /// column is re-valued under `raw_weights` before the accept test.
    pub search_weights: &'a [f64],
    /// A column enters iff its raw value strictly exceeds this.
    pub threshold: f64,
    /// Columns already in the component's restricted master (duplicates are
    /// never returned).
    pub pool: &'a [RatedSet],
}

/// The outcome of pricing one component for one round.
#[derive(Debug, Clone, Default)]
pub struct PricingAnswer {
    /// The entering column and its canonical raw value, if any.
    pub column: Option<(RatedSet, f64)>,
    /// Whether the column came from the heuristic (no exact search ran).
    pub by_heuristic: bool,
    /// Whether the exact branch-and-bound ran this round.
    pub exact_invoked: bool,
    /// Wall-clock nanoseconds spent in the heuristic constructor.
    pub heuristic_ns: u64,
    /// Wall-clock nanoseconds spent in the exact search.
    pub exact_ns: u64,
}

/// Prices one component: heuristic first (when enabled), exact
/// branch-and-bound as the fallback certifier.
///
/// The heuristic column is accepted only if its value under the **raw**
/// duals clears `threshold` and it is not already in the pool; otherwise the
/// exact oracle runs on the raw duals, so a `column: None` answer with
/// `exact_invoked: true` is a *certificate* that no improving column exists
/// for this component — the exactness of column generation rests on the
/// exact search alone, never on the heuristic.
// awb-audit: hot
pub fn price_component<M: LinkRateModel + ?Sized>(
    model: &M,
    req: &PricingRequest<'_>,
    heuristic_first: bool,
    scratch: &mut PriceScratch,
) -> PricingAnswer {
    let mut ans = PricingAnswer::default();
    if heuristic_first {
        let start = std::time::Instant::now();
        let proposed = req
            .oracle
            .heuristic_max_weight_set_with(model, req.search_weights, scratch);
        ans.heuristic_ns = start.elapsed().as_nanos() as u64;
        if let Some((set, _)) = proposed {
            let raw = req.oracle.set_value(req.raw_weights, &set);
            if raw > req.threshold && !req.pool.contains(&set) {
                ans.column = Some((set, raw));
                ans.by_heuristic = true;
                return ans;
            }
        }
    }
    let start = std::time::Instant::now();
    let found = req
        .oracle
        .max_weight_set_with(model, req.raw_weights, scratch);
    ans.exact_ns = start.elapsed().as_nanos() as u64;
    ans.exact_invoked = true;
    if let Some((set, _)) = found {
        let raw = req.oracle.set_value(req.raw_weights, &set);
        if raw > req.threshold && !req.pool.contains(&set) {
            ans.column = Some((set, raw));
        }
    }
    ans
}

/// Prices every component of a round, fanning the per-component calls out
/// across `threads` workers (`0` = all available cores).
///
/// Components are split into contiguous chunks — one per worker — and the
/// answers are written into per-component slots, so the returned vector is
/// in component order and **bit-identical for any thread count**: each
/// component's answer depends only on its own request and scratch (whose
/// contents are fully overwritten), exactly as in the sequential loop.
///
/// # Panics
///
/// Panics if `scratches.len() != requests.len()`.
pub fn price_components<M: LinkRateModel + ?Sized>(
    model: &M,
    requests: &[PricingRequest<'_>],
    heuristic_first: bool,
    threads: usize,
    scratches: &mut [PriceScratch],
) -> Vec<PricingAnswer> {
    assert_eq!(scratches.len(), requests.len(), "one scratch per component");
    let threads = crate::engine::resolve_threads(threads).min(requests.len().max(1));
    if threads <= 1 || requests.len() <= 1 {
        return requests
            .iter()
            .zip(scratches.iter_mut())
            .map(|(req, scratch)| price_component(model, req, heuristic_first, scratch))
            .collect();
    }
    let chunk = requests.len().div_ceil(threads);
    let mut out: Vec<PricingAnswer> = vec![PricingAnswer::default(); requests.len()];
    std::thread::scope(|scope| {
        for ((req_chunk, scratch_chunk), out_chunk) in requests
            .chunks(chunk)
            .zip(scratches.chunks_mut(chunk))
            .zip(out.chunks_mut(chunk))
        {
            scope.spawn(move || {
                for ((req, scratch), slot) in req_chunk
                    .iter()
                    .zip(scratch_chunk.iter_mut())
                    .zip(out_chunk.iter_mut())
                {
                    *slot = price_component(model, req, heuristic_first, scratch);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_admissible, EnumerationOptions};
    use awb_net::{DeclarativeModel, SinrModel, Topology};
    use awb_phy::Phy;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// Reference: score every admissible set (unpruned enumeration).
    fn brute_force<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        weights: &[(LinkId, f64)],
    ) -> f64 {
        let opts = EnumerationOptions {
            prune_dominated: false,
            ..EnumerationOptions::default()
        };
        enumerate_admissible(model, universe, &opts)
            .iter()
            .map(|s| {
                s.couples()
                    .iter()
                    .map(|&(l, rate)| {
                        weights
                            .iter()
                            .find(|&&(wl, _)| wl == l)
                            .map_or(0.0, |&(_, w)| w.max(0.0) * rate.as_mbps())
                    })
                    .sum()
            })
            .fold(0.0f64, f64::max)
    }

    fn weight_of(set: &RatedSet, weights: &[(LinkId, f64)]) -> f64 {
        set.couples()
            .iter()
            .map(|&(l, rate)| {
                weights
                    .iter()
                    .find(|&&(wl, _)| wl == l)
                    .map_or(0.0, |&(_, w)| w * rate.as_mbps())
            })
            .sum()
    }

    fn declarative_fixture() -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..8).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
        let links: Vec<_> = (0..4)
            .map(|i| t.add_link(nodes[2 * i], nodes[2 * i + 1]).unwrap())
            .collect();
        let m = DeclarativeModel::builder(t)
            .alone_rates(links[0], &[r(54.0), r(18.0)])
            .alone_rates(links[1], &[r(54.0), r(36.0)])
            .alone_rates(links[2], &[r(36.0)])
            .alone_rates(links[3], &[r(54.0), r(36.0), r(18.0)])
            .conflict_all(links[0], links[1])
            .conflict_at(links[0], r(54.0), links[2], r(36.0))
            .conflict_at(links[1], r(54.0), links[3], r(54.0))
            .build();
        (m, links)
    }

    fn weight_sets(links: &[LinkId]) -> Vec<Vec<(LinkId, f64)>> {
        vec![
            vec![
                (links[0], 1.0),
                (links[1], 1.0),
                (links[2], 1.0),
                (links[3], 1.0),
            ],
            vec![
                (links[0], 0.3),
                (links[1], 2.0),
                (links[2], 0.0),
                (links[3], 0.1),
            ],
            vec![
                (links[0], 5.0),
                (links[1], 0.01),
                (links[2], 1.5),
                (links[3], 0.7),
            ],
        ]
    }

    #[test]
    fn exact_mode_matches_brute_force() {
        let (m, links) = declarative_fixture();
        for weights in weight_sets(&links) {
            let oracle = MaxWeightOracle::new(&m, &links);
            let w: Vec<f64> = oracle
                .links()
                .iter()
                .map(|&l| weights.iter().find(|&&(wl, _)| wl == l).unwrap().1)
                .collect();
            let (set, value) = oracle.max_weight_set(&m, &w).expect("positive weights");
            let reference = brute_force(&m, &links, &weights);
            assert!(
                (value - reference).abs() < 1e-9,
                "oracle {value} != brute force {reference}"
            );
            assert!((weight_of(&set, &weights) - value).abs() < 1e-9);
            assert!(m.admissible(set.couples()));
        }
    }

    #[test]
    fn rate_independent_mode_matches_brute_force() {
        // A 3-hop geometric chain: additive interference makes pairwise
        // compatibility insufficient, exercising the confirm + lift path.
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..6).map(|i| t.add_node(i as f64 * 30.0, 0.0)).collect();
        let links: Vec<_> = (0..5)
            .map(|i| t.add_link(nodes[i], nodes[i + 1]).unwrap())
            .collect();
        let m = SinrModel::new(t, Phy::paper_default());
        assert!(m.rate_independent_interference());
        let weights: Vec<(LinkId, f64)> = links
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, 0.5 + i as f64 * 0.4))
            .collect();
        let oracle = MaxWeightOracle::new(&m, &links);
        let w: Vec<f64> = oracle
            .links()
            .iter()
            .map(|&l| weights.iter().find(|&&(wl, _)| wl == l).unwrap().1)
            .collect();
        let (set, value) = oracle.max_weight_set(&m, &w).expect("positive weights");
        let reference = brute_force(&m, &links, &weights);
        assert!(
            (value - reference).abs() < 1e-9,
            "oracle {value} != brute force {reference}"
        );
        assert!(m.admissible(set.couples()));
    }

    #[test]
    fn zero_and_negative_weights_return_none() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        assert!(oracle.max_weight_set(&m, &[0.0; 4]).is_none());
        assert!(oracle.max_weight_set(&m, &[-1.0, 0.0, -0.5, 0.0]).is_none());
        let mut scratch = oracle.new_scratch();
        assert!(oracle
            .heuristic_max_weight_set_with(&m, &[0.0; 4], &mut scratch)
            .is_none());
    }

    #[test]
    fn single_positive_weight_picks_that_links_best_singleton_superset() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let mut w = vec![0.0; 4];
        let pos = oracle.links().iter().position(|&l| l == links[3]).unwrap();
        w[pos] = 2.0;
        let (set, value) = oracle.max_weight_set(&m, &w).unwrap();
        // Only link 3 carries weight; its max alone rate is 54.
        assert!((value - 108.0).abs() < 1e-9);
        assert_eq!(set.rate_of(links[3]), Some(r(54.0)));
    }

    #[test]
    fn weight_vector_length_is_enforced() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let result = std::panic::catch_unwind(|| oracle.max_weight_set(&m, &[1.0]));
        assert!(result.is_err());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_searches() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let mut scratch = oracle.new_scratch();
        for weights in weight_sets(&links) {
            let w: Vec<f64> = oracle
                .links()
                .iter()
                .map(|&l| weights.iter().find(|&&(wl, _)| wl == l).unwrap().1)
                .collect();
            let fresh = oracle.max_weight_set(&m, &w);
            let reused = oracle.max_weight_set_with(&m, &w, &mut scratch);
            match (fresh, reused) {
                (Some((fs, fv)), Some((rs, rv))) => {
                    assert_eq!(fs, rs);
                    assert_eq!(fv.to_bits(), rv.to_bits());
                }
                (f, u) => assert_eq!(f.is_none(), u.is_none()),
            }
        }
    }

    #[test]
    fn heuristic_is_admissible_and_never_beats_exact() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let mut scratch = oracle.new_scratch();
        for weights in weight_sets(&links) {
            let w: Vec<f64> = oracle
                .links()
                .iter()
                .map(|&l| weights.iter().find(|&&(wl, _)| wl == l).unwrap().1)
                .collect();
            let exact = oracle.max_weight_set(&m, &w).expect("positive weights");
            let (set, value) = oracle
                .heuristic_max_weight_set_with(&m, &w, &mut scratch)
                .expect("positive weights");
            assert!(m.admissible(set.couples()));
            assert!((oracle.set_value(&w, &set) - value).abs() < 1e-9);
            assert!(
                value <= exact.1 + 1e-9,
                "heuristic {value} > exact {}",
                exact.1
            );
        }
    }

    #[test]
    fn heuristic_is_admissible_for_sinr_chain() {
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..6).map(|i| t.add_node(i as f64 * 30.0, 0.0)).collect();
        let links: Vec<_> = (0..5)
            .map(|i| t.add_link(nodes[i], nodes[i + 1]).unwrap())
            .collect();
        let m = SinrModel::new(t, Phy::paper_default());
        let oracle = MaxWeightOracle::new(&m, &links);
        let w: Vec<f64> = (0..oracle.links().len())
            .map(|i| 0.5 + i as f64 * 0.4)
            .collect();
        let mut scratch = oracle.new_scratch();
        let exact = oracle.max_weight_set(&m, &w).expect("positive weights");
        let (set, value) = oracle
            .heuristic_max_weight_set_with(&m, &w, &mut scratch)
            .expect("positive weights");
        assert!(m.admissible(set.couples()));
        assert!(value <= exact.1 + 1e-9);
    }

    #[test]
    fn price_component_prefers_heuristic_and_falls_back_on_duplicates() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let w = vec![1.0; 4];
        let mut scratch = oracle.new_scratch();
        let req = PricingRequest {
            oracle: &oracle,
            raw_weights: &w,
            search_weights: &w,
            threshold: 0.0,
            pool: &[],
        };
        let ans = price_component(&m, &req, true, &mut scratch);
        let (h_set, _) = ans.column.clone().expect("improving column");
        assert!(ans.by_heuristic && !ans.exact_invoked);
        // With the heuristic column already pooled, the exact search must
        // run (and here it finds the same optimum, so no column enters).
        let pool = vec![h_set];
        let req = PricingRequest {
            oracle: &oracle,
            raw_weights: &w,
            search_weights: &w,
            threshold: 0.0,
            pool: &pool,
        };
        let ans = price_component(&m, &req, true, &mut scratch);
        assert!(ans.exact_invoked);
        if let Some((set, _)) = &ans.column {
            assert!(!pool.contains(set));
        }
    }

    #[test]
    fn parallel_pricing_matches_sequential_bitwise() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let weight_vecs: Vec<Vec<f64>> = weight_sets(&links)
            .into_iter()
            .map(|ws| {
                oracle
                    .links()
                    .iter()
                    .map(|&l| ws.iter().find(|&&(wl, _)| wl == l).unwrap().1)
                    .collect()
            })
            .collect();
        let requests: Vec<PricingRequest<'_>> = weight_vecs
            .iter()
            .map(|w| PricingRequest {
                oracle: &oracle,
                raw_weights: w,
                search_weights: w,
                threshold: 0.0,
                pool: &[],
            })
            .collect();
        let mut seq_scratch: Vec<PriceScratch> =
            requests.iter().map(|_| oracle.new_scratch()).collect();
        let mut par_scratch: Vec<PriceScratch> =
            requests.iter().map(|_| oracle.new_scratch()).collect();
        let sequential = price_components(&m, &requests, true, 1, &mut seq_scratch);
        let parallel = price_components(&m, &requests, true, 4, &mut par_scratch);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            match (&s.column, &p.column) {
                (Some((ss, sv)), Some((ps, pv))) => {
                    assert_eq!(ss, ps);
                    assert_eq!(sv.to_bits(), pv.to_bits());
                }
                (a, b) => assert_eq!(a.is_none(), b.is_none()),
            }
            assert_eq!(s.by_heuristic, p.by_heuristic);
            assert_eq!(s.exact_invoked, p.exact_invoked);
        }
    }
}
