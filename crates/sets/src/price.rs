//! Maximum-weight rated-set pricing oracle for column generation.
//!
//! Given non-negative per-link weights `w_e` (the link duals of a restricted
//! master LP), [`MaxWeightOracle`] finds the admissible rated set `S`
//! maximizing `sum_{e in S} w_e * R_S[e]` — the most violated column of the
//! Eq. 6 scheduling LP — by branch and bound over the compiled `u64` conflict
//! bitmasks of [`crate::enumerate`]'s bitset engine, instead of enumerating
//! the exponential admissible pool.
//!
//! Three search modes cover the model taxonomy:
//!
//! - **exact** (pairwise-exact models, e.g. declarative conflict tables):
//!   branches over (link, rate) couples; the mask intersection *is* the
//!   admissibility test.
//! - **rate-independent** (e.g. SINR models, where membership decides
//!   admissibility and each member's rate is then lifted): branches over
//!   membership with the lowest-rate couple masks as a sound prefilter, then
//!   confirms joint admissibility through the model and values the node by
//!   lifting every member to its maximum supported rate.
//! - **generic** (neither property): branches over couples with the mask
//!   prefilter, confirming every extension through the model.
//!
//! All three are exact searches: the upper bound at a node adds each
//! remaining link's best-case contribution (`w_e` times its maximum alone
//! rate — valid because admissibility is downward closed and interference
//! only lowers supported rates), so pruned subtrees cannot contain a better
//! set. Ties are broken deterministically (first best found wins, links in
//! descending-potential order).

use crate::compiled::{clear_bit, set_bit, Compiled, Mask};
use crate::concurrent::RatedSet;
use crate::engine::lift_to_max;
use awb_net::{LinkId, LinkRateModel};
use awb_phy::Rate;

/// Weights below this are treated as zero: their links can never improve the
/// objective and are excluded from the search.
const WEIGHT_EPS: f64 = 1e-12;

/// Improvement margin for replacing the incumbent (keeps tie-breaking
/// deterministic: the first best found wins).
const VALUE_EPS: f64 = 1e-12;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Exact,
    RateIndependent,
    Generic,
}

/// A reusable branch-and-bound maximum-weight rated-set searcher over one
/// `(model, universe)` pair.
///
/// Construction compiles the model's conflict snapshot once (the same
/// word-packed form the enumeration engine uses); each
/// [`MaxWeightOracle::max_weight_set`] call then runs a fresh search against
/// new weights, which is what a column-generation loop needs — one compile,
/// many pricing rounds.
#[derive(Debug, Clone)]
pub struct MaxWeightOracle {
    c: Compiled,
    mode: Mode,
}

impl MaxWeightOracle {
    /// Compiles the oracle for `model` over `universe`. Dead links (no alone
    /// rates) are excluded; the remaining live links, in universe order, are
    /// exposed through [`MaxWeightOracle::links`] and index the weight
    /// vector.
    pub fn new<M: LinkRateModel + ?Sized>(model: &M, universe: &[LinkId]) -> MaxWeightOracle {
        let c = Compiled::new(&model.conflict_snapshot(universe));
        let mode = if model.pairwise_admissibility_exact() {
            Mode::Exact
        } else if model.rate_independent_interference() {
            Mode::RateIndependent
        } else {
            Mode::Generic
        };
        MaxWeightOracle { c, mode }
    }

    /// The live links this oracle searches over, in universe order. Weight
    /// vectors passed to [`MaxWeightOracle::max_weight_set`] are indexed by
    /// position in this slice.
    pub fn links(&self) -> &[LinkId] {
        &self.c.links
    }

    /// Finds an admissible rated set maximizing `sum w_i * rate_i` over the
    /// live links, together with its weight. Returns `None` when no set has
    /// positive weight (all weights effectively zero, or no live links).
    ///
    /// `model` must be the model the oracle was compiled from; weights must
    /// be finite and are clamped at zero from below (negative or NaN weights
    /// exclude their links — an admissible set never benefits from them,
    /// since dropping a link keeps the set admissible).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.links().len()`.
    pub fn max_weight_set<M: LinkRateModel + ?Sized>(
        &self,
        model: &M,
        weights: &[f64],
    ) -> Option<(RatedSet, f64)> {
        assert_eq!(
            weights.len(),
            self.c.num_links(),
            "one weight per live link"
        );
        // Search order: links with usable weight, by descending best-case
        // contribution (weight x max alone rate), ties by universe position.
        let potential: Vec<f64> = (0..self.c.num_links())
            .map(|i| {
                if weights[i] > WEIGHT_EPS {
                    weights[i] * self.c.rates[i][0].as_mbps()
                } else {
                    0.0
                }
            })
            .collect();
        let mut order: Vec<usize> = (0..self.c.num_links())
            .filter(|&i| potential[i] > 0.0)
            .collect();
        order.sort_by(|&a, &b| potential[b].total_cmp(&potential[a]).then(a.cmp(&b)));
        if order.is_empty() {
            return None;
        }
        // suffix[k] = best-case contribution of order[k..].
        let mut suffix = vec![0.0; order.len() + 1];
        for k in (0..order.len()).rev() {
            suffix[k] = suffix[k + 1] + potential[order[k]];
        }

        let mut search = Search {
            c: &self.c,
            model,
            weights,
            order: &order,
            suffix: &suffix,
            chosen_mask: self.c.zero_mask(),
            members: Vec::new(),
            assignment: Vec::new(),
            best: None,
        };
        match self.mode {
            Mode::Exact => search.exact(0, 0.0),
            Mode::RateIndependent => search.rate_independent(0, 0.0),
            Mode::Generic => search.generic(0, 0.0),
        }
        search.best
    }
}

struct Search<'a, M: LinkRateModel + ?Sized> {
    c: &'a Compiled,
    model: &'a M,
    weights: &'a [f64],
    order: &'a [usize],
    suffix: &'a [f64],
    /// Bits of the chosen couples (exact/generic) or the chosen links'
    /// lowest-rate couples (rate-independent prefilter).
    chosen_mask: Mask,
    /// Chosen live link indices, in choice order.
    members: Vec<usize>,
    /// Chosen couples as a model assignment, parallel to `members`.
    assignment: Vec<(LinkId, Rate)>,
    best: Option<(RatedSet, f64)>,
}

impl<M: LinkRateModel + ?Sized> Search<'_, M> {
    fn best_value(&self) -> f64 {
        self.best.as_ref().map_or(0.0, |&(_, v)| v)
    }

    fn offer(&mut self, set: RatedSet, value: f64) {
        if value > self.best_value() + VALUE_EPS {
            self.best = Some((set, value));
        }
    }

    /// Pairwise-exact models: the conflict masks decide admissibility, so a
    /// couple compatible with every chosen couple extends the set.
    fn exact(&mut self, pos: usize, value: f64) {
        if pos == self.order.len() || value + self.suffix[pos] <= self.best_value() + VALUE_EPS {
            return;
        }
        let i = self.order[pos];
        for couple in self.c.offsets[i]..self.c.offsets[i + 1] {
            if !self.c.compatible_with(couple, &self.chosen_mask) {
                continue;
            }
            let rate = self.c.couple_rate[couple];
            let gain = self.weights[i] * rate.as_mbps();
            self.assignment.push((self.c.links[i], rate));
            set_bit(&mut self.chosen_mask, couple);
            self.offer(RatedSet::new(self.assignment.clone()), value + gain);
            self.exact(pos + 1, value + gain);
            clear_bit(&mut self.chosen_mask, couple);
            self.assignment.pop();
        }
        self.exact(pos + 1, value);
    }

    /// Rate-independent models: membership decides admissibility; the chosen
    /// links' lowest-rate couple masks prefilter, the model confirms, and the
    /// node is valued by lifting every member to its maximum supported rate.
    fn rate_independent(&mut self, pos: usize, value: f64) {
        if pos == self.order.len() || value + self.suffix[pos] <= self.best_value() + VALUE_EPS {
            return;
        }
        let i = self.order[pos];
        let low = self.c.lowest_couple(i);
        if self.c.compatible_with(low, &self.chosen_mask) {
            let low_rate = self.c.couple_rate[low];
            self.assignment.push((self.c.links[i], low_rate));
            self.members.push(i);
            if self.model.admissible(&self.assignment) {
                let lifted = lift_to_max(self.model, self.c, &self.members, &self.assignment);
                // `RatedSet` orders couples by link id, not choice order, so
                // match weights up by link.
                let lifted_value: f64 = lifted
                    .couples()
                    .iter()
                    .map(|&(l, r)| {
                        self.c
                            .links
                            .iter()
                            .position(|&cl| cl == l)
                            .map_or(0.0, |i| self.weights[i] * r.as_mbps())
                    })
                    .sum();
                self.offer(lifted.clone(), lifted_value);
                set_bit(&mut self.chosen_mask, low);
                // Growing the set can only lower the members' lifted rates,
                // so `lifted_value` bounds the chosen part of any descendant.
                self.rate_independent(pos + 1, lifted_value);
                clear_bit(&mut self.chosen_mask, low);
            }
            self.members.pop();
            self.assignment.pop();
        }
        self.rate_independent(pos + 1, value);
    }

    /// Generic models: branch over couples with the mask prefilter, but let
    /// the model confirm every extension.
    fn generic(&mut self, pos: usize, value: f64) {
        if pos == self.order.len() || value + self.suffix[pos] <= self.best_value() + VALUE_EPS {
            return;
        }
        let i = self.order[pos];
        for couple in self.c.offsets[i]..self.c.offsets[i + 1] {
            if !self.c.compatible_with(couple, &self.chosen_mask) {
                continue;
            }
            let rate = self.c.couple_rate[couple];
            self.assignment.push((self.c.links[i], rate));
            if self.model.admissible(&self.assignment) {
                let gain = self.weights[i] * rate.as_mbps();
                set_bit(&mut self.chosen_mask, couple);
                self.offer(RatedSet::new(self.assignment.clone()), value + gain);
                self.generic(pos + 1, value + gain);
                clear_bit(&mut self.chosen_mask, couple);
            }
            self.assignment.pop();
        }
        self.generic(pos + 1, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{enumerate_admissible, EnumerationOptions};
    use awb_net::{DeclarativeModel, SinrModel, Topology};
    use awb_phy::Phy;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// Reference: score every admissible set (unpruned enumeration).
    fn brute_force<M: LinkRateModel>(
        model: &M,
        universe: &[LinkId],
        weights: &[(LinkId, f64)],
    ) -> f64 {
        let opts = EnumerationOptions {
            prune_dominated: false,
            ..EnumerationOptions::default()
        };
        enumerate_admissible(model, universe, &opts)
            .iter()
            .map(|s| {
                s.couples()
                    .iter()
                    .map(|&(l, rate)| {
                        weights
                            .iter()
                            .find(|&&(wl, _)| wl == l)
                            .map_or(0.0, |&(_, w)| w.max(0.0) * rate.as_mbps())
                    })
                    .sum()
            })
            .fold(0.0f64, f64::max)
    }

    fn weight_of(set: &RatedSet, weights: &[(LinkId, f64)]) -> f64 {
        set.couples()
            .iter()
            .map(|&(l, rate)| {
                weights
                    .iter()
                    .find(|&&(wl, _)| wl == l)
                    .map_or(0.0, |&(_, w)| w * rate.as_mbps())
            })
            .sum()
    }

    fn declarative_fixture() -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..8).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
        let links: Vec<_> = (0..4)
            .map(|i| t.add_link(nodes[2 * i], nodes[2 * i + 1]).unwrap())
            .collect();
        let m = DeclarativeModel::builder(t)
            .alone_rates(links[0], &[r(54.0), r(18.0)])
            .alone_rates(links[1], &[r(54.0), r(36.0)])
            .alone_rates(links[2], &[r(36.0)])
            .alone_rates(links[3], &[r(54.0), r(36.0), r(18.0)])
            .conflict_all(links[0], links[1])
            .conflict_at(links[0], r(54.0), links[2], r(36.0))
            .conflict_at(links[1], r(54.0), links[3], r(54.0))
            .build();
        (m, links)
    }

    #[test]
    fn exact_mode_matches_brute_force() {
        let (m, links) = declarative_fixture();
        for weights in [
            vec![
                (links[0], 1.0),
                (links[1], 1.0),
                (links[2], 1.0),
                (links[3], 1.0),
            ],
            vec![
                (links[0], 0.3),
                (links[1], 2.0),
                (links[2], 0.0),
                (links[3], 0.1),
            ],
            vec![
                (links[0], 5.0),
                (links[1], 0.01),
                (links[2], 1.5),
                (links[3], 0.7),
            ],
        ] {
            let oracle = MaxWeightOracle::new(&m, &links);
            let w: Vec<f64> = oracle
                .links()
                .iter()
                .map(|&l| weights.iter().find(|&&(wl, _)| wl == l).unwrap().1)
                .collect();
            let (set, value) = oracle.max_weight_set(&m, &w).expect("positive weights");
            let reference = brute_force(&m, &links, &weights);
            assert!(
                (value - reference).abs() < 1e-9,
                "oracle {value} != brute force {reference}"
            );
            assert!((weight_of(&set, &weights) - value).abs() < 1e-9);
            assert!(m.admissible(set.couples()));
        }
    }

    #[test]
    fn rate_independent_mode_matches_brute_force() {
        // A 3-hop geometric chain: additive interference makes pairwise
        // compatibility insufficient, exercising the confirm + lift path.
        let mut t = Topology::new();
        let nodes: Vec<_> = (0..6).map(|i| t.add_node(i as f64 * 30.0, 0.0)).collect();
        let links: Vec<_> = (0..5)
            .map(|i| t.add_link(nodes[i], nodes[i + 1]).unwrap())
            .collect();
        let m = SinrModel::new(t, Phy::paper_default());
        assert!(m.rate_independent_interference());
        let weights: Vec<(LinkId, f64)> = links
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, 0.5 + i as f64 * 0.4))
            .collect();
        let oracle = MaxWeightOracle::new(&m, &links);
        let w: Vec<f64> = oracle
            .links()
            .iter()
            .map(|&l| weights.iter().find(|&&(wl, _)| wl == l).unwrap().1)
            .collect();
        let (set, value) = oracle.max_weight_set(&m, &w).expect("positive weights");
        let reference = brute_force(&m, &links, &weights);
        assert!(
            (value - reference).abs() < 1e-9,
            "oracle {value} != brute force {reference}"
        );
        assert!(m.admissible(set.couples()));
    }

    #[test]
    fn zero_and_negative_weights_return_none() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        assert!(oracle.max_weight_set(&m, &[0.0; 4]).is_none());
        assert!(oracle.max_weight_set(&m, &[-1.0, 0.0, -0.5, 0.0]).is_none());
    }

    #[test]
    fn single_positive_weight_picks_that_links_best_singleton_superset() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let mut w = vec![0.0; 4];
        let pos = oracle.links().iter().position(|&l| l == links[3]).unwrap();
        w[pos] = 2.0;
        let (set, value) = oracle.max_weight_set(&m, &w).unwrap();
        // Only link 3 carries weight; its max alone rate is 54.
        assert!((value - 108.0).abs() < 1e-9);
        assert_eq!(set.rate_of(links[3]), Some(r(54.0)));
    }

    #[test]
    fn weight_vector_length_is_enforced() {
        let (m, links) = declarative_fixture();
        let oracle = MaxWeightOracle::new(&m, &links);
        let result = std::panic::catch_unwind(|| oracle.max_weight_set(&m, &[1.0]));
        assert!(result.is_err());
    }
}
