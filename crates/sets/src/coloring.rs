//! Conflict-graph coloring: constructive TDMA schedules and clique numbers.
//!
//! The clique-constraint literature the paper builds on (Jain et al. [10],
//! Fang & Bensaou [11]) bounds throughput between clique-based upper bounds
//! and coloring-based lower bounds: a proper coloring of the conflict graph
//! with `k` colors yields a TDMA schedule in which every link transmits a
//! `1/k` time share. This module provides both quantities for a fixed rate
//! assignment, complementing the exact LP of `awb-core`.

use crate::clique::{maximal_cliques, ConflictGraph};
use crate::concurrent::RatedSet;
use awb_net::LinkRateModel;

/// A proper coloring of a conflict graph: `color[i]` for couple `i`, colors
/// dense from 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<usize>,
    num_colors: usize,
}

impl Coloring {
    /// Color of couple `i` (indices follow
    /// [`ConflictGraph::set`](crate::ConflictGraph::set) order).
    pub fn color(&self, i: usize) -> usize {
        self.colors[i]
    }

    /// Number of colors used.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// All colors, couple-indexed.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }
}

/// Greedy (Welsh–Powell) coloring of the conflict graph: couples in
/// descending degree order, each taking the smallest color absent from its
/// conflicting neighbours. Uses at most `Δ + 1` colors.
pub fn greedy_coloring(graph: &ConflictGraph) -> Coloring {
    let n = graph.len();
    let mut order: Vec<usize> = (0..n).collect();
    let degree = |v: usize| (0..n).filter(|&u| u != v && graph.conflicts(v, u)).count();
    order.sort_by_key(|&v| std::cmp::Reverse(degree(v)));
    let mut colors = vec![usize::MAX; n];
    let mut used = 0;
    for &v in &order {
        let mut taken: Vec<bool> = vec![false; used + 1];
        for u in 0..n {
            if u != v && graph.conflicts(v, u) && colors[u] < taken.len() {
                taken[colors[u]] = true;
            }
        }
        let c = (0..taken.len()).find(|&c| !taken[c]).unwrap_or(taken.len());
        colors[v] = c;
        used = used.max(c + 1);
    }
    Coloring {
        colors,
        num_colors: used,
    }
}

/// The clique number ω of the conflict graph (size of its largest maximal
/// clique) — a lower bound on the chromatic number, hence on any TDMA
/// schedule length.
pub fn clique_number(graph: &ConflictGraph) -> usize {
    maximal_cliques(graph)
        .into_iter()
        .map(|c| c.len())
        .max()
        .unwrap_or(0)
}

/// The per-link throughput of the TDMA schedule induced by a greedy coloring
/// of `assignment`'s conflict graph: link `L_i` at rate `r_i` transmits a
/// `1/k` share, delivering `r_i / k` Mbps. Returns `(num_colors,
/// throughputs)` aligned with `assignment.couples()`.
///
/// This is a *feasible* schedule, so each value lower-bounds the link's
/// max-min throughput under the fixed rates — the constructive counterpart
/// of the Eq. 7 clique upper bound.
pub fn tdma_throughput<M: LinkRateModel>(model: &M, assignment: &RatedSet) -> (usize, Vec<f64>) {
    let graph = ConflictGraph::new(model, assignment);
    let coloring = greedy_coloring(&graph);
    let k = coloring.num_colors().max(1);
    let throughputs = assignment
        .couples()
        .iter()
        .map(|(_, r)| r.as_mbps() / k as f64)
        .collect();
    (coloring.num_colors(), throughputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, LinkId, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    fn model(n: usize, conflicts: &[(usize, usize)]) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0)]);
        }
        for &(i, j) in conflicts {
            b = b.conflict_all(links[i], links[j]);
        }
        (b.build(), links)
    }

    fn rated(links: &[LinkId]) -> RatedSet {
        links.iter().map(|&l| (l, r(54.0))).collect()
    }

    #[test]
    fn coloring_is_proper_and_compact() {
        let (m, links) = model(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let g = ConflictGraph::new(&m, &rated(&links));
        let c = greedy_coloring(&g);
        for i in 0..g.len() {
            for j in (i + 1)..g.len() {
                if g.conflicts(i, j) {
                    assert_ne!(c.color(i), c.color(j), "improper at {i},{j}");
                }
            }
        }
        // An odd cycle needs 3 colors; greedy may use exactly 3.
        assert!(c.num_colors() >= 3);
        assert!(c.num_colors() <= 4);
    }

    #[test]
    fn independent_graph_uses_one_color() {
        let (m, links) = model(4, &[]);
        let g = ConflictGraph::new(&m, &rated(&links));
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors(), 1);
        assert!(c.colors().iter().all(|&x| x == 0));
        assert_eq!(clique_number(&g), 1);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let (m, links) = model(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let g = ConflictGraph::new(&m, &rated(&links));
        let c = greedy_coloring(&g);
        assert_eq!(c.num_colors(), 4);
        assert_eq!(clique_number(&g), 4);
    }

    #[test]
    fn clique_number_lower_bounds_colors() {
        for conflicts in [
            vec![(0usize, 1usize), (1, 2)],
            vec![(0, 1), (0, 2), (1, 2), (2, 3)],
            vec![(0, 1), (1, 2), (2, 3), (3, 0)],
        ] {
            let (m, links) = model(4, &conflicts);
            let g = ConflictGraph::new(&m, &rated(&links));
            assert!(clique_number(&g) <= greedy_coloring(&g).num_colors());
        }
    }

    #[test]
    fn tdma_throughput_is_rate_over_colors() {
        let (m, links) = model(3, &[(0, 1), (1, 2), (0, 2)]);
        let (k, tp) = tdma_throughput(&m, &rated(&links));
        assert_eq!(k, 3);
        for v in tp {
            assert!((v - 18.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tdma_lower_bounds_the_equal_throughput_clique_bound() {
        // TDMA gives r/k; the Eq. 7 bound for the same clique is
        // 1/Σ(1/r) = r/|C| for equal rates. With k ≥ ω = |C| the TDMA value
        // can never exceed the bound.
        let (m, links) = model(4, &[(0, 1), (1, 2), (2, 3)]);
        let set = rated(&links);
        let (k, tp) = tdma_throughput(&m, &set);
        let g = ConflictGraph::new(&m, &set);
        let omega = clique_number(&g);
        assert!(k >= omega);
        let eq7 = 54.0 / omega as f64;
        for v in tp {
            assert!(v <= eq7 + 1e-12);
        }
    }
}
