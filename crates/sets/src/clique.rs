//! Rate-coupled cliques (paper §3.1).

use crate::concurrent::RatedSet;
use awb_net::{LinkId, LinkRateModel};

/// A pairwise-conflict graph over `(link, rate)` couples with fixed rates —
/// the object cliques live on.
///
/// Built from a rate assignment: vertex `i` is the couple `assignment[i]`,
/// and an edge joins two vertices whose couples cannot both succeed
/// concurrently ([`LinkRateModel::conflicts`]).
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    set: RatedSet,
    /// Adjacency over couple indices in `set.couples()` order.
    adj: Vec<Vec<bool>>,
}

impl ConflictGraph {
    /// Builds the conflict graph of `assignment` under `model`.
    pub fn new<M: LinkRateModel>(model: &M, assignment: &RatedSet) -> ConflictGraph {
        let couples = assignment.couples();
        let n = couples.len();
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let c = model.conflicts(couples[i], couples[j]);
                adj[i][j] = c;
                adj[j][i] = c;
            }
        }
        ConflictGraph {
            set: assignment.clone(),
            adj,
        }
    }

    /// The rated couples this graph was built over.
    pub fn set(&self) -> &RatedSet {
        &self.set
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Whether couples `i` and `j` (indices into [`ConflictGraph::set`])
    /// conflict.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        self.adj[i][j]
    }
}

/// All maximal cliques of `graph`, via Bron–Kerbosch with pivoting. Each
/// clique is returned as indices into `graph.set().couples()`, sorted.
///
/// Isolated vertices are returned as singleton cliques (every couple alone
/// is a clique).
pub fn maximal_cliques(graph: &ConflictGraph) -> Vec<Vec<usize>> {
    let n = graph.len();
    let mut out = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let p: Vec<usize> = (0..n).collect();
    let x: Vec<usize> = Vec::new();
    bron_kerbosch(graph, &mut r, p, x, &mut out);
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort();
    out
}

fn bron_kerbosch(
    g: &ConflictGraph,
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    // Pivot: vertex of P ∪ X with the most neighbours in P.
    let Some(pivot) = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| g.conflicts(u, v)).count())
    else {
        return; // unreachable: the empty-P-and-X case exited above
    };
    let candidates: Vec<usize> = p
        .iter()
        .copied()
        .filter(|&v| !g.conflicts(pivot, v))
        .collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        r.push(v);
        let p2: Vec<usize> = p.iter().copied().filter(|&u| g.conflicts(v, u)).collect();
        let x2: Vec<usize> = x.iter().copied().filter(|&u| g.conflicts(v, u)).collect();
        bron_kerbosch(g, r, p2, x2, out);
        r.pop();
        p.retain(|&u| u != v);
        x.push(v);
    }
}

/// All maximal cliques of `assignment` under `model`, returned as
/// [`RatedSet`]s carrying the assignment's rates.
pub fn maximal_rated_cliques<M: LinkRateModel>(model: &M, assignment: &RatedSet) -> Vec<RatedSet> {
    let g = ConflictGraph::new(model, assignment);
    maximal_cliques(&g)
        .into_iter()
        .map(|idxs| {
            idxs.into_iter()
                .map(|i| assignment.couples()[i])
                .collect::<RatedSet>()
        })
        .collect()
}

/// Whether every pair of couples in `set` conflicts (the paper's clique on
/// couples).
pub fn is_clique<M: LinkRateModel>(model: &M, set: &RatedSet) -> bool {
    let c = set.couples();
    (0..c.len()).all(|i| ((i + 1)..c.len()).all(|j| model.conflicts(c[i], c[j])))
}

/// Whether `set` is a **maximal clique**: a clique such that no couple
/// `(link, rate)` with `link` outside the set (drawn from `universe` and the
/// link's alone rates) conflicts with *every* member (§3.1).
pub fn is_maximal_clique<M: LinkRateModel>(model: &M, set: &RatedSet, universe: &[LinkId]) -> bool {
    if !is_clique(model, set) {
        return false;
    }
    for &link in universe {
        if set.contains(link) {
            continue;
        }
        for rate in model.alone_rates(link) {
            if set
                .couples()
                .iter()
                .all(|&c| model.conflicts(c, (link, rate)))
            {
                return false;
            }
        }
    }
    true
}

/// Whether `set` is a **maximal clique with maximum rates** (§3.1): a
/// maximal clique that stops being one when any member's rate is raised to
/// any higher achievable rate.
pub fn is_maximal_clique_with_max_rates<M: LinkRateModel>(
    model: &M,
    set: &RatedSet,
    universe: &[LinkId],
) -> bool {
    if !is_maximal_clique(model, set, universe) {
        return false;
    }
    for &(link, rate) in set.couples() {
        for higher in model.alone_rates(link).into_iter().filter(|&r| r > rate) {
            if is_maximal_clique(model, &set.with_rate(link, higher), universe) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// `n` disjoint links with `conflicts` declared between index pairs.
    fn model(n: usize, conflicts: &[(usize, usize)]) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0)]);
        }
        for &(i, j) in conflicts {
            b = b.conflict_all(links[i], links[j]);
        }
        (b.build(), links)
    }

    fn rated(links: &[LinkId], idxs: &[usize]) -> RatedSet {
        idxs.iter().map(|&i| (links[i], r(54.0))).collect()
    }

    #[test]
    fn triangle_is_one_maximal_clique() {
        let (m, links) = model(3, &[(0, 1), (0, 2), (1, 2)]);
        let all = rated(&links, &[0, 1, 2]);
        let cliques = maximal_rated_cliques(&m, &all);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].len(), 3);
        assert!(is_clique(&m, &cliques[0]));
        assert!(is_maximal_clique(&m, &cliques[0], &links));
    }

    #[test]
    fn chain_conflicts_give_overlapping_cliques() {
        // Path-like conflicts: 0-1, 1-2 (0 and 2 independent).
        let (m, links) = model(3, &[(0, 1), (1, 2)]);
        let all = rated(&links, &[0, 1, 2]);
        let cliques = maximal_rated_cliques(&m, &all);
        assert_eq!(cliques.len(), 2);
        for c in &cliques {
            assert_eq!(c.len(), 2);
            assert!(c.contains(links[1]));
        }
    }

    #[test]
    fn isolated_vertices_are_singleton_cliques() {
        let (m, links) = model(3, &[(0, 1)]);
        let all = rated(&links, &[0, 1, 2]);
        let cliques = maximal_rated_cliques(&m, &all);
        assert_eq!(cliques.len(), 2);
        assert!(cliques.iter().any(|c| c.len() == 1 && c.contains(links[2])));
    }

    #[test]
    fn subcliques_are_not_maximal() {
        let (m, links) = model(3, &[(0, 1), (0, 2), (1, 2)]);
        let pair = rated(&links, &[0, 1]);
        assert!(is_clique(&m, &pair));
        assert!(!is_maximal_clique(&m, &pair, &links));
    }

    #[test]
    fn non_clique_is_rejected() {
        let (m, links) = model(3, &[(0, 1)]);
        let not_clique = rated(&links, &[0, 2]);
        assert!(!is_clique(&m, &not_clique));
        assert!(!is_maximal_clique(&m, &not_clique, &links));
        assert!(!is_maximal_clique_with_max_rates(&m, &not_clique, &links));
    }

    #[test]
    fn max_rate_condition_detects_raisable_members() {
        // Two links, two rates. Conflicts: everything except (54, 54) —
        // so at (36, 36) they conflict, and raising a member to 54 keeps a
        // clique only if the other stays at 36.
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_node(f64::from(i), 0.0)).collect();
        let l0 = t.add_link(n[0], n[1]).unwrap();
        let l1 = t.add_link(n[2], n[3]).unwrap();
        let links = vec![l0, l1];
        let m = DeclarativeModel::builder(t)
            .alone_rates(l0, &[r(54.0), r(36.0)])
            .alone_rates(l1, &[r(54.0), r(36.0)])
            .conflict_at(l0, r(36.0), l1, r(36.0))
            .conflict_at(l0, r(36.0), l1, r(54.0))
            .conflict_at(l0, r(54.0), l1, r(36.0))
            .build();
        let low: RatedSet = vec![(l0, r(36.0)), (l1, r(36.0))].into_iter().collect();
        assert!(is_maximal_clique(&m, &low, &links));
        // (36, 36) can be raised to (54, 36) and stay a maximal clique,
        // so it is not "with max rates".
        assert!(!is_maximal_clique_with_max_rates(&m, &low, &links));
        let raised: RatedSet = vec![(l0, r(54.0)), (l1, r(36.0))].into_iter().collect();
        assert!(is_maximal_clique_with_max_rates(&m, &raised, &links));
    }

    #[test]
    fn empty_assignment_has_one_empty_clique() {
        let (m, _) = model(1, &[]);
        let g = ConflictGraph::new(&m, &RatedSet::empty());
        assert!(g.is_empty());
        let cliques = maximal_cliques(&g);
        // Bron–Kerbosch on the empty graph returns the empty clique.
        assert_eq!(cliques, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn five_cycle_has_five_maximal_cliques() {
        let (m, links) = model(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let all = rated(&links, &[0, 1, 2, 3, 4]);
        let cliques = maximal_rated_cliques(&m, &all);
        assert_eq!(cliques.len(), 5);
        assert!(cliques.iter().all(|c| c.len() == 2));
    }
}
