//! Word-packed `u64` bitset primitives shared by the compiled engines.
//!
//! The enumeration engine (§5d), the pricing oracle (§5e) and the compiled
//! MAC-simulator kernels (§5j, in `awb-sim`) all reduce their inner loops to
//! the same handful of operations over `&[u64]` masks: set/test a bit,
//! intersect, popcount, iterate set bits. This module is that shared
//! surface — plain free functions over word slices, so callers own their
//! storage layout (a `Vec<u64>` per row, or one flat row-major buffer).
//!
//! All masks passed to a binary operation must have the same word width;
//! the functions zip the slices and silently ignore any excess words of the
//! longer operand, exactly like `Iterator::zip`.

/// Words needed for a mask over `bits` bits (at least one, so empty
/// universes still get a valid zero mask).
#[must_use]
pub fn words_for(bits: usize) -> usize {
    bits.div_ceil(64).max(1)
}

/// A fresh zero mask over `bits` bits.
#[must_use]
pub fn zero_mask(bits: usize) -> Vec<u64> {
    vec![0u64; words_for(bits)]
}

/// Sets bit `bit`.
pub fn set_bit(mask: &mut [u64], bit: usize) {
    mask[bit / 64] |= 1u64 << (bit % 64);
}

/// Clears bit `bit`.
pub fn clear_bit(mask: &mut [u64], bit: usize) {
    mask[bit / 64] &= !(1u64 << (bit % 64));
}

/// Whether bit `bit` is set.
#[must_use]
pub fn test_bit(mask: &[u64], bit: usize) -> bool {
    mask[bit / 64] & (1u64 << (bit % 64)) != 0
}

/// Whether `a` and `b` share no set bit.
#[must_use]
pub fn disjoint(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x & y == 0)
}

/// Whether no bit is set.
#[must_use]
pub fn is_empty(mask: &[u64]) -> bool {
    mask.iter().all(|&w| w == 0)
}

/// `out = a & b`, returning the intersection's population count.
pub fn and_into(a: &[u64], b: &[u64], out: &mut [u64]) -> u32 {
    let mut pop = 0;
    for ((x, y), o) in a.iter().zip(b).zip(out.iter_mut()) {
        *o = x & y;
        pop += o.count_ones();
    }
    pop
}

/// Population count of `a & b` without materialising the intersection.
#[must_use]
pub fn and_count(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

/// `acc |= other`.
pub fn or_into(acc: &mut [u64], other: &[u64]) {
    for (a, o) in acc.iter_mut().zip(other) {
        *a |= o;
    }
}

/// Zeroes every word of `mask`.
pub fn clear_all(mask: &mut [u64]) {
    for w in mask.iter_mut() {
        *w = 0;
    }
}

/// Total population count.
#[must_use]
pub fn count(mask: &[u64]) -> u32 {
    mask.iter().map(|w| w.count_ones()).sum()
}

/// Indices of the set bits of `mask`, ascending.
pub fn iter_bits(mask: &[u64]) -> impl Iterator<Item = usize> + '_ {
    mask.iter().enumerate().flat_map(|(w, &bits)| {
        let mut bits = bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(w * 64 + b)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_sizing_and_zero_masks() {
        assert_eq!(words_for(0), 1);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(zero_mask(130).len(), 3);
        assert!(is_empty(&zero_mask(0)));
    }

    #[test]
    fn bit_ops_roundtrip() {
        let mut m = zero_mask(128);
        set_bit(&mut m, 3);
        set_bit(&mut m, 70);
        assert!(test_bit(&m, 3) && test_bit(&m, 70) && !test_bit(&m, 4));
        assert_eq!(iter_bits(&m).collect::<Vec<_>>(), vec![3, 70]);
        assert_eq!(count(&m), 2);
        clear_bit(&mut m, 3);
        assert!(!test_bit(&m, 3));
        clear_all(&mut m);
        assert!(is_empty(&m));
    }

    #[test]
    fn set_algebra() {
        let mut a = zero_mask(128);
        let mut b = zero_mask(128);
        set_bit(&mut a, 1);
        set_bit(&mut a, 100);
        set_bit(&mut b, 100);
        assert!(!disjoint(&a, &b));
        assert_eq!(and_count(&a, &b), 1);
        let mut out = zero_mask(128);
        assert_eq!(and_into(&a, &b, &mut out), 1);
        assert_eq!(iter_bits(&out).collect::<Vec<_>>(), vec![100]);
        or_into(&mut b, &a);
        assert_eq!(iter_bits(&b).collect::<Vec<_>>(), vec![1, 100]);
        clear_all(&mut b);
        set_bit(&mut b, 2);
        assert!(disjoint(&a, &[0u64]) && disjoint(&b, &a));
    }
}
