//! The compiled enumeration engine: bitset backtracking, maximality during
//! the search (Bron–Kerbosch style), and the parallel subtree fan-out.
//!
//! Three search modes, chosen by [`crate::enumerate`] from the model's
//! snapshot flags:
//!
//! * **Exact** (pairwise-exact models, e.g. declarative conflicts): the
//!   conflict masks *are* the admissibility test. The inner loop of the
//!   search is an O(words) mask intersection; no model callback survives
//!   compilation, so subtrees can be shipped to worker threads.
//! * **Hybrid** (rate-independent additive interference, e.g. SINR): masks
//!   prune pairwise-conflicting candidates for free — sound because
//!   admissibility is downward closed — and the model's joint `admissible`
//!   confirms the survivors. Sequential (it borrows the model).
//! * Everything else falls back to the generic backtracker in
//!   [`crate::enumerate`].
//!
//! # Determinism contract
//!
//! Every function here produces output **byte-identical** to its sequential
//! counterpart at any thread count: the parallel fan-out enumerates the
//! top-of-tree prefixes in the exact order the sequential search would visit
//! them, runs each subtree as an independent job, and concatenates the
//! per-job results in prefix order. Work distribution (which thread runs
//! which job) is racy; the merge order is not.

use crate::compiled::{
    and_count, and_into, clear_bit, disjoint, is_empty, iter_bits, set_bit, test_bit, Compiled,
    Mask,
};
use crate::concurrent::RatedSet;
use crate::enumerate::EnumerationOptions;
use awb_net::{LinkId, LinkRateModel};
use awb_phy::Rate;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a user-facing thread count (`0` = all available cores).
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

/// Runs `njobs` independent jobs on `threads` workers and concatenates the
/// results **in job order**, so the output equals the sequential
/// `(0..njobs).flat_map(f)`.
fn run_jobs<F>(njobs: usize, threads: usize, f: F) -> Vec<RatedSet>
where
    F: Fn(usize) -> Vec<RatedSet> + Sync,
{
    let threads = threads.min(njobs);
    if threads <= 1 {
        return (0..njobs).flat_map(&f).collect();
    }
    let counter = AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<RatedSet>>> = Vec::new();
    slots.resize_with(njobs, || None);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let counter = &counter;
            let f = &f;
            s.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= njobs {
                    break;
                }
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots.into_iter().flatten().flatten().collect()
}

// ---------------------------------------------------------------------------
// Exact enumeration (rated bitset backtracker).
// ---------------------------------------------------------------------------

/// A suspended search node: the subtree rooted at `index` with `assignment`
/// already chosen. Running the nodes of a frontier in order reproduces the
/// sequential depth-first output.
#[derive(Clone)]
struct Prefix {
    assignment: Vec<(LinkId, Rate)>,
    chosen: Mask,
    index: usize,
}

/// Enumerates every admissible rated set (unpruned) over the compiled
/// model, in the same order as the generic rated backtracker.
pub(crate) fn enumerate_exact(
    c: &Compiled,
    options: &EnumerationOptions,
    threads: usize,
) -> Vec<RatedSet> {
    debug_assert!(c.pairwise_exact);
    if threads <= 1 {
        let mut out = Vec::new();
        let mut assignment = Vec::new();
        let mut chosen = c.zero_mask();
        descend_exact(c, options, &mut assignment, &mut chosen, 0, &mut out);
        return out;
    }
    let jobs = split_frontier(c, options, threads.saturating_mul(8));
    run_jobs(jobs.len(), threads, |i| {
        let job = &jobs[i];
        let mut out = Vec::new();
        let mut assignment = job.assignment.clone();
        let mut chosen = job.chosen.clone();
        descend_exact(
            c,
            options,
            &mut assignment,
            &mut chosen,
            job.index,
            &mut out,
        );
        out
    })
}

/// Expands the root into at least `target` prefixes (or until every prefix
/// is a leaf), preserving the sequential visit order: the skip branch of a
/// node precedes its include branches, exactly as in `descend_exact`.
fn split_frontier(c: &Compiled, options: &EnumerationOptions, target: usize) -> Vec<Prefix> {
    let mut frontier = vec![Prefix {
        assignment: Vec::new(),
        chosen: c.zero_mask(),
        index: 0,
    }];
    while frontier.len() < target && frontier.iter().any(|p| p.index < c.num_links()) {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for node in frontier {
            if node.index >= c.num_links() {
                next.push(node);
                continue;
            }
            let mut skip = node.clone();
            skip.index += 1;
            next.push(skip);
            let capped = options
                .max_set_size
                .is_some_and(|cap| node.assignment.len() >= cap);
            if capped {
                continue;
            }
            for couple in c.offsets[node.index]..c.offsets[node.index + 1] {
                if c.compatible_with(couple, &node.chosen) {
                    let mut inc = node.clone();
                    inc.assignment
                        .push((c.links[node.index], c.couple_rate[couple]));
                    set_bit(&mut inc.chosen, couple);
                    inc.index += 1;
                    next.push(inc);
                }
            }
        }
        frontier = next;
    }
    frontier
}

fn descend_exact(
    c: &Compiled,
    options: &EnumerationOptions,
    assignment: &mut Vec<(LinkId, Rate)>,
    chosen: &mut Mask,
    index: usize,
    out: &mut Vec<RatedSet>,
) {
    if index == c.num_links() {
        if !assignment.is_empty() {
            out.push(RatedSet::new(assignment.clone()));
        }
        return;
    }
    descend_exact(c, options, assignment, chosen, index + 1, out);
    if options
        .max_set_size
        .is_some_and(|cap| assignment.len() >= cap)
    {
        return;
    }
    for couple in c.offsets[index]..c.offsets[index + 1] {
        if c.compatible_with(couple, chosen) {
            assignment.push((c.links[index], c.couple_rate[couple]));
            set_bit(chosen, couple);
            descend_exact(c, options, assignment, chosen, index + 1, out);
            clear_bit(chosen, couple);
            assignment.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// Hybrid enumeration (membership bitset + joint admissibility).
// ---------------------------------------------------------------------------

/// Enumerates every admissible set (unpruned) of a rate-independent model in
/// the same order as the generic membership backtracker: branch on
/// membership at the lowest rates, lift to maximum rates at the leaves. The
/// masks veto pairwise-conflicting candidates before the joint test runs.
pub(crate) fn enumerate_hybrid<M: LinkRateModel>(
    model: &M,
    c: &Compiled,
    options: &EnumerationOptions,
) -> Vec<RatedSet> {
    let mut out = Vec::new();
    let mut assignment = Vec::new();
    let mut members = Vec::new();
    let mut chosen = c.zero_mask();
    descend_hybrid(
        model,
        c,
        options,
        &mut assignment,
        &mut members,
        &mut chosen,
        0,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn descend_hybrid<M: LinkRateModel>(
    model: &M,
    c: &Compiled,
    options: &EnumerationOptions,
    assignment: &mut Vec<(LinkId, Rate)>,
    members: &mut Vec<usize>,
    chosen: &mut Mask,
    index: usize,
    out: &mut Vec<RatedSet>,
) {
    if index == c.num_links() {
        if !assignment.is_empty() {
            out.push(lift_to_max(model, c, members, assignment));
        }
        return;
    }
    descend_hybrid(
        model,
        c,
        options,
        assignment,
        members,
        chosen,
        index + 1,
        out,
    );
    if options
        .max_set_size
        .is_some_and(|cap| assignment.len() >= cap)
    {
        return;
    }
    let low = c.lowest_couple(index);
    if !c.compatible_with(low, chosen) {
        return; // pairwise conflict ⇒ jointly inadmissible (downward closure)
    }
    let Some(&lowest) = c.rates[index].last() else {
        return; // a rate-less link can join no set
    };
    assignment.push((c.links[index], lowest));
    if c.pairwise_exact || model.admissible(assignment) {
        members.push(index);
        set_bit(chosen, low);
        descend_hybrid(
            model,
            c,
            options,
            assignment,
            members,
            chosen,
            index + 1,
            out,
        );
        clear_bit(chosen, low);
        members.pop();
    }
    assignment.pop();
}

/// Replaces each member's placeholder rate with the maximum rate admissible
/// while the rest of the set is active (exact for rate-independent
/// interference). `members[i]` is the live-link index of `assignment[i]` —
/// the precomputed link→rates index that replaces the old per-link linear
/// scan of the live table.
pub(crate) fn lift_to_max<M: LinkRateModel + ?Sized>(
    model: &M,
    c: &Compiled,
    members: &[usize],
    assignment: &[(LinkId, Rate)],
) -> RatedSet {
    // awb-audit: allow(hot-path-alloc) — one copy per *emitted* set, not per
    // search node; the lifting loop then mutates rates in place.
    let mut lifted = assignment.to_vec();
    for (i, &live) in members.iter().enumerate() {
        for &r in &c.rates[live] {
            lifted[i].1 = r;
            if model.admissible(&lifted) {
                break;
            }
        }
    }
    RatedSet::new(lifted)
}

// ---------------------------------------------------------------------------
// Maximal independent sets, exact mode: Bron–Kerbosch over couples.
// ---------------------------------------------------------------------------

/// Enumerates the maximal independent sets with maximum supported rates of a
/// pairwise-exact model, detecting maximality **during** the search: a
/// Bron–Kerbosch recursion over couples carries the candidate set `P`
/// (couples that can still extend the current set) and the excluded set `X`
/// (couples already explored that could extend it); a set is emitted only at
/// nodes where both are empty, i.e. no couple of any link can be inserted. A
/// final O(words) mask check per member rejects sets where a single link's
/// rate could be raised (the "maximum supported rates" half of §2.4's
/// definition), which the couple graph alone cannot see: the lower-rate
/// variant of a link is BK-maximal too, because its sibling couple is its
/// same-link "conflict".
pub(crate) fn maximal_exact(c: &Compiled, threads: usize) -> Vec<RatedSet> {
    debug_assert!(c.pairwise_exact);
    let n = c.num_couples();
    // Top-level fan-out: branch on every couple v in id order with no pivot,
    // so the jobs are independent and their order is the sequential order.
    // Job v explores exactly the maximal sets whose lowest-id couple is v
    // among the not-yet-excluded ones: P = later couples compatible with v,
    // X = earlier couples compatible with v.
    run_jobs(n, threads, |v| {
        let compat = c.compat_row(v);
        let mut p = c.zero_mask();
        let mut x = c.zero_mask();
        for u in iter_bits(compat) {
            if u > v {
                set_bit(&mut p, u);
            } else if u < v {
                set_bit(&mut x, u);
            }
        }
        let mut out = Vec::new();
        let mut stack = vec![v];
        let mut rmask = c.zero_mask();
        set_bit(&mut rmask, v);
        bron_kerbosch_exact(c, &mut stack, &mut rmask, p, x, &mut out);
        out
    })
}

fn bron_kerbosch_exact(
    c: &Compiled,
    stack: &mut Vec<usize>,
    rmask: &mut Mask,
    mut p: Mask,
    mut x: Mask,
    out: &mut Vec<RatedSet>,
) {
    if is_empty(&p) {
        if is_empty(&x) {
            emit_if_max_rates(c, stack, rmask, out);
        }
        return;
    }
    // Pivot u ∈ P ∪ X with the most candidates compatible with it (first
    // maximum wins — deterministic); only candidates *conflicting* with u
    // need branching: any maximal set missing all of them could take u.
    let mut pivot = usize::MAX;
    let mut best = 0;
    for u in iter_bits(&p).chain(iter_bits(&x)) {
        let score = and_count(&p, c.compat_row(u));
        if pivot == usize::MAX || score > best {
            pivot = u;
            best = score;
        }
    }
    let branch: Vec<usize> = iter_bits(&p)
        .filter(|&v| test_bit(c.conflict_row(pivot), v))
        .collect();
    for v in branch {
        let mut p2 = c.zero_mask();
        let mut x2 = c.zero_mask();
        and_into(&p, c.compat_row(v), &mut p2);
        and_into(&x, c.compat_row(v), &mut x2);
        stack.push(v);
        set_bit(rmask, v);
        bron_kerbosch_exact(c, stack, rmask, p2, x2, out);
        clear_bit(rmask, v);
        stack.pop();
        clear_bit(&mut p, v);
        set_bit(&mut x, v);
    }
}

/// Emits the set unless some member's rate can be raised: couple `h` (a
/// higher rate of the same link — couples are stored rates-descending, so
/// `h < v` within the link's range) is admissible against the rest of the
/// set iff its conflict row misses `R \ {v}`.
fn emit_if_max_rates(c: &Compiled, stack: &[usize], rmask: &mut Mask, out: &mut Vec<RatedSet>) {
    for &v in stack {
        let link = c.couple_link[v];
        clear_bit(rmask, v);
        let raisable = (c.offsets[link]..v).any(|h| disjoint(c.conflict_row(h), rmask));
        set_bit(rmask, v);
        if raisable {
            return;
        }
    }
    out.push(
        stack
            .iter()
            .map(|&v| (c.links[c.couple_link[v]], c.couple_rate[v]))
            .collect(),
    );
}

// ---------------------------------------------------------------------------
// Maximal independent sets, hybrid mode: membership search with maximality
// checked against the lifted set at each leaf.
// ---------------------------------------------------------------------------

/// Maximal independent sets of a rate-independent model.
///
/// Membership search at the lowest rates (masks veto pairwise conflicts, the
/// model confirms jointly), then each emitted membership set is lifted to
/// maximum rates and tested for insertions **against the lifted set**, not
/// the lowest-rate one. The distinction matters under additive interference:
/// a link can be insertable next to members at their lowest rates yet
/// intolerable to a member already lifted to its maximum rate — such a set
/// *is* maximal by §2.4, so candidate-set pruning keyed on lowest-rate
/// insertability (Bron–Kerbosch `X`-pruning) would wrongly drop it. Checking
/// insertions at each candidate's lowest rate only is exact: interference on
/// the members does not depend on the newcomer's rate, and the newcomer's
/// own SINR threshold is weakest there, so insertable-at-any-rate ⟺
/// insertable-at-lowest. The lift makes the rate-raise half of maximality
/// vacuous for the same reason.
pub(crate) fn maximal_hybrid<M: LinkRateModel>(model: &M, c: &Compiled) -> Vec<RatedSet> {
    let mut out = Vec::new();
    let mut assignment = Vec::new();
    let mut members = Vec::new();
    let mut chosen = c.zero_mask();
    descend_max_hybrid(
        model,
        c,
        &mut assignment,
        &mut members,
        &mut chosen,
        0,
        &mut out,
    );
    out
}

fn descend_max_hybrid<M: LinkRateModel>(
    model: &M,
    c: &Compiled,
    assignment: &mut Vec<(LinkId, Rate)>,
    members: &mut Vec<usize>,
    chosen: &mut Mask,
    index: usize,
    out: &mut Vec<RatedSet>,
) {
    if index == c.num_links() {
        if !assignment.is_empty() {
            emit_if_unextendable(model, c, members, assignment, chosen, out);
        }
        return;
    }
    descend_max_hybrid(model, c, assignment, members, chosen, index + 1, out);
    let low = c.lowest_couple(index);
    if !c.compatible_with(low, chosen) {
        return; // pairwise conflict ⇒ jointly inadmissible (downward closure)
    }
    let Some(&lowest) = c.rates[index].last() else {
        return; // a rate-less link can join no set
    };
    assignment.push((c.links[index], lowest));
    if c.pairwise_exact || model.admissible(assignment) {
        members.push(index);
        set_bit(chosen, low);
        descend_max_hybrid(model, c, assignment, members, chosen, index + 1, out);
        clear_bit(chosen, low);
        members.pop();
    }
    assignment.pop();
}

/// Lifts the membership set and emits it unless some outside link can join
/// the **lifted** set at its lowest rate. The mask veto stays sound against
/// lifted members: a pairwise conflict at the lowest rates can only tighten
/// when the member's rate (hence its SINR threshold) rises.
fn emit_if_unextendable<M: LinkRateModel>(
    model: &M,
    c: &Compiled,
    members: &[usize],
    assignment: &[(LinkId, Rate)],
    chosen: &Mask,
    out: &mut Vec<RatedSet>,
) {
    let lifted = lift_to_max(model, c, members, assignment);
    let mut probe: Vec<(LinkId, Rate)> = lifted.couples().to_vec();
    let mut next_member = 0;
    for v in 0..c.num_links() {
        if members.get(next_member) == Some(&v) {
            next_member += 1;
            continue;
        }
        if !c.compatible_with(c.lowest_couple(v), chosen) {
            continue;
        }
        // Pairwise compatible with every member; for pairwise-exact models
        // that already means insertable.
        if c.pairwise_exact {
            return;
        }
        let Some(&lowest) = c.rates[v].last() else {
            continue; // a rate-less link can never be inserted
        };
        probe.push((c.links[v], lowest));
        let insertable = model.admissible(&probe);
        probe.pop();
        if insertable {
            return;
        }
    }
    out.push(lifted);
}
