//! Enumeration of admissible rated sets and maximal independent sets.
//!
//! Two implementations sit behind the public functions:
//!
//! * the **generic backtracker** (this module), which only needs the
//!   [`LinkRateModel`] callbacks and works for any model, and
//! * the **compiled engine** ([`crate::engine`]), which first snapshots the
//!   model into word-packed conflict bitmasks ([`crate::compiled`]) and then
//!   searches over flat arrays — with maximality detected *during* the
//!   search and an optional thread fan-out.
//!
//! [`EngineKind`] selects between them; every engine produces byte-identical
//! output, so callers may treat the choice as a pure performance knob.

use crate::compiled::Compiled;
use crate::concurrent::RatedSet;
use crate::engine;
use awb_net::{LinkId, LinkRateModel};
use awb_phy::Rate;
use std::collections::BTreeMap;

/// Which enumeration engine to run. Every variant produces **byte-identical
/// results** — same sets, same order — so this is purely a performance
/// choice and is deliberately excluded from result-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// The best available engine, sequential: the compiled bitset engine for
    /// models whose pairwise conflicts decide admissibility exactly
    /// ([`LinkRateModel::pairwise_admissibility_exact`]), the mask-pruned
    /// hybrid for rate-independent models, and the generic backtracker
    /// otherwise.
    #[default]
    Auto,
    /// The reference generic backtracker. Always available; the compiled
    /// engines are property-tested byte-identical against it.
    Generic,
    /// The compiled engine with a worker pool of the given size (`0` means
    /// one worker per available core). Only the exact bitset searches fan
    /// out — the hybrid and generic fallbacks run sequentially regardless —
    /// and the fan-out merges deterministically, so results do not depend on
    /// the thread count.
    Compiled(usize),
}

/// Options for [`enumerate_admissible`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationOptions {
    /// Drop sets whose throughput vector is dominated by another set's
    /// (componentwise ≤ with the same or fewer links). Dominated sets never
    /// change the feasibility LP, so this defaults to `true`; the
    /// `enum_pruning` ablation bench turns it off.
    pub prune_dominated: bool,
    /// Cap on the number of links per set; `None` means unbounded.
    pub max_set_size: Option<usize>,
    /// Which engine runs the search (a pure performance knob; results are
    /// identical across engines).
    pub engine: EngineKind,
}

impl Default for EnumerationOptions {
    fn default() -> Self {
        EnumerationOptions {
            prune_dominated: true,
            max_set_size: None,
            engine: EngineKind::default(),
        }
    }
}

/// Enumerates every non-empty admissible [`RatedSet`] over `universe`
/// (deduplicated; see [`EnumerationOptions`] for pruning).
///
/// Admissibility is downward closed, so the search prunes any partial
/// assignment that is already inadmissible. For models with rate-independent
/// interference ([`LinkRateModel::rate_independent_interference`]) the search
/// branches on membership only and assigns each link its maximum supported
/// rate within the set — lower-rate variants are dominated and, because
/// admissibility of membership does not depend on chosen rates, never enable
/// additional links.
///
/// Links of `universe` that support no rate at all are skipped.
///
/// # Panics
///
/// Panics if `universe` contains duplicate links.
pub fn enumerate_admissible<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    options: &EnumerationOptions,
) -> Vec<RatedSet> {
    assert_unique(universe);
    let out = match options.engine {
        EngineKind::Generic => enumerate_generic(model, universe, options),
        EngineKind::Auto => enumerate_compiled(model, universe, options, 1),
        EngineKind::Compiled(threads) => {
            enumerate_compiled(model, universe, options, engine::resolve_threads(threads))
        }
    };
    if options.prune_dominated {
        pareto_filter(out)
    } else {
        out
    }
}

fn assert_unique(universe: &[LinkId]) {
    let mut sorted = universe.to_vec();
    sorted.sort();
    sorted.dedup();
    assert!(
        sorted.len() == universe.len(),
        "universe contains duplicate links"
    );
}

/// Compiled-engine dispatch: pick the strongest search the model's snapshot
/// flags justify, falling back to the generic backtracker when neither
/// applies. Checked *before* paying for the snapshot.
fn enumerate_compiled<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    options: &EnumerationOptions,
    threads: usize,
) -> Vec<RatedSet> {
    if model.rate_independent_interference() {
        let compiled = Compiled::new(&model.conflict_snapshot(universe));
        engine::enumerate_hybrid(model, &compiled, options)
    } else if model.pairwise_admissibility_exact() {
        let compiled = Compiled::new(&model.conflict_snapshot(universe));
        engine::enumerate_exact(&compiled, options, threads)
    } else {
        enumerate_generic(model, universe, options)
    }
}

fn enumerate_generic<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    options: &EnumerationOptions,
) -> Vec<RatedSet> {
    // Per-link rate choices (descending). Dead links are dropped.
    let live: Vec<(LinkId, Vec<Rate>)> = universe
        .iter()
        .map(|&l| (l, model.alone_rates(l)))
        .filter(|(_, rs)| !rs.is_empty())
        .collect();

    let mut out: Vec<RatedSet> = Vec::new();
    let mut assignment: Vec<(LinkId, Rate)> = Vec::new();
    if model.rate_independent_interference() {
        // Branch on membership at the lowest rates, then lift to max rates.
        // The link→live-row index is built once per enumeration; the lift at
        // every emitted leaf uses it instead of scanning `live`.
        let index_of: BTreeMap<LinkId, usize> =
            live.iter().enumerate().map(|(i, &(l, _))| (l, i)).collect();
        enumerate_membership(
            model,
            &live,
            &index_of,
            0,
            &mut assignment,
            options,
            &mut out,
        );
    } else {
        enumerate_rated(model, &live, 0, &mut assignment, options, &mut out);
    }
    out
}

fn enumerate_rated<M: LinkRateModel>(
    model: &M,
    live: &[(LinkId, Vec<Rate>)],
    index: usize,
    assignment: &mut Vec<(LinkId, Rate)>,
    options: &EnumerationOptions,
    out: &mut Vec<RatedSet>,
) {
    if index == live.len() {
        if !assignment.is_empty() {
            out.push(RatedSet::new(assignment.clone()));
        }
        return;
    }
    // Branch 1: skip this link.
    enumerate_rated(model, live, index + 1, assignment, options, out);
    // Branch 2: include at each admissible rate.
    if options
        .max_set_size
        .is_some_and(|cap| assignment.len() >= cap)
    {
        return;
    }
    let (link, rates) = &live[index];
    for &r in rates {
        assignment.push((*link, r));
        if model.admissible(assignment) {
            enumerate_rated(model, live, index + 1, assignment, options, out);
        }
        assignment.pop();
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate_membership<M: LinkRateModel>(
    model: &M,
    live: &[(LinkId, Vec<Rate>)],
    index_of: &BTreeMap<LinkId, usize>,
    index: usize,
    assignment: &mut Vec<(LinkId, Rate)>,
    options: &EnumerationOptions,
    out: &mut Vec<RatedSet>,
) {
    if index == live.len() {
        if !assignment.is_empty() {
            out.push(lift_to_max_rates(model, live, index_of, assignment));
        }
        return;
    }
    enumerate_membership(model, live, index_of, index + 1, assignment, options, out);
    if options
        .max_set_size
        .is_some_and(|cap| assignment.len() >= cap)
    {
        return;
    }
    let (link, rates) = &live[index];
    let Some(&lowest) = rates.last() else {
        return; // a rate-less link can join no set
    };
    assignment.push((*link, lowest));
    if model.admissible(assignment) {
        enumerate_membership(model, live, index_of, index + 1, assignment, options, out);
    }
    assignment.pop();
}

/// For rate-independent-interference models: replace each link's placeholder
/// rate with the maximum rate admissible while the rest of the set is active.
fn lift_to_max_rates<M: LinkRateModel>(
    model: &M,
    live: &[(LinkId, Vec<Rate>)],
    index_of: &BTreeMap<LinkId, usize>,
    assignment: &[(LinkId, Rate)],
) -> RatedSet {
    let mut lifted = assignment.to_vec();
    for i in 0..lifted.len() {
        let link = lifted[i].0;
        let rates = &live[index_of[&link]].1;
        // Rates are descending: the first admissible one is the max. Because
        // interference is rate-independent, testing with the others at their
        // current (any) rates is exact.
        for &r in rates.iter() {
            lifted[i].1 = r;
            if model.admissible(&lifted) {
                break;
            }
        }
    }
    RatedSet::new(lifted)
}

/// Keeps only undominated sets (in their original order).
///
/// Skyline sweep: sets are visited by descending `(cardinality, total
/// throughput)` — a strict dominator always sorts ahead of what it dominates
/// (domination implies ≥ on both components, with equality on both only for
/// identical sets, where the original-index tiebreak keeps the earlier one
/// first, matching the old keep-first semantics). Each set is therefore
/// checked against the *kept* prefix only; domination is transitive, so a
/// dominator that was itself dropped is covered by whatever dropped it.
fn pareto_filter(sets: Vec<RatedSet>) -> Vec<RatedSet> {
    if sets.len() <= 1 {
        return sets;
    }
    let score: Vec<(usize, f64)> = sets
        .iter()
        .map(|s| {
            let sum: f64 = s.couples().iter().map(|&(_, r)| r.as_mbps()).sum();
            (s.len(), sum)
        })
        .collect();
    let mut order: Vec<usize> = (0..sets.len()).collect();
    order.sort_by(|&i, &j| {
        score[j]
            .0
            .cmp(&score[i].0)
            .then_with(|| score[j].1.total_cmp(&score[i].1))
            .then_with(|| i.cmp(&j))
    });
    let mut keep = vec![false; sets.len()];
    let mut kept: Vec<usize> = Vec::new();
    for &i in &order {
        if !kept.iter().any(|&k| sets[k].dominates(&sets[i])) {
            keep[i] = true;
            kept.push(i);
        }
    }
    sets.into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s))
        .collect()
}

/// The paper's *maximal independent sets with maximum supported rates*
/// (§2.4): admissible sets where (a) no single link's rate can be raised and
/// (b) no further link of `universe` can be inserted at any positive rate.
///
/// By Proposition 3 these suffice for the feasibility condition (Eq. 4).
///
/// Output is sorted canonically (by couple vector); every engine produces
/// the identical `Vec`. Equivalent to
/// [`maximal_independent_sets_with`]`(model, universe, EngineKind::Auto)`.
///
/// # Panics
///
/// Panics if `universe` contains duplicate links.
pub fn maximal_independent_sets<M: LinkRateModel>(model: &M, universe: &[LinkId]) -> Vec<RatedSet> {
    maximal_independent_sets_with(model, universe, EngineKind::Auto)
}

/// [`maximal_independent_sets`] with an explicit engine choice.
///
/// `EngineKind::Auto` and `EngineKind::Compiled` detect maximality *during*
/// the search (a Bron–Kerbosch-style recursion over the compiled conflict
/// masks) instead of enumerating every admissible set and post-filtering;
/// `EngineKind::Generic` is the reference enumerate-then-filter pipeline.
///
/// # Panics
///
/// Panics if `universe` contains duplicate links.
pub fn maximal_independent_sets_with<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    engine_kind: EngineKind,
) -> Vec<RatedSet> {
    assert_unique(universe);
    let mut out = match engine_kind {
        EngineKind::Generic => maximal_generic(model, universe),
        EngineKind::Auto => maximal_compiled(model, universe, 1),
        EngineKind::Compiled(threads) => {
            maximal_compiled(model, universe, engine::resolve_threads(threads))
        }
    };
    out.sort_by_cached_key(canonical_key);
    out
}

/// Sort key making the maximal-set output order engine-independent: couples
/// ordered by link, ties broken toward the *higher* rate first. `Rate` is a
/// positive finite f64, so `to_bits` is order-preserving.
fn canonical_key(set: &RatedSet) -> Vec<(usize, std::cmp::Reverse<u64>)> {
    set.couples()
        .iter()
        .map(|&(l, r)| (l.index(), std::cmp::Reverse(r.as_mbps().to_bits())))
        .collect()
}

fn maximal_compiled<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    threads: usize,
) -> Vec<RatedSet> {
    if model.rate_independent_interference() {
        let compiled = Compiled::new(&model.conflict_snapshot(universe));
        engine::maximal_hybrid(model, &compiled)
    } else if model.pairwise_admissibility_exact() {
        let compiled = Compiled::new(&model.conflict_snapshot(universe));
        engine::maximal_exact(&compiled, threads)
    } else {
        maximal_generic(model, universe)
    }
}

fn maximal_generic<M: LinkRateModel>(model: &M, universe: &[LinkId]) -> Vec<RatedSet> {
    let all = enumerate_admissible(
        model,
        universe,
        &EnumerationOptions {
            prune_dominated: false,
            max_set_size: None,
            engine: EngineKind::Generic,
        },
    );
    // Alone rates memoized once per universe: `is_maximal` consults them for
    // every (set, link) pair and the model recomputes them on every call.
    let alone: BTreeMap<LinkId, Vec<Rate>> = universe
        .iter()
        .map(|&l| (l, model.alone_rates(l)))
        .collect();
    all.into_iter()
        .filter(|s| is_maximal(model, universe, &alone, s))
        .collect()
}

fn is_maximal<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    alone: &BTreeMap<LinkId, Vec<Rate>>,
    set: &RatedSet,
) -> bool {
    // (a) No single rate can be raised.
    for &(link, rate) in set.couples() {
        for &higher in alone[&link].iter().filter(|&&r| r > rate) {
            if model.admissible(set.with_rate(link, higher).couples()) {
                return false;
            }
        }
    }
    // (b) No link can be inserted at any positive rate.
    for &link in universe {
        if set.contains(link) {
            continue;
        }
        for &r in &alone[&link] {
            if model.admissible(set.with(link, r).couples()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// A line of `n` disjoint links (2n nodes), no conflicts declared.
    fn free_links(n: usize, rates: &[Rate]) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, rates);
        }
        (b.build(), links)
    }

    #[test]
    fn independent_links_collapse_to_one_pareto_set() {
        let (m, links) = free_links(3, &[r(54.0)]);
        let sets = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 3);
        // Without pruning: all 2^3 - 1 subsets.
        let all = enumerate_admissible(
            &m,
            &links,
            &EnumerationOptions {
                prune_dominated: false,
                ..EnumerationOptions::default()
            },
        );
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn fully_conflicting_links_stay_singletons() {
        let (m0, links) = free_links(3, &[r(54.0)]);
        // Rebuild with all pairs conflicting.
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0)]);
        }
        b = b
            .conflict_all(links[0], links[1])
            .conflict_all(links[0], links[2])
            .conflict_all(links[1], links[2]);
        let m = b.build();
        let sets = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        assert_eq!(sets.len(), 3);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn rate_dependent_conflict_produces_both_maximal_variants() {
        // L0@54 conflicts with L1@54; nothing else conflicts. Maximal sets:
        // {(L0,54),(L1,36)}, {(L0,36),(L1,54)}, and... raising either from
        // (36,36) is possible, so (36,36) is not maximal. {(L0,54)} alone is
        // not maximal (L1@36 can be inserted).
        let (m0, links) = free_links(2, &[r(54.0), r(36.0)]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0), r(36.0)]);
        }
        b = b.conflict_at(links[0], r(54.0), links[1], r(54.0));
        let m = b.build();
        let maximal = maximal_independent_sets(&m, &links);
        assert_eq!(maximal.len(), 2, "{maximal:?}");
        for s in &maximal {
            let rates: Vec<f64> = links
                .iter()
                .map(|&l| s.rate_of(l).unwrap().as_mbps())
                .collect();
            assert!(rates == vec![54.0, 36.0] || rates == vec![36.0, 54.0]);
        }
    }

    #[test]
    fn engines_agree_on_rate_dependent_conflicts() {
        let (m0, links) = free_links(3, &[r(54.0), r(36.0)]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0), r(36.0)]);
        }
        b = b
            .conflict_at(links[0], r(54.0), links[1], r(54.0))
            .conflict_all(links[1], links[2]);
        let m = b.build();
        for engine_kind in [
            EngineKind::Auto,
            EngineKind::Compiled(1),
            EngineKind::Compiled(4),
        ] {
            for prune in [false, true] {
                for cap in [None, Some(2)] {
                    let reference = enumerate_admissible(
                        &m,
                        &links,
                        &EnumerationOptions {
                            prune_dominated: prune,
                            max_set_size: cap,
                            engine: EngineKind::Generic,
                        },
                    );
                    let got = enumerate_admissible(
                        &m,
                        &links,
                        &EnumerationOptions {
                            prune_dominated: prune,
                            max_set_size: cap,
                            engine: engine_kind,
                        },
                    );
                    assert_eq!(got, reference, "{engine_kind:?} prune={prune} cap={cap:?}");
                }
            }
            assert_eq!(
                maximal_independent_sets_with(&m, &links, engine_kind),
                maximal_independent_sets_with(&m, &links, EngineKind::Generic),
                "{engine_kind:?}"
            );
        }
    }

    #[test]
    fn dominance_pruning_preserves_maximal_sets() {
        let (m0, links) = free_links(2, &[r(54.0), r(36.0)]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0), r(36.0)]);
        }
        b = b.conflict_at(links[0], r(54.0), links[1], r(54.0));
        let m = b.build();
        let pareto = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        let maximal = maximal_independent_sets(&m, &links);
        for ms in &maximal {
            assert!(
                pareto.iter().any(|p| p == ms),
                "maximal set {ms} missing from pareto pool"
            );
        }
    }

    #[test]
    fn max_set_size_caps_cardinality() {
        let (m, links) = free_links(4, &[r(6.0)]);
        let sets = enumerate_admissible(
            &m,
            &links,
            &EnumerationOptions {
                prune_dominated: false,
                max_set_size: Some(2),
                ..EnumerationOptions::default()
            },
        );
        assert!(sets.iter().all(|s| s.len() <= 2));
        // 4 singletons + 6 pairs.
        assert_eq!(sets.len(), 10);
    }

    #[test]
    fn dead_links_are_skipped() {
        let (m0, links) = free_links(2, &[r(6.0)]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        b = b.alone_rates(links[0], &[r(6.0)]); // links[1] stays dead
        let m = b.build();
        let sets = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        assert_eq!(sets.len(), 1);
        assert!(sets[0].contains(links[0]));
    }

    #[test]
    #[should_panic(expected = "duplicate links")]
    fn duplicate_universe_panics() {
        let (m, links) = free_links(1, &[r(6.0)]);
        let _ = enumerate_admissible(&m, &[links[0], links[0]], &EnumerationOptions::default());
    }

    #[test]
    fn empty_universe_yields_no_sets() {
        let (m, _) = free_links(1, &[r(6.0)]);
        assert!(enumerate_admissible(&m, &[], &EnumerationOptions::default()).is_empty());
        assert!(maximal_independent_sets(&m, &[]).is_empty());
    }
}
