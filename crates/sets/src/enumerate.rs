//! Enumeration of admissible rated sets and maximal independent sets.

use crate::concurrent::RatedSet;
use awb_net::{LinkId, LinkRateModel};
use awb_phy::Rate;

/// Options for [`enumerate_admissible`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationOptions {
    /// Drop sets whose throughput vector is dominated by another set's
    /// (componentwise ≤ with the same or fewer links). Dominated sets never
    /// change the feasibility LP, so this defaults to `true`; the
    /// `enum_pruning` ablation bench turns it off.
    pub prune_dominated: bool,
    /// Cap on the number of links per set; `None` means unbounded.
    pub max_set_size: Option<usize>,
}

impl Default for EnumerationOptions {
    fn default() -> Self {
        EnumerationOptions {
            prune_dominated: true,
            max_set_size: None,
        }
    }
}

/// Enumerates every non-empty admissible [`RatedSet`] over `universe`
/// (deduplicated; see [`EnumerationOptions`] for pruning).
///
/// Admissibility is downward closed, so the search prunes any partial
/// assignment that is already inadmissible. For models with rate-independent
/// interference ([`LinkRateModel::rate_independent_interference`]) the search
/// branches on membership only and assigns each link its maximum supported
/// rate within the set — lower-rate variants are dominated and, because
/// admissibility of membership does not depend on chosen rates, never enable
/// additional links.
///
/// Links of `universe` that support no rate at all are skipped.
///
/// # Panics
///
/// Panics if `universe` contains duplicate links.
pub fn enumerate_admissible<M: LinkRateModel>(
    model: &M,
    universe: &[LinkId],
    options: &EnumerationOptions,
) -> Vec<RatedSet> {
    let mut sorted = universe.to_vec();
    sorted.sort();
    sorted.dedup();
    assert!(
        sorted.len() == universe.len(),
        "universe contains duplicate links"
    );

    // Per-link rate choices (descending). Dead links are dropped.
    let live: Vec<(LinkId, Vec<Rate>)> = universe
        .iter()
        .map(|&l| (l, model.alone_rates(l)))
        .filter(|(_, rs)| !rs.is_empty())
        .collect();

    let mut out: Vec<RatedSet> = Vec::new();
    if model.rate_independent_interference() {
        // Branch on membership at the lowest rates, then lift to max rates.
        let mut assignment: Vec<(LinkId, Rate)> = Vec::new();
        enumerate_membership(model, &live, 0, &mut assignment, options, &mut out);
    } else {
        let mut assignment: Vec<(LinkId, Rate)> = Vec::new();
        enumerate_rated(model, &live, 0, &mut assignment, options, &mut out);
    }

    if options.prune_dominated {
        pareto_filter(out)
    } else {
        out
    }
}

fn enumerate_rated<M: LinkRateModel>(
    model: &M,
    live: &[(LinkId, Vec<Rate>)],
    index: usize,
    assignment: &mut Vec<(LinkId, Rate)>,
    options: &EnumerationOptions,
    out: &mut Vec<RatedSet>,
) {
    if index == live.len() {
        if !assignment.is_empty() {
            out.push(RatedSet::new(assignment.clone()));
        }
        return;
    }
    // Branch 1: skip this link.
    enumerate_rated(model, live, index + 1, assignment, options, out);
    // Branch 2: include at each admissible rate.
    if options
        .max_set_size
        .is_some_and(|cap| assignment.len() >= cap)
    {
        return;
    }
    let (link, rates) = &live[index];
    for &r in rates {
        assignment.push((*link, r));
        if model.admissible(assignment) {
            enumerate_rated(model, live, index + 1, assignment, options, out);
        }
        assignment.pop();
    }
}

fn enumerate_membership<M: LinkRateModel>(
    model: &M,
    live: &[(LinkId, Vec<Rate>)],
    index: usize,
    assignment: &mut Vec<(LinkId, Rate)>,
    options: &EnumerationOptions,
    out: &mut Vec<RatedSet>,
) {
    if index == live.len() {
        if !assignment.is_empty() {
            out.push(lift_to_max_rates(model, live, assignment));
        }
        return;
    }
    enumerate_membership(model, live, index + 1, assignment, options, out);
    if options
        .max_set_size
        .is_some_and(|cap| assignment.len() >= cap)
    {
        return;
    }
    let (link, rates) = &live[index];
    let lowest = *rates.last().expect("live links have rates");
    assignment.push((*link, lowest));
    if model.admissible(assignment) {
        enumerate_membership(model, live, index + 1, assignment, options, out);
    }
    assignment.pop();
}

/// For rate-independent-interference models: replace each link's placeholder
/// rate with the maximum rate admissible while the rest of the set is active.
fn lift_to_max_rates<M: LinkRateModel>(
    model: &M,
    live: &[(LinkId, Vec<Rate>)],
    assignment: &[(LinkId, Rate)],
) -> RatedSet {
    let mut lifted = assignment.to_vec();
    for i in 0..lifted.len() {
        let link = lifted[i].0;
        let rates = &live
            .iter()
            .find(|(l, _)| *l == link)
            .expect("assignment links come from live")
            .1;
        // Rates are descending: the first admissible one is the max. Because
        // interference is rate-independent, testing with the others at their
        // current (any) rates is exact.
        for &r in rates.iter() {
            lifted[i].1 = r;
            if model.admissible(&lifted) {
                break;
            }
        }
    }
    RatedSet::new(lifted)
}

/// Keeps only undominated sets. Equal sets cannot occur (each link subset +
/// rate combination is visited once).
fn pareto_filter(sets: Vec<RatedSet>) -> Vec<RatedSet> {
    let mut keep: Vec<bool> = vec![true; sets.len()];
    for i in 0..sets.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..sets.len() {
            if i != j && keep[i] && keep[j] && sets[j].dominates(&sets[i]) {
                // Strict domination check: equal sets were deduplicated by
                // construction, but mutual domination can still occur when
                // vectors coincide; keep the first.
                if sets[i].dominates(&sets[j]) && i < j {
                    continue;
                }
                keep[i] = false;
            }
        }
    }
    sets.into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s))
        .collect()
}

/// The paper's *maximal independent sets with maximum supported rates*
/// (§2.4): admissible sets where (a) no single link's rate can be raised and
/// (b) no further link of `universe` can be inserted at any positive rate.
///
/// By Proposition 3 these suffice for the feasibility condition (Eq. 4).
pub fn maximal_independent_sets<M: LinkRateModel>(model: &M, universe: &[LinkId]) -> Vec<RatedSet> {
    let all = enumerate_admissible(
        model,
        universe,
        &EnumerationOptions {
            prune_dominated: false,
            max_set_size: None,
        },
    );
    all.into_iter()
        .filter(|s| is_maximal(model, universe, s))
        .collect()
}

fn is_maximal<M: LinkRateModel>(model: &M, universe: &[LinkId], set: &RatedSet) -> bool {
    // (a) No single rate can be raised.
    for &(link, rate) in set.couples() {
        for higher in model.alone_rates(link).into_iter().filter(|&r| r > rate) {
            if model.admissible(set.with_rate(link, higher).couples()) {
                return false;
            }
        }
    }
    // (b) No link can be inserted at any positive rate.
    for &link in universe {
        if set.contains(link) {
            continue;
        }
        for r in model.alone_rates(link) {
            if model.admissible(set.with(link, r).couples()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// A line of `n` disjoint links (2n nodes), no conflicts declared.
    fn free_links(n: usize, rates: &[Rate]) -> (DeclarativeModel, Vec<LinkId>) {
        let mut t = Topology::new();
        let mut links = Vec::new();
        for i in 0..n {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut b = DeclarativeModel::builder(t);
        for &l in &links {
            b = b.alone_rates(l, rates);
        }
        (b.build(), links)
    }

    #[test]
    fn independent_links_collapse_to_one_pareto_set() {
        let (m, links) = free_links(3, &[r(54.0)]);
        let sets = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 3);
        // Without pruning: all 2^3 - 1 subsets.
        let all = enumerate_admissible(
            &m,
            &links,
            &EnumerationOptions {
                prune_dominated: false,
                max_set_size: None,
            },
        );
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn fully_conflicting_links_stay_singletons() {
        let (m0, links) = free_links(3, &[r(54.0)]);
        // Rebuild with all pairs conflicting.
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0)]);
        }
        b = b
            .conflict_all(links[0], links[1])
            .conflict_all(links[0], links[2])
            .conflict_all(links[1], links[2]);
        let m = b.build();
        let sets = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        assert_eq!(sets.len(), 3);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn rate_dependent_conflict_produces_both_maximal_variants() {
        // L0@54 conflicts with L1@54; nothing else conflicts. Maximal sets:
        // {(L0,54),(L1,36)}, {(L0,36),(L1,54)}, and... raising either from
        // (36,36) is possible, so (36,36) is not maximal. {(L0,54)} alone is
        // not maximal (L1@36 can be inserted).
        let (m0, links) = free_links(2, &[r(54.0), r(36.0)]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0), r(36.0)]);
        }
        b = b.conflict_at(links[0], r(54.0), links[1], r(54.0));
        let m = b.build();
        let maximal = maximal_independent_sets(&m, &links);
        assert_eq!(maximal.len(), 2, "{maximal:?}");
        for s in &maximal {
            let rates: Vec<f64> = links
                .iter()
                .map(|&l| s.rate_of(l).unwrap().as_mbps())
                .collect();
            assert!(rates == vec![54.0, 36.0] || rates == vec![36.0, 54.0]);
        }
    }

    #[test]
    fn dominance_pruning_preserves_maximal_sets() {
        let (m0, links) = free_links(2, &[r(54.0), r(36.0)]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        for &l in &links {
            b = b.alone_rates(l, &[r(54.0), r(36.0)]);
        }
        b = b.conflict_at(links[0], r(54.0), links[1], r(54.0));
        let m = b.build();
        let pareto = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        let maximal = maximal_independent_sets(&m, &links);
        for ms in &maximal {
            assert!(
                pareto.iter().any(|p| p == ms),
                "maximal set {ms} missing from pareto pool"
            );
        }
    }

    #[test]
    fn max_set_size_caps_cardinality() {
        let (m, links) = free_links(4, &[r(6.0)]);
        let sets = enumerate_admissible(
            &m,
            &links,
            &EnumerationOptions {
                prune_dominated: false,
                max_set_size: Some(2),
            },
        );
        assert!(sets.iter().all(|s| s.len() <= 2));
        // 4 singletons + 6 pairs.
        assert_eq!(sets.len(), 10);
    }

    #[test]
    fn dead_links_are_skipped() {
        let (m0, links) = free_links(2, &[r(6.0)]);
        let mut b = DeclarativeModel::builder(m0.topology().clone());
        b = b.alone_rates(links[0], &[r(6.0)]); // links[1] stays dead
        let m = b.build();
        let sets = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        assert_eq!(sets.len(), 1);
        assert!(sets[0].contains(links[0]));
    }

    #[test]
    #[should_panic(expected = "duplicate links")]
    fn duplicate_universe_panics() {
        let (m, links) = free_links(1, &[r(6.0)]);
        let _ = enumerate_admissible(&m, &[links[0], links[0]], &EnumerationOptions::default());
    }

    #[test]
    fn empty_universe_yields_no_sets() {
        let (m, _) = free_links(1, &[r(6.0)]);
        assert!(enumerate_admissible(&m, &[], &EnumerationOptions::default()).is_empty());
    }
}
