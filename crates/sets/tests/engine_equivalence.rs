//! Property tests pinning the compiled engines to the generic backtracker:
//! on random declarative models (exact bitset mode, including per-rate-pair
//! conflicts) and random SINR models (hybrid mode, additive interference),
//! every engine must return the **identical `Vec`** — same sets, same order —
//! for both `enumerate_admissible` and `maximal_independent_sets_with`, at
//! any thread count.

use awb_net::{DeclarativeModel, LinkId, SinrModel, Topology};
use awb_phy::{Phy, Rate};
use awb_sets::{
    enumerate_admissible, maximal_independent_sets_with, EngineKind, EnumerationOptions,
};
use proptest::prelude::*;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

const ENGINES: [EngineKind; 3] = [
    EngineKind::Auto,
    EngineKind::Compiled(2),
    EngineKind::Compiled(4),
];

/// A random declarative model over `n` disjoint links: each link gets one or
/// two rates; each unordered pair independently gets "no conflict",
/// "conflict at all rates", "conflict only when both use the high rate", or
/// "conflict whenever the first uses the high rate" (asymmetric, stated per
/// rate pair). All kinds are rate-monotone.
#[derive(Debug, Clone)]
struct RandomModel {
    n: usize,
    /// 0 = none, 1 = all, 2 = high-high only, 3 = first-high vs any.
    pair_kind: Vec<u8>,
    two_rates: Vec<bool>,
}

fn random_model(max_links: usize) -> impl Strategy<Value = RandomModel> {
    (2usize..=max_links)
        .prop_flat_map(|n| {
            let pairs = n * (n - 1) / 2;
            (
                Just(n),
                proptest::collection::vec(0u8..=3, pairs),
                proptest::collection::vec(any::<bool>(), n),
            )
        })
        .prop_map(|(n, pair_kind, two_rates)| RandomModel {
            n,
            pair_kind,
            two_rates,
        })
}

fn build(m: &RandomModel) -> (DeclarativeModel, Vec<LinkId>) {
    let hi = r(54.0);
    let lo = r(36.0);
    let mut t = Topology::new();
    let mut links = Vec::new();
    for i in 0..m.n {
        let a = t.add_node(i as f64 * 10.0, 0.0);
        let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
        links.push(t.add_link(a, b).unwrap());
    }
    let mut b = DeclarativeModel::builder(t);
    for (i, &l) in links.iter().enumerate() {
        if m.two_rates[i] {
            b = b.alone_rates(l, &[hi, lo]);
        } else {
            b = b.alone_rates(l, &[hi]);
        }
    }
    let mut k = 0;
    for i in 0..m.n {
        for j in (i + 1)..m.n {
            match m.pair_kind[k] {
                1 => b = b.conflict_all(links[i], links[j]),
                2 => b = b.conflict_at(links[i], hi, links[j], hi),
                3 => {
                    b = b
                        .conflict_at(links[i], hi, links[j], hi)
                        .conflict_at(links[i], hi, links[j], lo);
                }
                _ => {}
            }
            k += 1;
        }
    }
    (b.build(), links)
}

/// A random SINR instance: two parallel chains of links at a random lane
/// separation, hop lengths drawn per hop. Interference is additive, so this
/// exercises the hybrid (mask-pruned, jointly confirmed) engine path; long
/// hops go dead, exercising live-link filtering.
#[derive(Debug, Clone)]
struct RandomSinr {
    hop_lengths: Vec<f64>,
    lanes: usize,
    lane_gap: f64,
}

fn random_sinr() -> impl Strategy<Value = RandomSinr> {
    (
        proptest::collection::vec(25.0f64..120.0, 1..=4),
        1usize..=2,
        30.0f64..200.0,
    )
        .prop_map(|(hop_lengths, lanes, lane_gap)| RandomSinr {
            hop_lengths,
            lanes,
            lane_gap,
        })
}

fn build_sinr(m: &RandomSinr) -> (SinrModel, Vec<LinkId>) {
    let mut t = Topology::new();
    let mut links = Vec::new();
    for lane in 0..m.lanes {
        let y = lane as f64 * m.lane_gap;
        let mut x = 0.0;
        let mut prev = t.add_node(x, y);
        for &len in &m.hop_lengths {
            x += len;
            let next = t.add_node(x, y);
            links.push(t.add_link(prev, next).unwrap());
            prev = next;
        }
    }
    (SinrModel::new(t, Phy::paper_default()), links)
}

fn check_all_engines(
    model: &impl awb_net::LinkRateModel,
    links: &[LinkId],
) -> Result<(), TestCaseError> {
    for engine in ENGINES {
        for prune in [false, true] {
            for cap in [None, Some(2)] {
                let opts = |engine| EnumerationOptions {
                    prune_dominated: prune,
                    max_set_size: cap,
                    engine,
                };
                let reference = enumerate_admissible(model, links, &opts(EngineKind::Generic));
                let got = enumerate_admissible(model, links, &opts(engine));
                prop_assert_eq!(
                    got,
                    reference,
                    "enumerate mismatch: {:?} prune={} cap={:?}",
                    engine,
                    prune,
                    cap
                );
            }
        }
        let reference = maximal_independent_sets_with(model, links, EngineKind::Generic);
        let got = maximal_independent_sets_with(model, links, engine);
        prop_assert_eq!(got, reference, "maximal mismatch: {:?}", engine);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn declarative_engines_are_byte_identical(rm in random_model(8)) {
        let (m, links) = build(&rm);
        check_all_engines(&m, &links)?;
    }

    #[test]
    fn sinr_engines_are_byte_identical(rm in random_sinr()) {
        let (m, links) = build_sinr(&rm);
        check_all_engines(&m, &links)?;
    }
}

/// Determinism regression (audit rule R3): two fresh enumerations of the same
/// model must return identical `Vec`s — same sets, same order. The pool feeds
/// LP column order and serialized service output, so iteration-order
/// nondeterminism here would leak all the way into response bytes.
#[test]
fn repeated_enumeration_is_order_identical() {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..5).map(|i| t.add_node((i * 40) as f64, 0.0)).collect();
    let links: Vec<_> = (0..4)
        .map(|i| t.add_link(nodes[i], nodes[i + 1]).unwrap())
        .collect();
    let mut b = DeclarativeModel::builder(t);
    for &l in &links {
        b = b.alone_rates(l, &[r(54.0), r(36.0)]);
    }
    for w in links.windows(2) {
        b = b.conflict_all(w[0], w[1]);
    }
    let model = b.build();
    let options = EnumerationOptions::default();
    let first = enumerate_admissible(&model, &links, &options);
    for _ in 0..5 {
        let again = enumerate_admissible(&model, &links, &options);
        assert_eq!(again, first, "enumeration order changed between runs");
    }
}
