//! Property tests for set enumeration: soundness, maximality, dominance.

use awb_net::{DeclarativeModel, LinkId, LinkRateModel, Topology};
use awb_phy::Rate;
use awb_sets::{
    enumerate_admissible, is_clique, local_cliques, maximal_independent_sets,
    maximal_rated_cliques, EnumerationOptions, RatedSet,
};
use proptest::prelude::*;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

/// A random declarative model over `n` disjoint links: each link gets one or
/// two rates; each unordered pair independently gets "no conflict",
/// "conflict at all rates", or "conflict only when both use the high rate".
#[derive(Debug, Clone)]
struct RandomModel {
    n: usize,
    /// 0 = none, 1 = all, 2 = high-high only.
    pair_kind: Vec<u8>,
    two_rates: Vec<bool>,
}

fn random_model(max_links: usize) -> impl Strategy<Value = RandomModel> {
    (2usize..=max_links)
        .prop_flat_map(|n| {
            let pairs = n * (n - 1) / 2;
            (
                Just(n),
                proptest::collection::vec(0u8..=2, pairs),
                proptest::collection::vec(any::<bool>(), n),
            )
        })
        .prop_map(|(n, pair_kind, two_rates)| RandomModel {
            n,
            pair_kind,
            two_rates,
        })
}

fn build(m: &RandomModel) -> (DeclarativeModel, Vec<LinkId>) {
    let hi = r(54.0);
    let lo = r(36.0);
    let mut t = Topology::new();
    let mut links = Vec::new();
    for i in 0..m.n {
        let a = t.add_node(i as f64 * 10.0, 0.0);
        let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
        links.push(t.add_link(a, b).unwrap());
    }
    let mut b = DeclarativeModel::builder(t);
    for (i, &l) in links.iter().enumerate() {
        if m.two_rates[i] {
            b = b.alone_rates(l, &[hi, lo]);
        } else {
            b = b.alone_rates(l, &[hi]);
        }
    }
    let mut k = 0;
    for i in 0..m.n {
        for j in (i + 1)..m.n {
            match m.pair_kind[k] {
                1 => b = b.conflict_all(links[i], links[j]),
                // Note: high-high-only conflicts are rate-monotone: lowering
                // either side removes the conflict.
                2 => b = b.conflict_at(links[i], hi, links[j], hi),
                _ => {}
            }
            k += 1;
        }
    }
    (b.build(), links)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_enumerated_set_is_admissible(rm in random_model(5)) {
        let (m, links) = build(&rm);
        for opts in [
            EnumerationOptions::default(),
            EnumerationOptions { prune_dominated: false, ..EnumerationOptions::default() },
        ] {
            for s in enumerate_admissible(&m, &links, &opts) {
                prop_assert!(m.admissible(s.couples()), "inadmissible set {s}");
            }
        }
    }

    #[test]
    fn pruned_pool_is_subset_and_undominated(rm in random_model(5)) {
        let (m, links) = build(&rm);
        let all = enumerate_admissible(
            &m, &links,
            &EnumerationOptions { prune_dominated: false, ..EnumerationOptions::default() },
        );
        let pruned = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        prop_assert!(pruned.len() <= all.len());
        // Each pruned-pool member appears in the full pool.
        for p in &pruned {
            prop_assert!(all.iter().any(|a| a == p));
        }
        // No pruned-pool member dominates another.
        for (i, a) in pruned.iter().enumerate() {
            for (j, b) in pruned.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.dominates(b), "{a} dominates {b} after pruning");
                }
            }
        }
        // Every dropped set is dominated by some survivor.
        for a in &all {
            if !pruned.iter().any(|p| p == a) {
                prop_assert!(
                    pruned.iter().any(|p| p.dominates(a)),
                    "dropped set {a} is not dominated"
                );
            }
        }
    }

    #[test]
    fn maximal_sets_are_admissible_and_unextendable(rm in random_model(4)) {
        let (m, links) = build(&rm);
        let maximal = maximal_independent_sets(&m, &links);
        prop_assert!(!maximal.is_empty());
        for s in &maximal {
            prop_assert!(m.admissible(s.couples()));
            // No member's rate can be raised.
            for &(l, rate) in s.couples() {
                for higher in m.alone_rates(l).into_iter().filter(|&x| x > rate) {
                    prop_assert!(!m.admissible(s.with_rate(l, higher).couples()));
                }
            }
            // No link can be inserted.
            for &l in &links {
                if s.contains(l) { continue; }
                for rate in m.alone_rates(l) {
                    prop_assert!(!m.admissible(s.with(l, rate).couples()));
                }
            }
        }
    }

    #[test]
    fn every_admissible_set_is_dominated_by_the_pruned_pool(rm in random_model(4)) {
        let (m, links) = build(&rm);
        let all = enumerate_admissible(
            &m, &links,
            &EnumerationOptions { prune_dominated: false, ..EnumerationOptions::default() },
        );
        let pruned = enumerate_admissible(&m, &links, &EnumerationOptions::default());
        for a in &all {
            prop_assert!(pruned.iter().any(|p| p.dominates(a)));
        }
    }

    #[test]
    fn maximal_cliques_are_cliques_and_cover_all_conflicts(rm in random_model(5)) {
        let (m, links) = build(&rm);
        let assignment: RatedSet = links.iter().map(|&l| (l, r(54.0))).collect();
        let cliques = maximal_rated_cliques(&m, &assignment);
        for c in &cliques {
            prop_assert!(is_clique(&m, c));
        }
        // Every conflicting pair appears together in some clique.
        for (i, &a) in links.iter().enumerate() {
            for &b in &links[i + 1..] {
                if m.conflicts((a, r(54.0)), (b, r(54.0))) {
                    prop_assert!(
                        cliques.iter().any(|c| c.contains(a) && c.contains(b)),
                        "conflicting pair not covered"
                    );
                }
            }
        }
        // Every vertex appears in some clique.
        for &l in &links {
            prop_assert!(cliques.iter().any(|c| c.contains(l)));
        }
    }

    #[test]
    fn local_cliques_cover_every_hop_and_are_cliques(rm in random_model(6)) {
        let (m, links) = build(&rm);
        let hops: Vec<(LinkId, Rate)> = links.iter().map(|&l| (l, r(54.0))).collect();
        let cs = local_cliques(&m, &hops);
        let mut covered = vec![false; hops.len()];
        for c in &cs {
            let members: RatedSet = c.hops().map(|h| hops[h]).collect();
            prop_assert!(is_clique(&m, &members));
            for h in c.hops() {
                covered[h] = true;
            }
        }
        prop_assert!(covered.into_iter().all(|b| b), "some hop uncovered");
    }
}
