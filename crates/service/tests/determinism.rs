//! Determinism regression: two independently constructed engines serving the
//! same request sequence must produce byte-identical serialized results.
//!
//! This is the regression lock for the audit's R3 rule — the registry, the
//! caches, and the set pools all iterate ordered collections, so nothing in
//! the response can depend on hash-seed ordering.

use awb_service::engine::Engine;
use awb_service::{EngineConfig, Request};
use serde_json::Value;

/// A grid-ish topology rich enough to exercise enumeration, the LP, and the
/// caches, with several background flows.
fn requests() -> Vec<String> {
    let topo = r#"{"nodes": [[0,0],[50,0],[100,0],[50,50],[100,50]],
        "links": [[0,1],[1,2],[1,3],[3,4],[2,4]],
        "alone_rates": [[54,36],[54,36],[36],[54,36],[36,24]],
        "conflicts": [[0,1],[1,2],[2,3],[3,4],[1,4]]}"#
        .replace('\n', " ");
    vec![
        format!(
            r#"{{"query": "available_bandwidth", "topology": {topo}, "path": [0,2,3], "background": [{{"path": [4], "demand_mbps": 3}}]}}"#
        ),
        format!(
            r#"{{"query": "admit", "topology": {topo}, "path": [0,1], "demand_mbps": 5, "background": [{{"path": [1,4], "demand_mbps": 2}}]}}"#
        ),
        format!(r#"{{"query": "bounds", "topology": {topo}, "path": [0,2,3]}}"#),
        // Repeat the first query: replays from cache, must not change bytes.
        format!(
            r#"{{"query": "available_bandwidth", "topology": {topo}, "path": [0,2,3], "background": [{{"path": [4], "demand_mbps": 3}}]}}"#
        ),
    ]
}

fn run_all(engine: &Engine, lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            let request = Request::parse(line).expect("fixture requests parse");
            let (value, _) = engine
                .handle(&request, None)
                .expect("fixture queries solve");
            value.to_compact_string()
        })
        .collect()
}

#[test]
fn two_engines_serve_byte_identical_results() {
    let lines = requests();
    let a = run_all(&Engine::new(EngineConfig::default()), &lines);
    let b = run_all(&Engine::new(EngineConfig::default()), &lines);
    assert_eq!(a, b, "engine output depends on construction-order state");
    // The cached replay (request 4 == request 1) must be byte-identical too.
    assert_eq!(a[0], a[3], "cache replay changed the serialized result");
}

#[test]
fn repeated_runs_within_one_engine_are_byte_identical() {
    let engine = Engine::new(EngineConfig::default());
    let lines = requests();
    let first = run_all(&engine, &lines);
    let second = run_all(&engine, &lines);
    assert_eq!(first, second);
    // Sanity: the responses are real JSON objects, not error strings.
    for s in &first {
        let v: Value = serde::json::parse(s).expect("response is valid JSON");
        assert!(v.as_object().is_some());
    }
}
