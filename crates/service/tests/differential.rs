//! Differential tests: the nonblocking reactor server must answer
//! byte-identically to the blocking thread-pool server, and `admit_batch`
//! must be indistinguishable from the sequential single-`admit` protocol
//! it replaces.
//!
//! Both servers run the same engine code, so the only way they can
//! diverge is through the serving stack itself — framing, dispatch order,
//! response assembly. The comparison therefore strips nothing except
//! `elapsed_us` (wall-time, necessarily different) and skips the `stats`
//! verb (live gauges, plus a reactor-only section by design).

use awb_service::{serve, serve_reactor, ReactorServerConfig, ServerConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

const RELAY: &str = r#""topology": {"nodes": [[0,0],[50,0],[100,0]], "links": [[0,1],[1,2]], "alone_rates": [[54],[54]], "conflicts": [[0,1]]}"#;

/// A request mix covering every cacheable verb, validation errors,
/// malformed JSON, and repeated lines (cache-status transitions).
fn request_mix() -> Vec<String> {
    let mut lines = Vec::new();
    for (i, demand) in [1.0, 5.0, 1.0, 26.0].iter().enumerate() {
        lines.push(format!(
            r#"{{"query": "available_bandwidth", "id": {i}, {RELAY}, "path": [0,1], "background": [{{"path": [1], "demand_mbps": {demand}}}]}}"#
        ));
    }
    lines.push(format!(
        r#"{{"query": "admit", "id": "adm", {RELAY}, "path": [0,1], "demand_mbps": 12.0}}"#
    ));
    lines.push(format!(
        r#"{{"query": "bounds", "id": "bnd", {RELAY}, "path": [0,1]}}"#
    ));
    lines.push(format!(
        r#"{{"query": "admit_batch", "id": "batch", {RELAY}, "arrivals": [{{"path": [0,1], "demand_mbps": 20.0}}, {{"path": [0,1], "demand_mbps": 20.0}}, {{"path": [0,1], "demand_mbps": 3.0}}]}}"#
    ));
    // Identical replay: both servers must report the same cache statuses.
    lines.push(format!(
        r#"{{"query": "admit_batch", "id": "batch2", {RELAY}, "arrivals": [{{"path": [0,1], "demand_mbps": 20.0}}, {{"path": [0,1], "demand_mbps": 20.0}}, {{"path": [0,1], "demand_mbps": 3.0}}]}}"#
    ));
    // Validation error (admit_batch without arrivals) and malformed JSON:
    // both paths echo the id when it is parseable.
    lines.push(format!(
        r#"{{"query": "admit_batch", "id": "bad", {RELAY}, "arrivals": []}}"#
    ));
    lines.push("this is not json".to_string());
    lines.push(format!(
        r#"{{"query": "available_bandwidth", "id": 99, {RELAY}, "path": [0,7]}}"#
    ));
    lines
}

/// Sends `lines` pipelined on one connection (blank line injected between
/// them — both servers must skip it silently) and returns one response
/// per request line.
fn exchange(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut batch = String::new();
    for (i, line) in lines.iter().enumerate() {
        batch.push_str(line);
        batch.push('\n');
        if i % 2 == 0 {
            batch.push_str("   \n"); // whitespace-only frame: no response
        }
    }
    stream.write_all(batch.as_bytes()).expect("send");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for _ in 0..lines.len() {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(
            n > 0,
            "server closed early after {} responses",
            responses.len()
        );
        responses.push(line.trim_end().to_string());
    }
    responses
}

/// Removes the timing field, the only legitimately nondeterministic part
/// of a response line.
fn strip_elapsed(line: &str) -> Value {
    let mut v: Value = serde_json::from_str(line).expect("response is JSON");
    if let Value::Object(m) = &mut v {
        m.remove("elapsed_us");
    }
    v
}

#[test]
fn reactor_answers_byte_identically_to_blocking_server() {
    let blocking = serve(ServerConfig::default()).expect("blocking server");
    // One worker pins dispatch order, so cache-status provenance (miss,
    // hit, coalesced) matches the blocking server's sequential handling
    // of one connection.
    let reactor = serve_reactor(ReactorServerConfig {
        workers: 1,
        ..ReactorServerConfig::default()
    })
    .expect("reactor server");

    let lines = request_mix();
    let from_blocking = exchange(blocking.local_addr(), &lines);
    let from_reactor = exchange(reactor.local_addr(), &lines);

    assert_eq!(from_blocking.len(), from_reactor.len());
    for (i, (b, r)) in from_blocking.iter().zip(&from_reactor).enumerate() {
        assert_eq!(
            strip_elapsed(b),
            strip_elapsed(r),
            "request {i} diverged:\n  blocking: {b}\n  reactor:  {r}"
        );
    }
    // The comparison is stronger than JSON equality: modulo the stripped
    // timing field, the raw bytes must match too (same key order, same
    // float formatting).
    for (b, r) in from_blocking.iter().zip(&from_reactor) {
        let strip = |s: &str| strip_elapsed(s).to_string();
        assert_eq!(strip(b), strip(r));
    }
    reactor.shutdown();
    blocking.shutdown();
}

#[test]
fn admit_batch_matches_sequential_single_admits() {
    let server = serve_reactor(ReactorServerConfig::default()).expect("reactor server");
    let addr = server.local_addr();

    let arrivals = [20.0, 20.0, 3.0, 5.0, 0.5];
    let arrivals_json: Vec<String> = arrivals
        .iter()
        .map(|d| format!(r#"{{"path": [0,1], "demand_mbps": {d}}}"#))
        .collect();
    let batch_line = format!(
        r#"{{"query": "admit_batch", {RELAY}, "arrivals": [{}]}}"#,
        arrivals_json.join(", ")
    );
    let batch: Value = serde_json::from_str(
        &awb_service::server::query_once(addr, &batch_line).expect("batch query"),
    )
    .expect("batch response");
    assert_eq!(batch["status"].as_str(), Some("ok"), "batch: {batch}");
    let rows = batch["result"]["results"].as_array().expect("rows");
    assert_eq!(rows.len(), arrivals.len());

    // The sequential protocol the batch replaces: admit each arrival
    // against the background accumulated from previously admitted ones.
    let mut background: Vec<String> = Vec::new();
    for (i, demand) in arrivals.iter().enumerate() {
        let line = format!(
            r#"{{"query": "admit", {RELAY}, "path": [0,1], "demand_mbps": {demand}, "background": [{}]}}"#,
            background.join(", ")
        );
        let single: Value = serde_json::from_str(
            &awb_service::server::query_once(addr, &line).expect("single admit"),
        )
        .expect("single response");
        assert_eq!(single["status"].as_str(), Some("ok"), "single: {single}");
        let admitted = single["result"]["admitted"].as_bool().expect("admitted");
        let available = single["result"]["available_mbps"].as_f64().expect("avail");
        assert_eq!(
            rows[i]["admitted"].as_bool(),
            Some(admitted),
            "arrival {i}: batch and sequential admission disagree"
        );
        let batch_available = rows[i]["available_mbps"].as_f64().expect("avail");
        assert_eq!(
            batch_available.to_bits(),
            available.to_bits(),
            "arrival {i}: available bandwidth not bit-identical \
             (batch {batch_available}, sequential {available})"
        );
        if admitted {
            background.push(format!(r#"{{"path": [0,1], "demand_mbps": {demand}}}"#));
        }
    }
    server.shutdown();
}
