//! End-to-end tests of the daemon: concurrent clients against a live TCP
//! server, agreement with direct library calls down to the bit, and
//! backpressure behaviour at queue bound 1.

use awb_core::{available_bandwidth, AvailableBandwidthOptions};
use awb_net::{DeclarativeModel, Path, Topology};
use awb_phy::Rate;
use awb_service::{serve, EngineConfig, ServerConfig};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// A relay chain of `hops` 54/36 Mbps links where adjacent links conflict —
/// one topology per `hops` value, so different lengths are different cache
/// entries.
fn chain_request(hops: usize) -> String {
    let nodes: Vec<String> = (0..=hops).map(|i| format!("[{},0]", i * 50)).collect();
    let links: Vec<String> = (0..hops).map(|i| format!("[{},{}]", i, i + 1)).collect();
    let rates: Vec<String> = (0..hops).map(|_| "[54,36]".to_string()).collect();
    let conflicts: Vec<String> = (1..hops).map(|i| format!("[{},{}]", i - 1, i)).collect();
    let path: Vec<String> = (0..hops).map(|i| i.to_string()).collect();
    format!(
        r#"{{"query": "available_bandwidth", "topology": {{"nodes": [{}], "links": [{}], "alone_rates": [{}], "conflicts": [{}]}}, "path": [{}]}}"#,
        nodes.join(","),
        links.join(","),
        rates.join(","),
        conflicts.join(","),
        path.join(",")
    )
}

/// The same chain built directly against the library, bypassing the service
/// entirely.
fn chain_direct_mbps(hops: usize) -> f64 {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=hops)
        .map(|i| t.add_node((i * 50) as f64, 0.0))
        .collect();
    let links: Vec<_> = (0..hops)
        .map(|i| t.add_link(nodes[i], nodes[i + 1]).unwrap())
        .collect();
    let rates = [Rate::from_mbps(54.0), Rate::from_mbps(36.0)];
    let mut b = DeclarativeModel::builder(t);
    for &l in &links {
        b = b.alone_rates(l, &rates);
    }
    for w in links.windows(2) {
        b = b.conflict_all(w[0], w[1]);
    }
    let model = b.build();
    let path = Path::new(model.topology(), links).unwrap();
    available_bandwidth(&model, &[], &path, &AvailableBandwidthOptions::default())
        .unwrap()
        .bandwidth_mbps()
}

fn query(addr: std::net::SocketAddr, line: &str) -> Value {
    let response = awb_service::server::query_once(addr, line).unwrap();
    serde_json::from_str(&response).unwrap()
}

#[test]
fn concurrent_clients_agree_with_the_library_bit_for_bit() {
    let server = serve(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // 12 clients over 4 distinct topologies: every topology is queried by 3
    // clients, so most requests race on an uncached pool (coalescing) or
    // land on a cached one.
    let lengths = [2usize, 3, 4, 5];
    let clients: Vec<_> = (0..12)
        .map(|i| {
            let hops = lengths[i % lengths.len()];
            std::thread::spawn(move || {
                let line = chain_request(hops);
                // Two rounds each: the second round must be served, and
                // usually from the result cache.
                let first = query(addr, &line);
                let second = query(addr, &line);
                (hops, first, second)
            })
        })
        .collect();

    for client in clients {
        let (hops, first, second) = client.join().unwrap();
        let expected = chain_direct_mbps(hops);
        for response in [&first, &second] {
            assert_eq!(
                response.get("status").and_then(Value::as_str),
                Some("ok"),
                "response: {response}"
            );
            let got = response["result"]["bandwidth_mbps"].as_f64().unwrap();
            assert_eq!(
                got.to_bits(),
                expected.to_bits(),
                "{hops}-hop chain: service {got} != direct {expected}"
            );
        }
    }

    let metrics = &server.engine().metrics;
    // One enumeration per distinct pool, no matter how many clients raced.
    assert_eq!(metrics.sets_cache_misses.load(Ordering::Relaxed), 4);
    assert_eq!(metrics.requests_ok.load(Ordering::Relaxed), 24);
    assert_eq!(metrics.requests_error.load(Ordering::Relaxed), 0);
    // 24 requests over 4 distinct answers: at least the 12 second-round
    // requests were served from the result cache.
    assert!(metrics.result_cache_hits.load(Ordering::Relaxed) >= 12);

    let summary = server.shutdown();
    assert!(summary.contains("ok=24"), "summary: {summary}");
}

#[test]
fn cached_and_uncached_responses_are_byte_identical() {
    let server = serve(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let line = chain_request(4);
    let cold = awb_service::server::query_once(addr, &line).unwrap();
    let warm = awb_service::server::query_once(addr, &line).unwrap();
    let strip = |s: &str| {
        let v: Value = serde_json::from_str(s).unwrap();
        let mut m = v.as_object().unwrap().clone();
        m.remove("elapsed_us");
        m.remove("cache");
        Value::Object(m).to_string()
    };
    assert_eq!(strip(&cold), strip(&warm));
    let cold: Value = serde_json::from_str(&cold).unwrap();
    let warm: Value = serde_json::from_str(&warm).unwrap();
    assert_eq!(cold.get("cache").and_then(Value::as_str), Some("miss"));
    assert_eq!(warm.get("cache").and_then(Value::as_str), Some("hit"));
    server.shutdown();
}

#[test]
fn queue_bound_one_rejects_with_overloaded() {
    let server = serve(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Occupy the only worker with a connection that never sends a request.
    let occupier = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Fill the queue's single slot with a second idle connection.
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The third connection must be rejected immediately with `overloaded`.
    let rejected = TcpStream::connect(addr).unwrap();
    let mut lines = BufReader::new(rejected.try_clone().unwrap()).lines();
    let response: Value = serde_json::from_str(&lines.next().unwrap().unwrap()).unwrap();
    assert_eq!(
        response.get("status").and_then(Value::as_str),
        Some("error")
    );
    assert_eq!(
        response["error"].get("code").and_then(Value::as_str),
        Some("overloaded"),
        "response: {response}"
    );
    drop(rejected);

    // Releasing the worker lets the queued connection be served normally.
    drop(occupier);
    let mut queued_write = queued.try_clone().unwrap();
    queued_write
        .write_all((chain_request(2) + "\n").as_bytes())
        .unwrap();
    queued_write.flush().unwrap();
    let mut lines = BufReader::new(queued).lines();
    let response: Value = serde_json::from_str(&lines.next().unwrap().unwrap()).unwrap();
    assert_eq!(
        response.get("status").and_then(Value::as_str),
        Some("ok"),
        "queued connection should be served after the worker frees up: {response}"
    );

    server.shutdown();
}
