//! Query execution: topology registry, the two-level cache, coalesced
//! compilation, and the per-query handlers.
//!
//! # Cache design
//!
//! Two LRU layers sit in front of the paper's Eq. 6 pipeline:
//!
//! 1. **Instance cache** — a compiled [`awb_core::CompiledInstance`]
//!    (enumerated set pools under full enumeration; pricing oracles plus
//!    deterministic seed columns under column generation), keyed by
//!    `(topology content hash, link universe, solve options)`. The
//!    universe is part of the key because the Eq. 6 LP ranges over exactly
//!    the links the background flows and the new path touch — two
//!    requests on the same topology share an instance only if they touch
//!    the same links. A hit skips the exponential compile step and
//!    re-solves only the LP, which is polynomial in the column count.
//! 2. **Result cache** — the fully rendered answer, keyed additionally by
//!    the background demands, the path, and the query kind. A hit skips
//!    the LP too and replays the exact JSON (f64s round-trip exactly
//!    through the shortest-representation formatter, so a cached answer is
//!    byte-identical to a recomputed one).
//!
//! Misses on the instance cache are *coalesced*: concurrent requests for
//! the same instance elect one leader to compile while the rest block for
//! its result ([`crate::coalesce`]).

use crate::cache::LruCache;
use crate::coalesce::Role;
use crate::lock::lock_recover;
use crate::metrics::Metrics;
use crate::protocol::{
    CacheStatus, ErrorCode, FlowSpec, QueryKind, Request, ServiceError, TopologyRef,
};
use crate::shards::ShardedLru;
use crate::spec::{FnvHasher, TopologySpec};
use awb_core::{
    link_universe, AvailableBandwidth, AvailableBandwidthOptions, CompiledInstance, CoreError,
    DeltaReuse, Flow, PricingMode, Session, SolverKind, UnitCache, DEFAULT_RETENTION_EPOCHS,
};
use awb_estimate::{Estimator, Hop, IdleMap};
use awb_net::{LinkRateModel, Path};
use awb_sets::{EngineKind, EnumerationOptions};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A topology with its built model, shared across requests.
pub struct ResolvedTopology {
    /// The interference model.
    pub model: Arc<dyn LinkRateModel + Send + Sync>,
    /// Content hash of the canonical spec.
    pub content_hash: u64,
    /// The canonical spec itself — kept so `update` can patch it
    /// index-preservingly and register the result.
    pub spec: TopologySpec,
}

/// One live compiled-instance record: enough to find the cached instance
/// again (`key`) and to re-key it after a topology update (`universe`,
/// `options`). The sharded LRU itself is deliberately not iterable, so the
/// engine keeps this side index per topology hash.
#[derive(Debug, Clone)]
struct IndexedInstance {
    key: u64,
    universe: Vec<awb_net::LinkId>,
    options: AvailableBandwidthOptions,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Capacity of the compiled-instance LRU (split across the shards).
    pub sets_cache_capacity: usize,
    /// Number of independent instance-cache shards. Lookups for different
    /// instances never contend; same-instance compiles still coalesce
    /// within a shard.
    pub shards: usize,
    /// Capacity of the rendered-result LRU.
    pub result_cache_capacity: usize,
    /// Capacity of the built-model LRU for inline (unregistered) specs.
    pub model_cache_capacity: usize,
    /// Enumeration engine used for cold set-pool builds. Every engine is
    /// byte-identical in output, so switching it never invalidates cached
    /// pools (and the sets-cache key deliberately excludes it).
    pub enumeration_engine: EngineKind,
    /// LP solve strategy. Under [`SolverKind::ColumnGeneration`] the engine
    /// skips set enumeration entirely and instead caches one compiled
    /// pricing oracle plus a deterministic seed-column pool per
    /// `(topology, universe)`, so an `admit` sequence on the same topology
    /// pays the oracle compile once and answers are independent of the
    /// order requests arrive in.
    pub solver: SolverKind,
    /// Compile per conflict component instead of per whole universe.
    /// Answers are bit-identical either way; `true` is what makes the
    /// `update` verb's component-granular instance patching effective
    /// (an untouched component is reused without recompilation), at the
    /// cost of storing the component adjacency alongside each instance.
    pub decompose: bool,
    /// Column-pricing strategy under [`SolverKind::ColumnGeneration`].
    /// Heuristic-first vs exact-only only steers how columns are searched
    /// for — every converged answer carries the same exact-oracle
    /// certificate — so it stays out of the instance-cache key like the
    /// enumeration engine does.
    pub pricing: PricingMode,
    /// Dual-smoothing factor for stage-B pricing (1.0 disables).
    pub stab_alpha: f64,
    /// Threads for per-component pricing inside one solve (0 = all cores).
    /// Orthogonal to the server's request-level parallelism; the default 1
    /// is right unless single queries over very large universes dominate.
    pub pricing_threads: usize,
    /// Per-component cap on the colgen stage-B column pool (0 = unbounded).
    /// A perf/memory knob like the pricing mode, so it stays out of the
    /// instance-cache key.
    pub column_pool_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            sets_cache_capacity: 128,
            shards: 8,
            result_cache_capacity: 1024,
            model_cache_capacity: 64,
            enumeration_engine: EngineKind::Auto,
            solver: SolverKind::default(),
            decompose: AvailableBandwidthOptions::default().decompose,
            pricing: PricingMode::default(),
            stab_alpha: AvailableBandwidthOptions::default().stab_alpha,
            pricing_threads: 1,
            column_pool_cap: AvailableBandwidthOptions::default().column_pool_cap,
        }
    }
}

/// The shared, thread-safe query engine.
pub struct Engine {
    /// Topologies pinned by `register_topology`, by content hash.
    registry: Mutex<BTreeMap<u64, Arc<ResolvedTopology>>>,
    /// Built models for inline specs (evictable, unlike the registry).
    models: Mutex<LruCache<ResolvedTopology>>,
    /// Compiled per-universe instances (set pools or pricing oracles),
    /// sharded so concurrent lookups for different instances never
    /// contend; compiles of the same instance coalesce within a shard.
    instances: ShardedLru<CompiledInstance, Result<CompiledInstance, CoreError>>,
    /// Per-topology index of live instance-cache entries, so `update` can
    /// migrate them (entries whose instance has been evicted are dropped
    /// lazily at update time).
    instance_index: Mutex<BTreeMap<u64, Vec<IndexedInstance>>>,
    /// Content-hashed compiled units shared across topology updates: an
    /// oscillating topology (A → B → A) re-materializes A's components
    /// from here instead of recompiling them.
    unit_cache: Mutex<UnitCache>,
    /// Rendered results.
    results: Mutex<LruCache<Value>>,
    /// Engine used for cold set-pool builds.
    enumeration_engine: EngineKind,
    /// LP solve strategy for available-bandwidth queries.
    solver: SolverKind,
    /// Whether compiled instances decompose into per-component units.
    decompose: bool,
    /// Pricing strategy under column generation (constant per process, so
    /// it stays out of the instance-cache key).
    pricing: PricingMode,
    /// Dual-smoothing factor for stage-B pricing.
    stab_alpha: f64,
    /// Per-solve pricing thread count.
    pricing_threads: usize,
    /// Per-component colgen pool cap (0 = unbounded).
    column_pool_cap: usize,
    /// Reactor-core counters, attached when the nonblocking server fronts
    /// this engine; merged into `stats` responses.
    reactor_metrics: Mutex<Option<Arc<awb_reactor::ReactorMetrics>>>,
    /// Service counters.
    pub metrics: Metrics,
}

/// A successful query outcome: the `result` payload plus cache provenance
/// (`None` for queries without a cacheable stage, e.g. `stats`).
pub type QueryOutcome = (Value, Option<CacheStatus>);

fn core_error(e: CoreError) -> ServiceError {
    match e {
        CoreError::BackgroundInfeasible => ServiceError::new(
            ErrorCode::InfeasibleBackground,
            "background flows alone are infeasible",
        ),
        CoreError::InvalidDemand(d) => {
            ServiceError::bad_request(format!("invalid demand {d} Mbps"))
        }
        CoreError::Path(e) => ServiceError::bad_request(format!("invalid path: {e}")),
        other => ServiceError::new(ErrorCode::Internal, format!("solver failure: {other}")),
    }
}

impl Engine {
    /// Creates an engine with the given cache capacities.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            registry: Mutex::new(BTreeMap::new()),
            models: Mutex::new(LruCache::new(config.model_cache_capacity)),
            instances: ShardedLru::new(config.shards, config.sets_cache_capacity),
            instance_index: Mutex::new(BTreeMap::new()),
            unit_cache: Mutex::new(UnitCache::new(DEFAULT_RETENTION_EPOCHS)),
            results: Mutex::new(LruCache::new(config.result_cache_capacity)),
            enumeration_engine: config.enumeration_engine,
            solver: config.solver,
            decompose: config.decompose,
            pricing: config.pricing,
            stab_alpha: config.stab_alpha,
            pricing_threads: config.pricing_threads,
            column_pool_cap: config.column_pool_cap,
            reactor_metrics: Mutex::new(None),
            metrics: Metrics::new(),
        }
    }

    /// Attaches the reactor's counters so `stats` responses include them.
    pub fn attach_reactor_metrics(&self, metrics: Arc<awb_reactor::ReactorMetrics>) {
        *lock_recover(&self.reactor_metrics) = Some(metrics);
    }

    /// Renders the `stats` payload: service counters, per-shard instance
    /// cache state, and (when attached) the reactor's event-loop gauges.
    fn stats_value(&self) -> Value {
        let mut value = self.metrics.to_value();
        if let Value::Object(m) = &mut value {
            m.insert("instance_shards".into(), self.instances.stats_value());
            let unit_cache = lock_recover(&self.unit_cache);
            let (hits, misses) = unit_cache.stats();
            let mut u = Map::new();
            u.insert("hits".into(), Value::Number(hits as f64));
            u.insert("misses".into(), Value::Number(misses as f64));
            u.insert("len".into(), Value::Number(unit_cache.len() as f64));
            drop(unit_cache);
            m.insert("unit_cache".into(), Value::Object(u));
            if let Some(reactor) = lock_recover(&self.reactor_metrics).as_ref() {
                let mut r = Map::new();
                for (name, v) in reactor.snapshot() {
                    r.insert(name.into(), Value::Number(v as f64));
                }
                m.insert("reactor".into(), Value::Object(r));
            }
        }
        value
    }

    /// Executes one parsed request. `deadline` is the absolute instant the
    /// request must finish by; it is checked between pipeline stages (the
    /// stages themselves are not interruptible).
    ///
    /// # Errors
    ///
    /// [`ServiceError`] for malformed requests, unknown topology refs,
    /// missed deadlines, infeasible backgrounds and solver failures.
    pub fn handle(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<QueryOutcome, ServiceError> {
        self.check_deadline(deadline)?;
        match request.query {
            QueryKind::Stats => Ok((self.stats_value(), None)),
            QueryKind::RegisterTopology => self.register(request),
            QueryKind::Update => self.update(request, deadline).map(|(v, s)| (v, Some(s))),
            QueryKind::AvailableBandwidth => {
                let (value, status) = self.available_bandwidth(request, deadline)?;
                Ok((value, Some(status)))
            }
            QueryKind::Admit => {
                let demand = request
                    .demand_mbps
                    .ok_or_else(|| ServiceError::bad_request("`admit` requires `demand_mbps`"))?;
                let (value, status) = self.available_bandwidth(request, deadline)?;
                let available = value
                    .get("bandwidth_mbps")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                // Same tolerance as `awb_core::feasibility::admits`.
                let admitted = available + 1e-9 >= demand;
                let mut m = Map::new();
                m.insert("admitted".into(), Value::Bool(admitted));
                m.insert("demand_mbps".into(), Value::Number(demand));
                m.insert("available_mbps".into(), Value::Number(available));
                Ok((Value::Object(m), Some(status)))
            }
            QueryKind::AdmitBatch => self
                .admit_batch(request, deadline)
                .map(|(v, s)| (v, Some(s))),
            QueryKind::Bounds => self.bounds(request, deadline).map(|(v, s)| (v, Some(s))),
            QueryKind::Estimate => self.estimate(request).map(|v| (v, None)),
        }
    }

    fn check_deadline(&self, deadline: Option<Instant>) -> Result<(), ServiceError> {
        match deadline {
            Some(d) if Instant::now() >= d => {
                Metrics::bump(&self.metrics.deadline_exceeded);
                Err(ServiceError::new(
                    ErrorCode::DeadlineExceeded,
                    "deadline elapsed before the request completed",
                ))
            }
            _ => Ok(()),
        }
    }

    /// Resolves a request's topology to a built model, via the pinned
    /// registry (hash refs) or the model LRU (inline specs).
    fn resolve(&self, reference: &TopologyRef) -> Result<Arc<ResolvedTopology>, ServiceError> {
        match reference {
            TopologyRef::Registered(hash) => lock_recover(&self.registry)
                .get(hash)
                .cloned()
                .ok_or_else(|| {
                    ServiceError::new(
                        ErrorCode::UnknownTopology,
                        format!("no registered topology with hash {hash:016x}"),
                    )
                }),
            TopologyRef::Inline(spec) => {
                let hash = spec.content_hash();
                if let Some(found) = lock_recover(&self.models).get(hash) {
                    return Ok(found);
                }
                let built = spec.build()?;
                let resolved = ResolvedTopology {
                    model: built.model,
                    content_hash: built.content_hash,
                    spec: spec.clone(),
                };
                Ok(lock_recover(&self.models).insert(hash, resolved))
            }
        }
    }

    fn register(&self, request: &Request) -> Result<QueryOutcome, ServiceError> {
        let Some(TopologyRef::Inline(spec)) = &request.topology else {
            return Err(ServiceError::bad_request(
                "`register_topology` requires an inline `topology` spec",
            ));
        };
        let built = spec.build()?;
        let hash = built.content_hash;
        let topology = built.model.topology();
        let mut m = Map::new();
        m.insert(
            "topology_hash".into(),
            Value::String(format!("{hash:016x}")),
        );
        m.insert(
            "num_nodes".into(),
            Value::Number(topology.num_nodes() as f64),
        );
        m.insert(
            "num_links".into(),
            Value::Number(topology.num_links() as f64),
        );
        lock_recover(&self.registry).insert(
            hash,
            Arc::new(ResolvedTopology {
                model: built.model,
                content_hash: hash,
                spec: spec.clone(),
            }),
        );
        Ok((Value::Object(m), None))
    }

    /// Builds the new path and background flows against a resolved model.
    fn materialize(
        &self,
        resolved: &ResolvedTopology,
        background: &[FlowSpec],
        path: &[usize],
    ) -> Result<(Path, Vec<Flow>), ServiceError> {
        let topology = resolved.model.topology();
        let new_path = TopologySpec::parse_path(topology, path)?;
        let flows = background
            .iter()
            .map(|f| {
                let p = TopologySpec::parse_path(topology, &f.path)?;
                Flow::new(p, f.demand_mbps).map_err(core_error)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((new_path, flows))
    }

    fn enumeration_options(&self, request: &Request) -> EnumerationOptions {
        EnumerationOptions {
            max_set_size: request.max_set_size,
            engine: self.enumeration_engine,
            ..EnumerationOptions::default()
        }
    }

    /// The solve options every Eq. 6 query in this engine runs under.
    fn solve_options(&self, request: &Request) -> AvailableBandwidthOptions {
        AvailableBandwidthOptions {
            enumeration: self.enumeration_options(request),
            solver: self.solver,
            decompose: self.decompose,
            pricing: self.pricing,
            stab_alpha: self.stab_alpha,
            pricing_threads: self.pricing_threads,
            column_pool_cap: self.column_pool_cap,
            ..AvailableBandwidthOptions::default()
        }
    }

    /// The key identifying a compiled instance: topology, universe and the
    /// options that shape the compiled artifact. The enumeration engine
    /// choice is deliberately **not** part of the key: all engines return
    /// byte-identical pools, so an instance built by one engine is a valid
    /// hit for any other. Under column generation the enumeration options
    /// are irrelevant (nothing is enumerated) and stay out of the key, so
    /// `admit` sweeps varying `max_set_size` still share one oracle.
    fn instance_key(
        resolved: &ResolvedTopology,
        universe: &[awb_net::LinkId],
        options: &AvailableBandwidthOptions,
    ) -> u64 {
        let mut h = FnvHasher::default();
        h.write_u64(resolved.content_hash);
        h.write_u64(universe.len() as u64);
        for l in universe {
            h.write_u64(l.index() as u64);
        }
        h.write_u64(options.solver as u64);
        h.write_u64(u64::from(options.decompose));
        h.write_f64(options.dust_epsilon);
        if options.solver == SolverKind::FullEnumeration {
            h.write_u64(u64::from(options.enumeration.prune_dominated));
            h.write_u64(
                options
                    .enumeration
                    .max_set_size
                    .map_or(u64::MAX, |n| n as u64),
            );
        }
        h.finish()
    }

    /// The key identifying a full query answer.
    fn result_key(request: &Request, resolved: &ResolvedTopology) -> u64 {
        let mut h = FnvHasher::default();
        // `admit` deliberately shares the available-bandwidth entry: its
        // answer derives from the same LP value.
        let kind = match request.query {
            QueryKind::Admit => QueryKind::AvailableBandwidth,
            k => k,
        };
        h.write_u64(kind as u64);
        h.write_u64(resolved.content_hash);
        h.write_u64(request.background.len() as u64);
        for flow in &request.background {
            h.write_u64(flow.path.len() as u64);
            for &l in &flow.path {
                h.write_u64(l as u64);
            }
            h.write_f64(flow.demand_mbps);
        }
        h.write_u64(request.path.len() as u64);
        for &l in &request.path {
            h.write_u64(l as u64);
        }
        h.write_u64(request.arrivals.len() as u64);
        for flow in &request.arrivals {
            h.write_u64(flow.path.len() as u64);
            for &l in &flow.path {
                h.write_u64(l as u64);
            }
            h.write_f64(flow.demand_mbps);
        }
        h.write_u64(request.max_set_size.map_or(u64::MAX, |n| n as u64));
        h.finish()
    }

    /// Returns the compiled instance for `(resolved, universe, options)`,
    /// compiling it (coalesced) on a miss. The second component tells the
    /// caller how the instance was obtained.
    fn instance(
        &self,
        resolved: &ResolvedTopology,
        universe: &[awb_net::LinkId],
        options: &AvailableBandwidthOptions,
    ) -> Result<(Arc<CompiledInstance>, CacheStatus), ServiceError> {
        let key = Engine::instance_key(resolved, universe, options);
        if let Some(instance) = self.instances.get(key) {
            Metrics::bump(&self.metrics.sets_cache_hits);
            return Ok((instance, CacheStatus::SetsHit));
        }
        let (compiled, role) = self.instances.coalesce(key, || {
            let model: &(dyn LinkRateModel + Send + Sync) = &*resolved.model;
            let started = Instant::now();
            let compiled = CompiledInstance::compile(&model, universe, options);
            self.metrics.enumeration_latency.record(started.elapsed());
            compiled
        });
        let (compiled, status) = match role {
            Role::Leader => {
                Metrics::bump(&self.metrics.sets_cache_misses);
                let compiled = compiled.ok_or_else(|| {
                    ServiceError::new(ErrorCode::Internal, "coalescing leader produced no result")
                })?;
                (compiled, CacheStatus::Miss)
            }
            Role::Follower => {
                Metrics::bump(&self.metrics.coalesced);
                let compiled = compiled.ok_or_else(|| {
                    ServiceError::new(
                        ErrorCode::Internal,
                        "coalesced compilation failed in the leading request",
                    )
                })?;
                (compiled, CacheStatus::Coalesced)
            }
        };
        match &*compiled {
            Ok(instance) => {
                let shared = if status == CacheStatus::Miss {
                    self.record_instance(resolved.content_hash, key, universe, options);
                    self.instances.insert(key, instance.clone())
                } else {
                    Arc::new(instance.clone())
                };
                Ok((shared, status))
            }
            Err(e) => Err(core_error(e.clone())),
        }
    }

    /// Records a live instance-cache entry in the per-topology side index.
    fn record_instance(
        &self,
        topology_hash: u64,
        key: u64,
        universe: &[awb_net::LinkId],
        options: &AvailableBandwidthOptions,
    ) {
        let mut index = lock_recover(&self.instance_index);
        let entries = index.entry(topology_hash).or_default();
        if !entries.iter().any(|e| e.key == key) {
            entries.push(IndexedInstance {
                key,
                universe: universe.to_vec(),
                options: *options,
            });
        }
    }

    /// The dynamic-topology patch path (`update`): applies the request's
    /// [`crate::spec::DeltaSpec`] to the resolved topology, registers the
    /// patched topology under its new content hash, and migrates every live
    /// compiled instance of the old topology with component-granular
    /// incremental recompilation (`CompiledInstance::apply_delta`) instead
    /// of letting it be recompiled from scratch on the next query.
    ///
    /// The whole update is keyed off the delta hash chain
    /// `fnv(old topology hash, delta chain hash)`: replaying the identical
    /// update is a result-cache hit that performs no work, and each
    /// migrated instance goes through the per-shard coalescer under its
    /// *new* key, so a concurrent query for the patched topology shares the
    /// patch instead of compiling cold.
    // awb-audit: hot
    fn update(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<(Value, CacheStatus), ServiceError> {
        let reference = request
            .topology
            .as_ref()
            .ok_or_else(|| ServiceError::bad_request("`update` requires a `topology`"))?;
        let delta = request
            .delta
            .as_ref()
            .ok_or_else(|| ServiceError::bad_request("`update` requires a `delta` object"))?;
        let resolved = self.resolve(reference)?;
        let mut h = FnvHasher::default();
        h.write_u64(QueryKind::Update as u64);
        h.write_u64(resolved.content_hash);
        h.write_u64(delta.chain_hash());
        let result_key = h.finish();
        if let Some(cached) = lock_recover(&self.results).get(result_key) {
            Metrics::bump(&self.metrics.result_cache_hits);
            return Ok(((*cached).clone(), CacheStatus::Hit));
        }
        Metrics::bump(&self.metrics.result_cache_misses);
        self.check_deadline(deadline)?;

        let (patched_spec, core_delta) = resolved.spec.apply_delta(delta)?;
        let built = patched_spec.build()?;
        let new_hash = built.content_hash;
        let new_resolved = Arc::new(ResolvedTopology {
            model: built.model,
            content_hash: new_hash,
            spec: patched_spec,
        });
        // Pin the patched topology exactly as `register_topology` would.
        lock_recover(&self.registry).insert(new_hash, Arc::clone(&new_resolved));

        let entries = lock_recover(&self.instance_index)
            .get(&resolved.content_hash)
            .cloned()
            .unwrap_or_default();
        let model: &(dyn LinkRateModel + Send + Sync) = &*new_resolved.model;
        let mut total = DeltaReuse::default();
        let mut patched_count = 0u64;
        // One unit-cache epoch per update: the mutex also serializes
        // concurrent updates, so the per-instance coalescing below only
        // ever races against ordinary queries, never another patch.
        let mut unit_cache = lock_recover(&self.unit_cache);
        for entry in &entries {
            self.check_deadline(deadline)?;
            let Some(old_instance) = self.instances.get(entry.key) else {
                continue; // evicted since it was recorded
            };
            let new_key = Engine::instance_key(&new_resolved, &entry.universe, &entry.options);
            if self.instances.get(new_key).is_some() {
                continue; // already present (e.g. an earlier chained update)
            }
            let mut reuse = None;
            let (patched, role) = self.instances.coalesce(new_key, || {
                old_instance
                    .apply_delta(&model, &core_delta, &mut unit_cache)
                    .map(|(next, r)| {
                        reuse = Some(r);
                        next
                    })
            });
            if matches!(role, Role::Follower) {
                continue; // a concurrent query compiled it for us
            }
            let Some(patched) = patched else { continue };
            if let Ok(instance) = &*patched {
                if let Some(r) = reuse {
                    total.absorb(r);
                }
                patched_count += 1;
                self.instances.insert(new_key, instance.clone());
                self.record_instance(new_hash, new_key, &entry.universe, &entry.options);
            }
            // A failed patch is simply dropped: the next query against the
            // new topology compiles cold, which is the pre-update behavior.
        }
        unit_cache.end_epoch();
        drop(unit_cache);

        Metrics::bump(&self.metrics.updates);
        let add = |c: &std::sync::atomic::AtomicU64, n: usize| {
            c.fetch_add(n as u64, Ordering::Relaxed);
        };
        add(&self.metrics.instances_patched, patched_count as usize);
        add(&self.metrics.delta_units_reused, total.units_reused);
        add(&self.metrics.delta_unit_cache_hits, total.unit_cache_hits);
        add(&self.metrics.delta_units_recompiled, total.units_compiled);

        let topology = new_resolved.model.topology();
        let mut m = Map::new();
        m.insert(
            "topology_hash".into(),
            Value::String(format!("{new_hash:016x}")),
        );
        m.insert(
            "previous_hash".into(),
            Value::String(format!("{:016x}", resolved.content_hash)),
        );
        m.insert(
            "num_nodes".into(),
            Value::Number(topology.num_nodes() as f64),
        );
        m.insert(
            "num_links".into(),
            Value::Number(topology.num_links() as f64),
        );
        m.insert(
            "instances_patched".into(),
            Value::Number(patched_count as f64),
        );
        let mut r = Map::new();
        r.insert(
            "units_reused".into(),
            Value::Number(total.units_reused as f64),
        );
        r.insert(
            "unit_cache_hits".into(),
            Value::Number(total.unit_cache_hits as f64),
        );
        r.insert(
            "units_compiled".into(),
            Value::Number(total.units_compiled as f64),
        );
        r.insert(
            "dirty_links".into(),
            Value::Number(total.dirty_links as f64),
        );
        r.insert(
            "full_recompiles".into(),
            Value::Number(total.full_recompiles as f64),
        );
        m.insert("reuse".into(), Value::Object(r));
        let value = Value::Object(m);
        lock_recover(&self.results).insert(result_key, value.clone());
        Ok((value, CacheStatus::Miss))
    }

    /// The full Eq. 6 pipeline with both cache layers.
    fn available_bandwidth(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<(Value, CacheStatus), ServiceError> {
        let reference = request
            .topology
            .as_ref()
            .ok_or_else(|| ServiceError::bad_request("this query requires a `topology`"))?;
        let resolved = self.resolve(reference)?;
        let (new_path, flows) = self.materialize(&resolved, &request.background, &request.path)?;
        let result_key = Engine::result_key(request, &resolved);
        if let Some(cached) = lock_recover(&self.results).get(result_key) {
            Metrics::bump(&self.metrics.result_cache_hits);
            return Ok(((*cached).clone(), CacheStatus::Hit));
        }
        Metrics::bump(&self.metrics.result_cache_misses);
        self.check_deadline(deadline)?;

        // One key derivation for both solver families: the universe is
        // computed exactly as the core library would, so a cached instance
        // answers queries bit-identically to a cold
        // [`awb_core::available_bandwidth`] call.
        let universe = link_universe(&flows, &new_path);
        let options = self.solve_options(request);
        let (instance, status) = self.instance(&resolved, &universe, &options)?;
        self.check_deadline(deadline)?;

        let model: &(dyn LinkRateModel + Send + Sync) = &*resolved.model;
        let started = Instant::now();
        let out = instance
            .query(&model, &flows, &new_path)
            .map_err(core_error)?;
        self.metrics.lp_latency.record(started.elapsed());

        let value = render_available_bandwidth(&out);
        lock_recover(&self.results).insert(result_key, value.clone());
        Ok((value, status))
    }

    /// The whole-arrival-sequence admission sweep (`admit_batch`).
    ///
    /// Arrivals are evaluated in order against the initial background plus
    /// every previously admitted arrival — each answer bit-identical to
    /// the equivalent single `admit` request a client would have issued at
    /// that point. One warm [`Session`] carries the sweep: arrivals whose
    /// link universe repeats (the common case when flows share links) pay
    /// zero compilation, and the LP scratch buffers are reused throughout.
    fn admit_batch(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<(Value, CacheStatus), ServiceError> {
        let reference = request
            .topology
            .as_ref()
            .ok_or_else(|| ServiceError::bad_request("this query requires a `topology`"))?;
        let resolved = self.resolve(reference)?;
        let result_key = Engine::result_key(request, &resolved);
        if let Some(cached) = lock_recover(&self.results).get(result_key) {
            Metrics::bump(&self.metrics.result_cache_hits);
            return Ok(((*cached).clone(), CacheStatus::Hit));
        }
        Metrics::bump(&self.metrics.result_cache_misses);
        self.check_deadline(deadline)?;

        let topology = resolved.model.topology();
        let mut flows = request
            .background
            .iter()
            .map(|f| {
                let p = TopologySpec::parse_path(topology, &f.path)?;
                Flow::new(p, f.demand_mbps).map_err(core_error)
            })
            .collect::<Result<Vec<_>, ServiceError>>()?;
        let arrivals = request
            .arrivals
            .iter()
            .map(|f| {
                let p = TopologySpec::parse_path(topology, &f.path)?;
                Ok((p, f.demand_mbps))
            })
            .collect::<Result<Vec<_>, ServiceError>>()?;

        let options = self.solve_options(request);
        let model: &(dyn LinkRateModel + Send + Sync) = &*resolved.model;
        let mut session = Session::new(&model, options);
        let mut rows = Vec::with_capacity(arrivals.len());
        let mut admitted_count = 0u64;
        for (path, demand) in arrivals {
            self.check_deadline(deadline)?;
            let started = Instant::now();
            let out = session.query(&flows, &path).map_err(core_error)?;
            self.metrics.lp_latency.record(started.elapsed());
            let available = out.bandwidth_mbps();
            // Same tolerance as `awb_core::feasibility::admits` and the
            // single-request `admit` path.
            let admitted = available + 1e-9 >= demand;
            let mut row = Map::new();
            row.insert("admitted".into(), Value::Bool(admitted));
            row.insert("demand_mbps".into(), Value::Number(demand));
            row.insert("available_mbps".into(), Value::Number(available));
            rows.push(Value::Object(row));
            if admitted {
                admitted_count += 1;
                flows.push(Flow::new(path, demand).map_err(core_error)?);
            }
        }
        let stats = session.stats();
        let mut m = Map::new();
        m.insert("results".into(), Value::Array(rows));
        m.insert(
            "admitted_count".into(),
            Value::Number(admitted_count as f64),
        );
        let mut s = Map::new();
        s.insert("compiles".into(), Value::Number(stats.compiles as f64));
        s.insert(
            "warm_queries".into(),
            Value::Number(stats.warm_queries as f64),
        );
        s.insert(
            "delta_applications".into(),
            Value::Number(stats.delta_applications as f64),
        );
        s.insert(
            "units_reused".into(),
            Value::Number(stats.delta_reuse.units_reused as f64),
        );
        s.insert(
            "unit_cache_hits".into(),
            Value::Number(stats.delta_reuse.unit_cache_hits as f64),
        );
        s.insert(
            "units_compiled".into(),
            Value::Number(stats.delta_reuse.units_compiled as f64),
        );
        m.insert("session".into(), Value::Object(s));
        let value = Value::Object(m);
        lock_recover(&self.results).insert(result_key, value.clone());
        Ok((value, CacheStatus::Miss))
    }

    /// Eq. 7/9 upper bounds and the §3.3 restricted-pool lower bound.
    fn bounds(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<(Value, CacheStatus), ServiceError> {
        let reference = request
            .topology
            .as_ref()
            .ok_or_else(|| ServiceError::bad_request("this query requires a `topology`"))?;
        let resolved = self.resolve(reference)?;
        let (new_path, flows) = self.materialize(&resolved, &request.background, &request.path)?;
        let result_key = Engine::result_key(request, &resolved);
        if let Some(cached) = lock_recover(&self.results).get(result_key) {
            Metrics::bump(&self.metrics.result_cache_hits);
            return Ok(((*cached).clone(), CacheStatus::Hit));
        }
        Metrics::bump(&self.metrics.result_cache_misses);
        self.check_deadline(deadline)?;

        let model: &(dyn LinkRateModel + Send + Sync) = &*resolved.model;
        let max_set_size = request.max_set_size.unwrap_or(2);
        let mut m = Map::new();
        match awb_core::bounds::clique_upper_bound(
            &model,
            &flows,
            &new_path,
            &awb_core::bounds::UpperBoundOptions::default(),
        ) {
            Ok(upper) => {
                m.insert("upper_mbps".into(), Value::Number(upper));
            }
            Err(e) => {
                m.insert("upper_mbps".into(), Value::Null);
                m.insert("upper_error".into(), Value::String(e.to_string()));
            }
        }
        self.check_deadline(deadline)?;
        match awb_core::bounds::lower_bound_max_set_size(&model, &flows, &new_path, max_set_size) {
            Ok(lower) => {
                m.insert("lower_mbps".into(), Value::Number(lower));
            }
            Err(e) => {
                m.insert("lower_mbps".into(), Value::Null);
                m.insert("lower_error".into(), Value::String(e.to_string()));
            }
        }
        m.insert(
            "lower_max_set_size".into(),
            Value::Number(max_set_size as f64),
        );
        let value = Value::Object(m);
        lock_recover(&self.results).insert(result_key, value.clone());
        Ok((value, CacheStatus::Miss))
    }

    /// The §4 distributed estimators (Eq. 10–13/15) against the optimal
    /// background schedule.
    fn estimate(&self, request: &Request) -> Result<Value, ServiceError> {
        let reference = request
            .topology
            .as_ref()
            .ok_or_else(|| ServiceError::bad_request("this query requires a `topology`"))?;
        let resolved = self.resolve(reference)?;
        let (new_path, flows) = self.materialize(&resolved, &request.background, &request.path)?;
        let model: &(dyn LinkRateModel + Send + Sync) = &*resolved.model;
        let idle = if flows.is_empty() {
            IdleMap::from_ratios(vec![1.0; model.topology().num_nodes()])
        } else {
            let (_, schedule) =
                awb_core::feasibility::min_airtime(&model, &flows).map_err(core_error)?;
            IdleMap::from_schedule(&model, &schedule)
        };
        let hops = Hop::for_path(&model, &idle, &new_path).ok_or_else(|| {
            ServiceError::bad_request("path contains a dead link (no supported rate)")
        })?;
        let mut estimates = Map::new();
        for estimator in Estimator::ALL {
            estimates.insert(
                estimator.label().replace(' ', "_"),
                Value::Number(estimator.estimate(&model, &hops)),
            );
        }
        let hop_rows: Vec<Value> = hops
            .iter()
            .map(|h| {
                let mut row = Map::new();
                row.insert("link".into(), Value::Number(h.link.index() as f64));
                row.insert("rate_mbps".into(), Value::Number(h.rate.as_mbps()));
                row.insert("idle".into(), Value::Number(h.idle));
                Value::Object(row)
            })
            .collect();
        let mut m = Map::new();
        m.insert("estimates".into(), Value::Object(estimates));
        m.insert("hops".into(), Value::Array(hop_rows));
        Ok(Value::Object(m))
    }
}

/// Renders an [`AvailableBandwidth`] as the `result` payload.
fn render_available_bandwidth(out: &AvailableBandwidth) -> Value {
    let mut m = Map::new();
    m.insert("bandwidth_mbps".into(), Value::Number(out.bandwidth_mbps()));
    m.insert("num_sets".into(), Value::Number(out.num_sets() as f64));
    m.insert(
        "universe".into(),
        Value::Array(
            out.universe()
                .iter()
                .map(|l| Value::Number(l.index() as f64))
                .collect(),
        ),
    );
    m.insert(
        "airtime_shadow_price".into(),
        Value::Number(out.airtime_shadow_price()),
    );
    m.insert(
        "bottleneck_links".into(),
        Value::Array(
            out.bottleneck_links()
                .into_iter()
                .map(|(l, scarcity)| {
                    let mut row = Map::new();
                    row.insert("link".into(), Value::Number(l.index() as f64));
                    row.insert("scarcity".into(), Value::Number(scarcity));
                    Value::Object(row)
                })
                .collect(),
        ),
    );
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_core::available_bandwidth;

    fn scenario_two_request(query: &str) -> Request {
        // Scenario II as a declarative spec: 5-node chain, 4 links,
        // rates {54, 36}, carrier sensing within two hops, plus the
        // rate-specific L1/L4 conflicts (paper Table, §2.4).
        let line = format!(
            r#"{{"query": "{query}", "topology": {{
                "nodes": [[0,0],[50,0],[100,0],[150,0],[200,0]],
                "links": [[0,1],[1,2],[2,3],[3,4]],
                "alone_rates": [[54,36],[54,36],[54,36],[54,36]],
                "conflicts": [[0,1],[0,2],[1,2],[1,3],[2,3]],
                "rate_conflicts": [[0,54,3,54],[0,54,3,36]]
            }},
            "path": [0,1,2,3], "demand_mbps": 10}}"#
        );
        Request::parse(&line).unwrap()
    }

    #[test]
    fn matches_the_direct_library_call_exactly() {
        let engine = Engine::new(EngineConfig::default());
        let request = scenario_two_request("available_bandwidth");
        let (value, status) = engine.handle(&request, None).unwrap();
        assert_eq!(status, Some(CacheStatus::Miss));
        let via_service = value.get("bandwidth_mbps").and_then(Value::as_f64).unwrap();

        let scenario = awb_workloads::ScenarioTwo::new();
        let direct = available_bandwidth(
            scenario.model(),
            &[],
            &scenario.path(),
            &AvailableBandwidthOptions::default(),
        )
        .unwrap();
        assert_eq!(via_service.to_bits(), direct.bandwidth_mbps().to_bits());
        // Paper §2.5: Scenario II's available bandwidth is 16.2 Mbps.
        assert!((via_service - 16.2).abs() < 0.05, "got {via_service}");
    }

    #[test]
    fn second_identical_query_hits_the_result_cache_byte_for_byte() {
        let engine = Engine::new(EngineConfig::default());
        let request = scenario_two_request("available_bandwidth");
        let (first, s1) = engine.handle(&request, None).unwrap();
        let (second, s2) = engine.handle(&request, None).unwrap();
        assert_eq!(s1, Some(CacheStatus::Miss));
        assert_eq!(s2, Some(CacheStatus::Hit));
        assert_eq!(first.to_string(), second.to_string());
        assert_eq!(
            engine
                .metrics
                .result_cache_hits
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn same_universe_different_demand_reuses_the_set_pool() {
        let engine = Engine::new(EngineConfig::default());
        let mut request = scenario_two_request("available_bandwidth");
        request.background = vec![FlowSpec {
            path: vec![0, 1, 2, 3],
            demand_mbps: 1.0,
        }];
        let (_, s1) = engine.handle(&request, None).unwrap();
        assert_eq!(s1, Some(CacheStatus::Miss));
        request.background[0].demand_mbps = 2.0;
        let (_, s2) = engine.handle(&request, None).unwrap();
        assert_eq!(s2, Some(CacheStatus::SetsHit));
    }

    #[test]
    fn admit_compares_against_the_lp_value() {
        let engine = Engine::new(EngineConfig::default());
        let admit_low = scenario_two_request("admit"); // demand 10 < 16.2
        let (value, _) = engine.handle(&admit_low, None).unwrap();
        assert_eq!(value.get("admitted").and_then(Value::as_bool), Some(true));
        let mut admit_high = scenario_two_request("admit");
        admit_high.demand_mbps = Some(20.0);
        let (value, status) = engine.handle(&admit_high, None).unwrap();
        assert_eq!(value.get("admitted").and_then(Value::as_bool), Some(false));
        // Both admits share one cached LP answer.
        assert_eq!(status, Some(CacheStatus::Hit));
    }

    #[test]
    fn register_then_query_by_hash() {
        let engine = Engine::new(EngineConfig::default());
        let mut register = scenario_two_request("register_topology");
        register.path = Vec::new();
        let (value, _) = engine.handle(&register, None).unwrap();
        let hash = value
            .get("topology_hash")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(value.get("num_links").and_then(Value::as_u64), Some(4));

        let line = format!(
            r#"{{"query": "available_bandwidth", "topology": "{hash}", "path": [0,1,2,3]}}"#
        );
        let request = Request::parse(&line).unwrap();
        let (answer, _) = engine.handle(&request, None).unwrap();
        assert!(
            answer
                .get("bandwidth_mbps")
                .and_then(Value::as_f64)
                .unwrap()
                > 16.0
        );

        let unknown = Request::parse(
            r#"{"query": "available_bandwidth", "topology": "deadbeefdeadbeef", "path": [0]}"#,
        )
        .unwrap();
        let err = engine.handle(&unknown, None).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownTopology);
    }

    #[test]
    fn bounds_and_estimate_answer() {
        let engine = Engine::new(EngineConfig::default());
        let bounds = scenario_two_request("bounds");
        let (value, _) = engine.handle(&bounds, None).unwrap();
        let upper = value.get("upper_mbps").and_then(Value::as_f64).unwrap();
        // Eq. 9 upper bound must dominate the Eq. 6 exact value (16.2).
        assert!(upper >= 16.2 - 0.05, "upper bound {upper} too small");
        let lower = value.get("lower_mbps").and_then(Value::as_f64).unwrap();
        assert!(lower <= upper + 1e-9);

        let estimate = scenario_two_request("estimate");
        let (value, _) = engine.handle(&estimate, None).unwrap();
        let estimates = value.get("estimates").and_then(Value::as_object).unwrap();
        assert_eq!(estimates.len(), Estimator::ALL.len());
        assert!(estimates.values().all(|v| v.as_f64().is_some()));
        let hops = value.get("hops").and_then(Value::as_array).unwrap();
        assert_eq!(hops.len(), 4);
    }

    #[test]
    fn an_elapsed_deadline_rejects_the_request() {
        let engine = Engine::new(EngineConfig::default());
        let request = scenario_two_request("available_bandwidth");
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = engine.handle(&request, Some(past)).unwrap_err();
        assert_eq!(err.code, ErrorCode::DeadlineExceeded);
        assert_eq!(
            engine
                .metrics
                .deadline_exceeded
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn colgen_engine_matches_enumeration_and_reuses_its_oracle() {
        let enumerating = Engine::new(EngineConfig::default());
        let colgen = Engine::new(EngineConfig {
            solver: SolverKind::ColumnGeneration,
            ..EngineConfig::default()
        });
        let request = scenario_two_request("available_bandwidth");
        let (full, s_full) = enumerating.handle(&request, None).unwrap();
        let (cg, s_cg) = colgen.handle(&request, None).unwrap();
        assert_eq!(s_full, Some(CacheStatus::Miss));
        assert_eq!(s_cg, Some(CacheStatus::Miss));
        let full_bw = full.get("bandwidth_mbps").and_then(Value::as_f64).unwrap();
        let cg_bw = cg.get("bandwidth_mbps").and_then(Value::as_f64).unwrap();
        assert!((full_bw - cg_bw).abs() < 1e-6, "{full_bw} vs {cg_bw}");
        // num_sets reports the restricted master's column count, which on
        // a topology this small may exceed the dominance-pruned full pool
        // (the singleton seeds are dominated columns).
        assert!(cg.get("num_sets").and_then(Value::as_u64).unwrap() > 0);

        // An admission sequence on the same topology and universe reuses
        // the compiled oracle and warm column pool (bypassing the result
        // cache by varying the demand).
        let mut admit = scenario_two_request("admit");
        admit.background = vec![FlowSpec {
            path: vec![0, 1, 2, 3],
            demand_mbps: 1.0,
        }];
        let (_, s1) = colgen.handle(&admit, None).unwrap();
        admit.background[0].demand_mbps = 2.0;
        let (value, s2) = colgen.handle(&admit, None).unwrap();
        assert_eq!(s1, Some(CacheStatus::SetsHit));
        assert_eq!(s2, Some(CacheStatus::SetsHit));
        assert_eq!(value.get("admitted").and_then(Value::as_bool), Some(true));
    }

    /// Two-component declarative fixture for the update tests: three
    /// node-disjoint parallel links, links 0 and 1 in declared conflict
    /// (one component), link 2 independent (its own component).
    fn two_component_spec(rates2: &str) -> String {
        format!(
            r#"{{
                "nodes": [[0,0],[50,0],[0,100],[50,100],[0,200],[50,200]],
                "links": [[0,1],[2,3],[4,5]],
                "alone_rates": [[54],[54],{rates2}],
                "conflicts": [[0,1]]
            }}"#
        )
    }

    /// An `available_bandwidth` request for path `[0]` whose background
    /// flows pull links 1 and 2 into the universe, so one compiled
    /// instance covers both components.
    fn two_component_query(topology_hash: &str) -> Request {
        Request::parse(&format!(
            r#"{{"query": "available_bandwidth", "topology": "{topology_hash}",
                 "background": [{{"path": [1], "demand_mbps": 0.5}},
                                {{"path": [2], "demand_mbps": 0.5}}],
                 "path": [0]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn update_patches_cached_instances_and_matches_fresh_compile() {
        let engine = Engine::new(EngineConfig {
            decompose: true,
            ..EngineConfig::default()
        });
        let register = Request::parse(&format!(
            r#"{{"query": "register_topology", "topology": {}}}"#,
            two_component_spec("[54]")
        ))
        .unwrap();
        let (value, _) = engine.handle(&register, None).unwrap();
        let hash = value
            .get("topology_hash")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        // Warm one instance over the full universe.
        let (_, s) = engine.handle(&two_component_query(&hash), None).unwrap();
        assert_eq!(s, Some(CacheStatus::Miss));

        // Patch link 2's rate list: only its singleton component is dirty.
        let update = Request::parse(&format!(
            r#"{{"query": "update", "topology": "{hash}",
                 "delta": {{"rate_changed_links": [[2, [36]]]}}}}"#
        ))
        .unwrap();
        let (out, s) = engine.handle(&update, None).unwrap();
        assert_eq!(s, Some(CacheStatus::Miss));
        assert_eq!(
            out.get("instances_patched").and_then(Value::as_u64),
            Some(1)
        );
        let reuse = out.get("reuse").unwrap();
        assert_eq!(reuse.get("units_reused").and_then(Value::as_u64), Some(1));
        assert_eq!(reuse.get("units_compiled").and_then(Value::as_u64), Some(1));
        let new_hash = out
            .get("topology_hash")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert_ne!(new_hash, hash);

        // The patched topology answers warm — its instance was migrated,
        // not evicted — and byte-identically to a cold engine that was
        // handed the post-delta spec directly.
        let (patched_answer, s) = engine
            .handle(&two_component_query(&new_hash), None)
            .unwrap();
        assert_eq!(s, Some(CacheStatus::SetsHit));

        let cold = Engine::new(EngineConfig {
            decompose: true,
            ..EngineConfig::default()
        });
        let cold_register = Request::parse(&format!(
            r#"{{"query": "register_topology", "topology": {}}}"#,
            two_component_spec("[36]")
        ))
        .unwrap();
        let (value, _) = cold.handle(&cold_register, None).unwrap();
        let cold_hash = value.get("topology_hash").and_then(Value::as_str).unwrap();
        assert_eq!(
            cold_hash, new_hash,
            "patched spec must hash like a fresh one"
        );
        let (cold_answer, _) = cold.handle(&two_component_query(cold_hash), None).unwrap();
        assert_eq!(patched_answer.to_string(), cold_answer.to_string());

        // The metrics saw the patch.
        let stats = engine.stats_value();
        assert_eq!(stats.get("updates").and_then(Value::as_u64), Some(1));
        assert_eq!(
            stats.get("instances_patched").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            stats.get("delta_units_reused").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn replaying_an_update_hits_the_result_cache() {
        let engine = Engine::new(EngineConfig {
            decompose: true,
            ..EngineConfig::default()
        });
        let register = Request::parse(&format!(
            r#"{{"query": "register_topology", "topology": {}}}"#,
            two_component_spec("[54]")
        ))
        .unwrap();
        let (value, _) = engine.handle(&register, None).unwrap();
        let hash = value.get("topology_hash").and_then(Value::as_str).unwrap();
        let update = Request::parse(&format!(
            r#"{{"query": "update", "topology": "{hash}",
                 "delta": {{"moved_nodes": [[3, 160.0, 10.0]]}}}}"#
        ))
        .unwrap();
        let (first, s1) = engine.handle(&update, None).unwrap();
        let (second, s2) = engine.handle(&update, None).unwrap();
        assert_eq!(s1, Some(CacheStatus::Miss));
        assert_eq!(s2, Some(CacheStatus::Hit));
        assert_eq!(first.to_string(), second.to_string());
        // A different delta against the same base is NOT a replay.
        let other = Request::parse(&format!(
            r#"{{"query": "update", "topology": "{hash}",
                 "delta": {{"moved_nodes": [[3, 170.0, 10.0]]}}}}"#
        ))
        .unwrap();
        let (_, s3) = engine.handle(&other, None).unwrap();
        assert_eq!(s3, Some(CacheStatus::Miss));
    }

    #[test]
    fn update_of_a_sinr_topology_moves_nodes_and_stays_queryable() {
        let engine = Engine::new(EngineConfig {
            decompose: true,
            solver: SolverKind::ColumnGeneration,
            ..EngineConfig::default()
        });
        let register = Request::parse(
            r#"{"query": "register_topology", "topology": {
                "model": "sinr",
                "nodes": [[0,0],[40,0],[800,0],[840,0]],
                "links": [[0,1],[2,3]]
            }}"#,
        )
        .unwrap();
        let (value, _) = engine.handle(&register, None).unwrap();
        let hash = value
            .get("topology_hash")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let query = Request::parse(&format!(
            r#"{{"query": "available_bandwidth", "topology": "{hash}", "path": [0]}}"#
        ))
        .unwrap();
        let (_, s) = engine.handle(&query, None).unwrap();
        assert_eq!(s, Some(CacheStatus::Miss));

        // Nudge the far pair; the near pair's component is untouched.
        let update = Request::parse(&format!(
            r#"{{"query": "update", "topology": "{hash}",
                 "delta": {{"moved_nodes": [[2, 810.0, 0.0], [3, 850.0, 0.0]]}}}}"#
        ))
        .unwrap();
        let (out, _) = engine.handle(&update, None).unwrap();
        let new_hash = out
            .get("topology_hash")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        assert_eq!(
            out.get("instances_patched").and_then(Value::as_u64),
            Some(1)
        );
        let warm = Request::parse(&format!(
            r#"{{"query": "available_bandwidth", "topology": "{new_hash}", "path": [0]}}"#
        ))
        .unwrap();
        let (answer, s) = engine.handle(&warm, None).unwrap();
        assert_eq!(s, Some(CacheStatus::SetsHit));
        assert!(
            answer
                .get("bandwidth_mbps")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn infeasible_background_is_a_structured_error() {
        let engine = Engine::new(EngineConfig::default());
        let mut request = scenario_two_request("available_bandwidth");
        request.background = vec![FlowSpec {
            path: vec![0, 1, 2, 3],
            demand_mbps: 1000.0,
        }];
        let err = engine.handle(&request, None).unwrap_err();
        assert_eq!(err.code, ErrorCode::InfeasibleBackground);
    }
}
