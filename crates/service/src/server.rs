//! The daemon: a std-only thread-pool TCP server speaking newline-delimited
//! JSON, plus a single-shot stdin/stdout mode.
//!
//! Concurrency shape: one non-blocking accept loop feeds accepted
//! connections into a [`BoundedQueue`]; a fixed pool of worker threads pops
//! connections and serves every request line on them. When the queue is
//! full the accept loop answers immediately with a structured `overloaded`
//! error and closes the connection — producers never block, clients get
//! explicit backpressure. [`ServerHandle::shutdown`] stops accepting,
//! drains queued and in-flight connections, joins every thread and logs a
//! metrics summary.

use crate::engine::{Engine, EngineConfig};
use crate::protocol::{self, ErrorCode, Request, ServiceError};
use crate::queue::{BoundedQueue, PushError};
use serde_json::Value;
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the accept loop and connection reads sleep between polls.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Connections admitted to the queue before `overloaded` rejections.
    pub queue_capacity: usize,
    /// Bytes a single unterminated frame may buffer before the connection
    /// is answered with `frame_too_large` and closed.
    pub max_frame_len: usize,
    /// Engine (cache) configuration.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            max_frame_len: 1 << 20,
            engine: EngineConfig::default(),
        }
    }
}

/// A running server; dropping it without [`ServerHandle::shutdown`] leaves
/// the threads running for the process lifetime.
pub struct ServerHandle {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts a server on `config.addr`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr.as_str())?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let engine = Arc::new(Engine::new(config.engine));
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(BoundedQueue::<TcpStream>::new(config.queue_capacity.max(1)));

    let max_frame_len = config.max_frame_len.max(1);
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    serve_connection(&engine, stream, &shutdown, max_frame_len);
                }
            })
        })
        .collect();

    let acceptor = {
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => dispatch(&queue, stream),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => std::thread::sleep(POLL_INTERVAL),
                }
            }
            // Stop the workers once no more connections will arrive;
            // queued connections are still drained before they exit.
            queue.close();
        })
    };

    Ok(ServerHandle {
        engine,
        local_addr,
        shutdown,
        acceptor,
        workers,
    })
}

/// Hands an accepted connection to the workers, or rejects it.
fn dispatch(queue: &BoundedQueue<TcpStream>, stream: TcpStream) {
    if let Err((reason, mut stream)) = queue.try_push(stream) {
        let error = match reason {
            PushError::Full => ServiceError::new(
                ErrorCode::Overloaded,
                "request queue full; retry with backoff",
            ),
            PushError::Closed => {
                ServiceError::new(ErrorCode::ShuttingDown, "server is shutting down")
            }
        };
        let line = protocol::error_response(&Value::Null, &error);
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.write_all(b"\n");
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared engine (for metrics inspection in tests).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// connections, join all threads. Returns the final metrics summary
    /// (also logged to stderr).
    pub fn shutdown(self) -> String {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        let summary = self.engine.metrics.summary();
        eprintln!("awb-service shutdown: {summary}");
        summary
    }

    /// Blocks the calling thread for the lifetime of the accept loop —
    /// i.e. forever, for a daemon with no external shutdown signal.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Serves every request line on one connection until EOF (or until a
/// shutdown is requested and the client goes quiet).
fn serve_connection(engine: &Engine, stream: TcpStream, shutdown: &AtomicBool, max_frame: usize) {
    // Poll reads so the worker can notice a shutdown between lines.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut stream = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve complete lines already buffered.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            let response = handle_line(engine, line.trim());
            if writer.write_all(response.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
                || writer.flush().is_err()
            {
                return;
            }
        }
        // Whatever remains is an unterminated partial frame; cap it so a
        // client streaming garbage without newlines cannot grow the buffer
        // unboundedly.
        if pending.len() > max_frame {
            let error = ServiceError::new(
                ErrorCode::FrameTooLarge,
                format!("frame exceeds the {max_frame}-byte cap"),
            );
            let line = protocol::error_response(&Value::Null, &error);
            let _ = writer.write_all(line.as_bytes());
            let _ = writer.write_all(b"\n");
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // In-flight work is done (no buffered full line); stop
                // waiting for more input only when shutting down.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Parses and executes one request line, rendering the response line.
pub fn handle_line(engine: &Engine, line: &str) -> String {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            crate::metrics::Metrics::bump(&engine.metrics.requests_error);
            // Echo the id even when validation fails so clients can still
            // correlate the error; truly malformed JSON leaves it null.
            let id = serde_json::from_str::<Value>(line)
                .ok()
                .and_then(|v| v.get("id").cloned())
                .unwrap_or(Value::Null);
            return protocol::error_response(&id, &e);
        }
    };
    let started = Instant::now();
    let deadline = request
        .deadline_ms
        .map(|ms| started + Duration::from_millis(ms));
    match engine.handle(&request, deadline) {
        Ok((result, cache)) => {
            crate::metrics::Metrics::bump(&engine.metrics.requests_ok);
            let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            protocol::ok_response(&request.id, request.query, result, cache, elapsed_us)
        }
        Err(e) => {
            crate::metrics::Metrics::bump(&engine.metrics.requests_error);
            protocol::error_response(&request.id, &e)
        }
    }
}

/// Single-shot mode: serves newline-delimited requests from `input` until
/// EOF, writing one response line each to `output`. Returns the number of
/// requests served.
///
/// # Errors
///
/// Propagates write failures (input errors end the stream instead).
pub fn serve_stdio<R: BufRead, W: Write>(
    engine: &Engine,
    input: R,
    output: &mut W,
) -> io::Result<usize> {
    let mut served = 0;
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(engine, line.trim());
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        served += 1;
    }
    Ok(served)
}

/// A minimal blocking client for one request/response exchange, used by the
/// CLI's `query` subcommand and the integration tests.
///
/// # Errors
///
/// Propagates connection and I/O failures; `ErrorKind::UnexpectedEof` when
/// the server closes without answering.
pub fn query_once<A: ToSocketAddrs>(addr: A, request_line: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request_line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = io::BufReader::new(stream);
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection without answering",
        ));
    }
    Ok(line.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    // Single-line on purpose: the wire protocol is one request per line.
    const RELAY: &str = r#""topology": {"nodes": [[0,0],[50,0],[100,0]], "links": [[0,1],[1,2]], "alone_rates": [[54],[54]], "conflicts": [[0,1]]}"#;

    #[test]
    fn stdio_round_trip() {
        let engine = Engine::new(EngineConfig::default());
        let input = format!(
            "{{\"query\": \"available_bandwidth\", \"id\": 1, {RELAY}, \"path\": [0,1]}}\n\
             not json\n\
             {{\"query\": \"stats\"}}\n"
        );
        let mut out = Vec::new();
        let served = serve_stdio(&engine, Cursor::new(input), &mut out).unwrap();
        assert_eq!(served, 3);
        let lines: Vec<Value> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(lines[0].get("status").and_then(Value::as_str), Some("ok"));
        // Two conflicting 54 Mbps hops share the channel: 27 Mbps end to end.
        let bw = lines[0]["result"]["bandwidth_mbps"].as_f64().unwrap();
        assert!((bw - 27.0).abs() < 1e-6, "got {bw}");
        assert_eq!(
            lines[1].get("status").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            lines[2]["result"]["requests_ok"].as_u64(),
            Some(1),
            "stats sees the earlier success"
        );
    }

    #[test]
    fn tcp_round_trip_and_graceful_shutdown() {
        let server = serve(ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let line = format!(r#"{{"query": "available_bandwidth", {RELAY}, "path": [0,1]}}"#);
        let response: Value = serde_json::from_str(&query_once(addr, &line).unwrap()).unwrap();
        assert_eq!(response.get("status").and_then(Value::as_str), Some("ok"));
        let summary = server.shutdown();
        assert!(summary.contains("ok=1"), "summary was: {summary}");
    }

    #[test]
    fn deadline_zero_is_rejected_structurally() {
        let engine = Engine::new(EngineConfig::default());
        let line = format!(
            r#"{{"query": "available_bandwidth", {RELAY}, "path": [0,1], "deadline_ms": 0}}"#
        );
        let response: Value = serde_json::from_str(&handle_line(&engine, &line)).unwrap();
        assert_eq!(
            response["error"].get("code").and_then(Value::as_str),
            Some("deadline_exceeded")
        );
    }
}
