//! Lock-free service metrics: request counters, cache hit/miss counts, and
//! coarse latency histograms for the two expensive stages (independent-set
//! enumeration and LP solving).
//!
//! Everything is plain atomics so the hot path never takes a lock for
//! observability. Histograms bucket by `log2(microseconds)` — 32 buckets
//! cover 1 µs to ~1 hour, which is plenty of resolution for "is the cache
//! working" questions.

use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 latency buckets (bucket `i` ≈ `[2^i, 2^(i+1))` µs).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A log2-bucketed latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// JSON rendering: count, mean, and the non-empty buckets as
    /// `{"le_us": upper_bound, "count": n}` rows.
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("count".into(), Value::Number(self.count() as f64));
        m.insert("mean_us".into(), Value::Number(self.mean_us()));
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| {
                    let mut row = Map::new();
                    row.insert("le_us".into(), Value::Number((1u64 << i) as f64));
                    row.insert("count".into(), Value::Number(n as f64));
                    Value::Object(row)
                })
            })
            .collect();
        m.insert("buckets".into(), Value::Array(buckets));
        Value::Object(m)
    }
}

/// All service counters, shared across worker threads.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests that produced an `ok` response.
    pub requests_ok: AtomicU64,
    /// Requests that produced a structured error response.
    pub requests_error: AtomicU64,
    /// Requests rejected with `overloaded` before entering the queue.
    pub rejected_overload: AtomicU64,
    /// Requests that exceeded their deadline.
    pub deadline_exceeded: AtomicU64,
    /// Enumeration-cache hits (set pool reused).
    pub sets_cache_hits: AtomicU64,
    /// Enumeration-cache misses (set pool enumerated).
    pub sets_cache_misses: AtomicU64,
    /// Enumerations avoided by coalescing behind a concurrent leader.
    pub coalesced: AtomicU64,
    /// Result-cache hits (full LP answer reused).
    pub result_cache_hits: AtomicU64,
    /// Result-cache misses.
    pub result_cache_misses: AtomicU64,
    /// `update` requests that performed a patch (result-cache replays of
    /// the same update are counted as result hits, not here).
    pub updates: AtomicU64,
    /// Compiled instances migrated across a topology update.
    pub instances_patched: AtomicU64,
    /// Per-component delta-reuse totals across all updates: components
    /// structurally reused without rehashing.
    pub delta_units_reused: AtomicU64,
    /// Components re-materialized from the unit cache by content hash.
    pub delta_unit_cache_hits: AtomicU64,
    /// Components actually recompiled (the only exponential work an
    /// update pays).
    pub delta_units_recompiled: AtomicU64,
    /// Latency of independent-set enumeration (cache misses only).
    pub enumeration_latency: Histogram,
    /// Latency of LP solves (result-cache misses only).
    pub lp_latency: Histogram,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as a JSON object (the `stats` response payload).
    pub fn to_value(&self) -> Value {
        let n = |c: &AtomicU64| Value::Number(c.load(Ordering::Relaxed) as f64);
        let mut m = Map::new();
        m.insert("requests_ok".into(), n(&self.requests_ok));
        m.insert("requests_error".into(), n(&self.requests_error));
        m.insert("rejected_overload".into(), n(&self.rejected_overload));
        m.insert("deadline_exceeded".into(), n(&self.deadline_exceeded));
        m.insert("sets_cache_hits".into(), n(&self.sets_cache_hits));
        m.insert("sets_cache_misses".into(), n(&self.sets_cache_misses));
        m.insert("coalesced".into(), n(&self.coalesced));
        m.insert("result_cache_hits".into(), n(&self.result_cache_hits));
        m.insert("result_cache_misses".into(), n(&self.result_cache_misses));
        m.insert("updates".into(), n(&self.updates));
        m.insert("instances_patched".into(), n(&self.instances_patched));
        m.insert("delta_units_reused".into(), n(&self.delta_units_reused));
        m.insert(
            "delta_unit_cache_hits".into(),
            n(&self.delta_unit_cache_hits),
        );
        m.insert(
            "delta_units_recompiled".into(),
            n(&self.delta_units_recompiled),
        );
        m.insert(
            "enumeration_latency".into(),
            self.enumeration_latency.to_value(),
        );
        m.insert("lp_latency".into(), self.lp_latency.to_value());
        Value::Object(m)
    }

    /// One-line summary for the shutdown log.
    pub fn summary(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "ok={} err={} overloaded={} deadline={} sets_cache={}/{} coalesced={} \
             result_cache={}/{} updates={} patched={} enum_mean={:.0}us lp_mean={:.0}us",
            g(&self.requests_ok),
            g(&self.requests_error),
            g(&self.rejected_overload),
            g(&self.deadline_exceeded),
            g(&self.sets_cache_hits),
            g(&self.sets_cache_hits) + g(&self.sets_cache_misses),
            g(&self.coalesced),
            g(&self.result_cache_hits),
            g(&self.result_cache_hits) + g(&self.result_cache_misses),
            g(&self.updates),
            g(&self.instances_patched),
            self.enumeration_latency.mean_us(),
            self.lp_latency.mean_us(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = Histogram::default();
        h.record(Duration::from_micros(1)); // bucket 1
        h.record(Duration::from_micros(1)); // bucket 1
        h.record(Duration::from_micros(1000)); // bucket 10
        assert_eq!(h.count(), 3);
        assert!((h.mean_us() - 334.0).abs() < 1.0);
        let v = h.to_value();
        let buckets = v.get("buckets").and_then(Value::as_array).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].get("le_us").and_then(Value::as_u64), Some(2));
        assert_eq!(buckets[0].get("count").and_then(Value::as_u64), Some(2));
        assert_eq!(buckets[1].get("le_us").and_then(Value::as_u64), Some(1024));
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        let v = h.to_value();
        let buckets = v.get("buckets").and_then(Value::as_array).unwrap();
        assert_eq!(buckets[0].get("le_us").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn snapshot_includes_every_counter() {
        let m = Metrics::new();
        Metrics::bump(&m.requests_ok);
        Metrics::bump(&m.sets_cache_hits);
        let v = m.to_value();
        assert_eq!(v.get("requests_ok").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("sets_cache_hits").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("rejected_overload").and_then(Value::as_u64), Some(0));
        assert!(m.summary().contains("ok=1"));
    }
}
