//! A small LRU cache keyed by content hashes.
//!
//! Values are stored behind [`Arc`] so a hit hands back a cheap clone while
//! eviction stays O(capacity) bookkeeping. Recency is tracked with a
//! monotonically increasing stamp per entry — at the sizes the service uses
//! (tens to hundreds of entries) a linear eviction scan is cheaper and far
//! simpler than an intrusive list.

use std::collections::BTreeMap;
use std::sync::Arc;

/// An LRU map from `u64` keys (content hashes) to shared values.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    stamp: u64,
    evictions: u64,
    entries: BTreeMap<u64, (u64, Arc<V>)>,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables caching: every `get` misses and `insert` is a no-op.
    pub fn new(capacity: usize) -> LruCache<V> {
        LruCache {
            capacity,
            stamp: 0,
            evictions: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<V>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&key).map(|(s, v)| {
            *s = stamp;
            Arc::clone(v)
        })
    }

    /// Inserts `key → value`, evicting the least-recently-used entry if the
    /// cache is full. Returns the value wrapped in its shared handle.
    pub fn insert(&mut self, key: u64, value: V) -> Arc<V> {
        self.insert_shared(key, Arc::new(value))
    }

    /// Like [`LruCache::insert`] for a value that is already shared —
    /// avoids cloning when the producer holds an [`Arc`] (e.g. a coalesced
    /// enumeration result).
    pub fn insert_shared(&mut self, key: u64, value: Arc<V>) -> Arc<V> {
        if self.capacity == 0 {
            return value;
        }
        self.stamp += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (s, _))| *s)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(key, (self.stamp, Arc::clone(&value)));
        value
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(1).as_deref(), Some(&"one")); // refresh 1
        c.insert(3, "three"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(2).is_none());
        assert_eq!(c.get(1).as_deref(), Some(&"one"));
        assert_eq!(c.get(3).as_deref(), Some(&"three"));
    }

    #[test]
    fn reinserting_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(2, 21); // overwrite, not a new slot
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).as_deref(), Some(&10));
        assert_eq!(c.get(2).as_deref(), Some(&21));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }
}
