//! A bounded MPMC work queue with non-blocking admission.
//!
//! Backpressure policy: producers never block. [`BoundedQueue::try_push`]
//! fails immediately when the queue is full, which the server turns into a
//! structured `overloaded` error so clients can back off. Consumers block on
//! a condvar until work arrives or the queue is closed for shutdown.

use crate::lock::{lock_recover, wait_recover};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed by [`BoundedQueue::close`].
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    nonempty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError`]-tagged `Err` when the
    /// queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut state = lock_recover(&self.state);
        if state.closed {
            return Err((PushError::Closed, item));
        }
        if state.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        state.items.push_back(item);
        drop(state);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed **and** drained — the worker
    /// shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = wait_recover(&self.nonempty, state);
        }
    }

    /// Closes the queue: new pushes fail with [`PushError::Closed`], and
    /// consumers drain remaining items before seeing `None`.
    pub fn close(&self) {
        let mut state = lock_recover(&self.state);
        state.closed = true;
        drop(state);
        self.nonempty.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3).unwrap_err(), (PushError::Full, 3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3).unwrap_err(), (PushError::Closed, 3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first, second)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), (Some(7), None));
    }
}
