//! A sharded LRU with per-shard coalescing for the compiled-instance
//! cache.
//!
//! The single-mutex instance cache serializes every lookup; under the
//! reactor's sustained load that mutex is the first thing worker threads
//! pile up on, even though the expensive work (compilation) happens
//! outside it. Sharding splits the key space over N independent
//! `Mutex<LruCache>` shards, so concurrent requests for *different*
//! instances never contend, while requests for the *same* instance keep
//! the leader/follower coalescing they had before — the coalescer is
//! per-shard too, which keeps its inflight map short.
//!
//! Keys are FNV content hashes (already uniformly mixed), so shard
//! selection is a simple modulo. Per-shard hit/miss counters are relaxed
//! atomics; eviction counts live inside each [`LruCache`]. The `stats`
//! verb reports all of them per shard.

use crate::cache::LruCache;
use crate::coalesce::{Coalescer, Role};
use crate::lock::lock_recover;
use serde_json::{Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One shard: an LRU slice plus its counters and coalescer.
struct Shard<V, C> {
    cache: Mutex<LruCache<V>>,
    coalescer: Coalescer<C>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Observable state of one shard, for the `stats` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Cache hits on this shard.
    pub hits: u64,
    /// Cache misses on this shard.
    pub misses: u64,
    /// Entries evicted from this shard.
    pub evictions: u64,
    /// Entries currently cached in this shard.
    pub len: usize,
}

/// An N-way sharded LRU over `u64` content-hash keys. `V` is the cached
/// value; `C` is the per-key coalesced computation result (they differ for
/// the instance cache, which coalesces `Result<_, _>` but caches only the
/// `Ok` arm).
pub struct ShardedLru<V, C> {
    shards: Vec<Shard<V, C>>,
}

impl<V, C> ShardedLru<V, C> {
    /// Creates `shards` shards (clamped to ≥ 1) sharing `total_capacity`
    /// entries as evenly as possible (each shard gets the ceiling, so the
    /// effective capacity rounds up rather than down).
    pub fn new(shards: usize, total_capacity: usize) -> ShardedLru<V, C> {
        let shards = shards.max(1);
        let per_shard = total_capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Shard {
                    cache: Mutex::new(LruCache::new(per_shard)),
                    coalescer: Coalescer::new(),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: u64) -> &Shard<V, C> {
        // FNV keys are uniformly mixed; plain modulo spreads them evenly.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Looks up `key` in its shard, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let shard = self.shard(key);
        let found = lock_recover(&shard.cache).get(key);
        match found {
            Some(v) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value` into its shard.
    pub fn insert(&self, key: u64, value: V) -> Arc<V> {
        lock_recover(&self.shard(key).cache).insert(key, value)
    }

    /// Runs `compute` for `key` through the shard's coalescer: concurrent
    /// callers for the same key share one execution.
    pub fn coalesce<F>(&self, key: u64, compute: F) -> (Option<Arc<C>>, Role)
    where
        F: FnOnce() -> C,
    {
        self.shard(key).coalescer.run(key, compute)
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_recover(&s.cache).len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard counters, in shard order.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let cache = lock_recover(&s.cache);
                ShardStats {
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    evictions: cache.evictions(),
                    len: cache.len(),
                }
            })
            .collect()
    }

    /// The `stats`-verb rendering: one JSON row per shard plus totals.
    pub fn stats_value(&self) -> Value {
        let stats = self.stats();
        let mut total = ShardStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            len: 0,
        };
        let rows: Vec<Value> = stats
            .iter()
            .map(|s| {
                total.hits += s.hits;
                total.misses += s.misses;
                total.evictions += s.evictions;
                total.len += s.len;
                let mut row = Map::new();
                row.insert("hits".into(), Value::Number(s.hits as f64));
                row.insert("misses".into(), Value::Number(s.misses as f64));
                row.insert("evictions".into(), Value::Number(s.evictions as f64));
                row.insert("len".into(), Value::Number(s.len as f64));
                Value::Object(row)
            })
            .collect();
        let mut m = Map::new();
        m.insert("shards".into(), Value::Array(rows));
        m.insert("hits".into(), Value::Number(total.hits as f64));
        m.insert("misses".into(), Value::Number(total.misses as f64));
        m.insert("evictions".into(), Value::Number(total.evictions as f64));
        m.insert("len".into(), Value::Number(total.len as f64));
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_route_to_fixed_shards_and_count_hits() {
        let cache: ShardedLru<&'static str, ()> = ShardedLru::new(4, 16);
        assert_eq!(cache.shard_count(), 4);
        assert!(cache.get(5).is_none());
        cache.insert(5, "five");
        assert_eq!(cache.get(5).as_deref(), Some(&"five"));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        // Key 5 lives in shard 1 (5 % 4); its counters saw one miss, one hit.
        assert_eq!(stats[1].misses, 1);
        assert_eq!(stats[1].hits, 1);
        assert_eq!(stats[0].hits + stats[2].hits + stats[3].hits, 0);
    }

    #[test]
    fn eviction_is_per_shard() {
        // 2 shards × 1 entry each: keys 0,2,4 share shard 0.
        let cache: ShardedLru<u32, ()> = ShardedLru::new(2, 2);
        cache.insert(0, 10);
        cache.insert(2, 12); // evicts 0 within shard 0
        cache.insert(1, 11); // shard 1, untouched
        assert!(cache.get(0).is_none());
        assert_eq!(cache.get(2).as_deref(), Some(&12));
        assert_eq!(cache.get(1).as_deref(), Some(&11));
        let stats = cache.stats();
        assert_eq!(stats[0].evictions, 1);
        assert_eq!(stats[1].evictions, 0);
    }

    #[test]
    fn coalescing_still_dedups_within_a_shard() {
        use std::sync::atomic::AtomicUsize;
        let cache: Arc<ShardedLru<(), u64>> = Arc::new(ShardedLru::new(4, 16));
        let runs = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let runs = Arc::clone(&runs);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (value, _role) = cache.coalesce(9, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        77u64
                    });
                    *value.expect("leader ran the computation")
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 77);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one leader ran");
    }

    #[test]
    fn stats_value_sums_shards() {
        let cache: ShardedLru<u32, ()> = ShardedLru::new(3, 9);
        cache.insert(1, 1);
        cache.insert(2, 2);
        let _ = cache.get(1);
        let _ = cache.get(99);
        let v = cache.stats_value();
        assert_eq!(v.get("len").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("hits").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("shards").and_then(Value::as_array).map(|a| a.len()),
            Some(3)
        );
    }
}
