//! Request coalescing: concurrent requests for the same expensive
//! computation share one execution.
//!
//! The first thread to ask for a key becomes the *leader* and runs the
//! computation; threads arriving while it runs become *followers* and block
//! on a condvar until the leader publishes the result. Keys are the same
//! content hashes the caches use, so "same uncached topology" coalesces by
//! construction.

use crate::lock::{lock_recover, wait_recover};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// In-flight slot: the leader fills `result` and flips `done`.
struct Inflight<V> {
    state: Mutex<InflightState<V>>,
    ready: Condvar,
}

struct InflightState<V> {
    done: bool,
    result: Option<Arc<V>>,
}

/// Outcome of [`Coalescer::run`], tagged with the caller's role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This thread executed the computation.
    Leader,
    /// This thread waited for another thread's execution.
    Follower,
}

/// Deduplicates concurrent computations by key.
pub struct Coalescer<V> {
    inflight: Mutex<BTreeMap<u64, Arc<Inflight<V>>>>,
}

impl<V> Default for Coalescer<V> {
    fn default() -> Self {
        Coalescer {
            inflight: Mutex::new(BTreeMap::new()),
        }
    }
}

impl<V> Coalescer<V> {
    /// Creates an empty coalescer.
    pub fn new() -> Coalescer<V> {
        Coalescer::default()
    }

    /// Runs `compute` for `key`, unless another thread is already running it
    /// — in that case blocks until that thread finishes and returns its
    /// result. The leader's result is handed to every follower; the slot is
    /// removed once the leader completes, so later calls compute afresh
    /// (they will normally hit a cache first).
    ///
    /// If the leader panics, followers see the slot close with no result
    /// and return `None`; they can retry or fail their own request.
    pub fn run<F>(&self, key: u64, compute: F) -> (Option<Arc<V>>, Role)
    where
        F: FnOnce() -> V,
    {
        let (slot, leader) = {
            let mut map = lock_recover(&self.inflight);
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Inflight {
                        state: Mutex::new(InflightState {
                            done: false,
                            result: None,
                        }),
                        ready: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            // Ensure the slot closes even if `compute` panics, so followers
            // wake up instead of blocking forever.
            struct CloseOnDrop<'a, V> {
                coalescer: &'a Coalescer<V>,
                slot: &'a Arc<Inflight<V>>,
                key: u64,
            }
            impl<V> Drop for CloseOnDrop<'_, V> {
                fn drop(&mut self) {
                    let mut map = lock_recover(&self.coalescer.inflight);
                    map.remove(&self.key);
                    drop(map);
                    let mut state = lock_recover(&self.slot.state);
                    state.done = true;
                    self.slot.ready.notify_all();
                }
            }
            let guard = CloseOnDrop {
                coalescer: self,
                slot: &slot,
                key,
            };
            let value = Arc::new(compute());
            {
                let mut state = lock_recover(&slot.state);
                state.result = Some(Arc::clone(&value));
            }
            drop(guard); // removes the slot, sets done, wakes followers
            (Some(value), Role::Leader)
        } else {
            let mut state = lock_recover(&slot.state);
            while !state.done {
                state = wait_recover(&slot.ready, state);
            }
            (state.result.clone(), Role::Follower)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sequential_calls_each_compute() {
        let c = Coalescer::new();
        let (a, role_a) = c.run(1, || 10);
        let (b, role_b) = c.run(1, || 20);
        assert_eq!((*a.unwrap(), role_a), (10, Role::Leader));
        assert_eq!((*b.unwrap(), role_b), (20, Role::Leader));
    }

    #[test]
    fn concurrent_same_key_computes_once() {
        let c = Arc::new(Coalescer::new());
        let runs = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, runs, start) = (Arc::clone(&c), Arc::clone(&runs), Arc::clone(&start));
                std::thread::spawn(move || {
                    start.wait();
                    let (v, role) = c.run(42, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        // Hold the slot open long enough for followers to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        7
                    });
                    (*v.unwrap(), role)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(v, _)| *v == 7));
        let leaders = results.iter().filter(|(_, r)| *r == Role::Leader).count();
        // Every execution had exactly one leader; most threads should have
        // coalesced behind the first (timing-dependent, so only the
        // run-count/leader-count equality is asserted strictly).
        assert_eq!(runs.load(Ordering::SeqCst), leaders);
        assert!(leaders < 8, "no coalescing happened at all");
    }

    #[test]
    fn leader_panic_wakes_followers_empty_handed() {
        let c = Arc::new(Coalescer::<i32>::new());
        let c2 = Arc::clone(&c);
        let started = Arc::new(Barrier::new(2));
        let s2 = Arc::clone(&started);
        let leader = std::thread::spawn(move || {
            let _ = c2.run(5, || {
                s2.wait();
                std::thread::sleep(std::time::Duration::from_millis(50));
                panic!("leader died");
            });
        });
        started.wait();
        let (v, role) = c.run(5, || unreachable!("should follow, not lead"));
        assert_eq!((v, role), (None, Role::Follower));
        assert!(leader.join().is_err());
    }
}
