//! The nonblocking front end: an [`awb_reactor`] event loop serving the
//! same newline-JSON protocol as the blocking [`crate::server`].
//!
//! The reactor owns all socket I/O on one event-loop thread; request
//! lines are executed on its worker pool through [`EngineHandler`], which
//! delegates to the exact [`crate::server::handle_line`] the blocking
//! path uses — responses are byte-identical between the two servers, and
//! the integration tests assert it. Frames the reactor refuses to run
//! (queue full, frame cap exceeded, drain in progress) are rendered as
//! the service's structured errors with the request `id` echoed whenever
//! the offending line was parseable.

use crate::engine::{Engine, EngineConfig};
use crate::metrics::Metrics;
use crate::protocol::{self, ErrorCode, ServiceError};
use crate::server::handle_line;
use awb_reactor::{LineHandler, ReactorConfig, ReactorHandle, Reject};
use serde_json::Value;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Tuning for the reactor-mode server.
#[derive(Debug, Clone)]
pub struct ReactorServerConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Worker threads executing solves off the event loop.
    pub workers: usize,
    /// Job-queue capacity; a full queue yields `overloaded` rejects.
    pub queue_capacity: usize,
    /// Per-frame byte cap; beyond it the client gets `frame_too_large`.
    pub max_frame_len: usize,
    /// How long a partial frame may sit unfinished before the connection
    /// is reaped (`None` disables the deadline).
    pub read_deadline: Option<Duration>,
    /// How long a slow consumer may leave response bytes unread (`None`
    /// disables the deadline).
    pub write_deadline: Option<Duration>,
    /// Bound on the graceful drain after a shutdown request.
    pub drain_deadline: Duration,
    /// Concurrent-connection cap; beyond it accepts are refused.
    pub max_connections: usize,
    /// Install the process SIGTERM/SIGINT handler so signals trigger the
    /// graceful drain (daemon mode; tests leave it off).
    pub install_signal_handler: bool,
    /// Engine (cache) configuration.
    pub engine: EngineConfig,
}

impl Default for ReactorServerConfig {
    fn default() -> Self {
        let reactor = ReactorConfig::default();
        ReactorServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: reactor.workers,
            queue_capacity: reactor.queue_capacity,
            max_frame_len: reactor.max_frame_len,
            read_deadline: reactor.read_deadline,
            write_deadline: reactor.write_deadline,
            drain_deadline: reactor.drain_deadline,
            max_connections: reactor.max_connections,
            install_signal_handler: false,
            engine: EngineConfig::default(),
        }
    }
}

/// Bridges the reactor's line-oriented callbacks onto the [`Engine`].
pub struct EngineHandler {
    engine: Arc<Engine>,
}

impl EngineHandler {
    /// Wraps an engine for reactor serving.
    pub fn new(engine: Arc<Engine>) -> EngineHandler {
        EngineHandler { engine }
    }
}

/// Extracts the request `id` from a (possibly malformed) request line so
/// error responses stay correlatable, mirroring `handle_line`.
fn line_id(line: Option<&str>) -> Value {
    line.and_then(|l| serde_json::from_str::<Value>(l).ok())
        .and_then(|v| v.get("id").cloned())
        .unwrap_or(Value::Null)
}

impl LineHandler for EngineHandler {
    fn handle(&self, line: &str) -> String {
        handle_line(&self.engine, line)
    }

    fn reject(&self, line: Option<&str>, reject: Reject) -> String {
        Metrics::bump(&self.engine.metrics.requests_error);
        let error = match reject {
            Reject::Overloaded => {
                Metrics::bump(&self.engine.metrics.rejected_overload);
                ServiceError::new(
                    ErrorCode::Overloaded,
                    "request queue full; retry with backoff",
                )
            }
            Reject::FrameTooLarge { limit } => ServiceError::new(
                ErrorCode::FrameTooLarge,
                format!("frame exceeds the {limit}-byte cap"),
            ),
            Reject::ShuttingDown => {
                ServiceError::new(ErrorCode::ShuttingDown, "server is shutting down")
            }
            Reject::Internal => ServiceError::new(
                ErrorCode::Internal,
                "internal error while serving the request",
            ),
        };
        protocol::error_response(&line_id(line), &error)
    }
}

/// A running reactor-mode server.
pub struct ReactorServer {
    engine: Arc<Engine>,
    handle: ReactorHandle,
}

/// Starts the nonblocking server on `config.addr`.
///
/// # Errors
///
/// Propagates bind and epoll-setup failures.
pub fn serve_reactor(config: ReactorServerConfig) -> io::Result<ReactorServer> {
    let engine = Arc::new(Engine::new(config.engine));
    serve_reactor_with(config, engine)
}

/// Like [`serve_reactor`] but fronts an existing engine (so tests and the
/// differential harness can share caches or inspect metrics).
///
/// # Errors
///
/// Propagates bind and epoll-setup failures.
pub fn serve_reactor_with(
    config: ReactorServerConfig,
    engine: Arc<Engine>,
) -> io::Result<ReactorServer> {
    let reactor_config = ReactorConfig {
        addr: config.addr,
        workers: config.workers,
        queue_capacity: config.queue_capacity,
        max_frame_len: config.max_frame_len,
        read_deadline: config.read_deadline,
        write_deadline: config.write_deadline,
        drain_deadline: config.drain_deadline,
        max_connections: config.max_connections,
        install_signal_handler: config.install_signal_handler,
    };
    let handler = Arc::new(EngineHandler::new(Arc::clone(&engine)));
    let handle = awb_reactor::spawn(reactor_config, handler)?;
    engine.attach_reactor_metrics(handle.metrics());
    Ok(ReactorServer { engine, handle })
}

impl ReactorServer {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.local_addr()
    }

    /// The shared engine (for metrics inspection in tests).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Requests a graceful drain without waiting for it.
    pub fn request_shutdown(&self) {
        self.handle.shutdown();
    }

    /// Graceful shutdown: stop accepting, drain in-flight and queued work
    /// within the drain deadline, join all threads. Returns the final
    /// metrics summary (also logged to stderr).
    pub fn shutdown(self) -> String {
        self.handle.shutdown();
        let _ = self.handle.join();
        let summary = self.engine.metrics.summary();
        eprintln!("awb-service shutdown: {summary}");
        summary
    }

    /// Blocks until the reactor exits (a signal-triggered drain, when the
    /// handler is installed).
    ///
    /// # Errors
    ///
    /// Propagates a fatal event-loop error.
    pub fn join(self) -> io::Result<()> {
        self.handle.join()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::query_once;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    const RELAY: &str = r#""topology": {"nodes": [[0,0],[50,0],[100,0]], "links": [[0,1],[1,2]], "alone_rates": [[54],[54]], "conflicts": [[0,1]]}"#;

    #[test]
    fn reactor_round_trip_matches_protocol() {
        let server = serve_reactor(ReactorServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let line = format!(r#"{{"query": "available_bandwidth", {RELAY}, "path": [0,1]}}"#);
        let response: Value = serde_json::from_str(&query_once(addr, &line).unwrap()).unwrap();
        assert_eq!(response.get("status").and_then(Value::as_str), Some("ok"));
        let bw = response["result"]["bandwidth_mbps"].as_f64().unwrap();
        assert!((bw - 27.0).abs() < 1e-6, "got {bw}");
        let summary = server.shutdown();
        assert!(summary.contains("ok=1"), "summary was: {summary}");
    }

    #[test]
    fn stats_reports_reactor_and_shard_sections() {
        let server = serve_reactor(ReactorServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let line = format!(r#"{{"query": "available_bandwidth", {RELAY}, "path": [0,1]}}"#);
        let _ = query_once(addr, &line).unwrap();
        let stats: Value =
            serde_json::from_str(&query_once(addr, r#"{"query": "stats"}"#).unwrap()).unwrap();
        let result = &stats["result"];
        assert!(result.get("reactor").is_some(), "missing reactor section");
        assert!(
            result["reactor"].get("frames").and_then(Value::as_u64) >= Some(1),
            "reactor frame counter should have ticked"
        );
        let shards = &result["instance_shards"];
        assert_eq!(
            shards.get("shards").and_then(Value::as_array).map(Vec::len),
            Some(8),
            "default shard count"
        );
        assert!(shards.get("misses").and_then(Value::as_u64) >= Some(1));
        server.shutdown();
    }

    #[test]
    fn admit_batch_sweeps_arrivals_in_order() {
        let server = serve_reactor(ReactorServerConfig::default()).unwrap();
        let addr = server.local_addr();
        // Two conflicting 54 Mbps hops: 27 Mbps available on link 0. The
        // first 20 Mbps arrival is admitted and consumes most of it; the
        // identical second arrival must then be refused.
        let line = format!(
            r#"{{"query": "admit_batch", {RELAY}, "arrivals": [
                {{"path": [0,1], "demand_mbps": 20.0}},
                {{"path": [0,1], "demand_mbps": 20.0}},
                {{"path": [0,1], "demand_mbps": 3.0}}
            ]}}"#
        )
        .replace('\n', " ");
        let response: Value = serde_json::from_str(&query_once(addr, &line).unwrap()).unwrap();
        assert_eq!(
            response.get("status").and_then(Value::as_str),
            Some("ok"),
            "response: {response}"
        );
        let rows = response["result"]["results"].as_array().unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0]["admitted"].as_bool(), Some(true));
        assert_eq!(rows[1]["admitted"].as_bool(), Some(false));
        assert_eq!(
            rows[2]["admitted"].as_bool(),
            Some(true),
            "3 Mbps still fits"
        );
        assert_eq!(response["result"]["admitted_count"].as_u64(), Some(2));
        // All three arrivals share one link universe: one compile, rest warm.
        assert_eq!(response["result"]["session"]["compiles"].as_u64(), Some(1));
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = serve_reactor(ReactorServerConfig::default()).unwrap();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut batch = String::new();
        for id in 0..8 {
            batch.push_str(&format!(
                "{{\"query\": \"available_bandwidth\", \"id\": {id}, {RELAY}, \"path\": [0,1]}}\n"
            ));
        }
        stream.write_all(batch.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        for id in 0..8 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let v: Value = serde_json::from_str(&line).unwrap();
            assert_eq!(v["id"].as_u64(), Some(id), "responses left in order");
            assert_eq!(v["status"].as_str(), Some("ok"));
        }
        server.shutdown();
    }
}
