//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! # Requests
//!
//! One JSON object per line:
//!
//! ```json
//! {"query": "available_bandwidth",
//!  "id": 1,
//!  "topology": { ...spec... } | "<16-hex-digit registered hash>",
//!  "background": [{"path": [0, 1], "demand_mbps": 2.0}],
//!  "path": [2, 3],
//!  "demand_mbps": 1.5,
//!  "max_set_size": 2,
//!  "deadline_ms": 250}
//! ```
//!
//! `query` is one of `available_bandwidth`, `bounds`, `estimate`, `admit`,
//! `admit_batch`, `stats`, `register_topology`, `update`. `id` (any JSON
//! value) is echoed back. `topology` accepts either an inline spec (see
//! [`crate::spec`]) or the hash string returned by `register_topology`.
//! `demand_mbps` is only meaningful for `admit`; `max_set_size` caps the
//! enumerated set size (`bounds` requires it for the lower bound,
//! default 2).
//!
//! `update` patches a topology in place instead of re-registering it from
//! scratch:
//!
//! ```json
//! {"query": "update", "topology": "<hash>",
//!  "delta": {"moved_nodes": [[3, 120.0, 45.5]],
//!            "rate_changed_links": [[1, [54, 36]]]}}
//! ```
//!
//! The server registers the patched topology under its new content hash
//! (returned as `topology_hash`) and migrates every cached compiled
//! instance of the old topology by recompiling only the conflict
//! components the delta touched — follow-up queries against the new hash
//! start warm. See [`crate::spec::DeltaSpec`] for the delta vocabulary.
//!
//! `admit_batch` carries a whole flow-arrival sequence in one request:
//!
//! ```json
//! {"query": "admit_batch", "topology": "<hash>",
//!  "background": [{"path": [0], "demand_mbps": 1.0}],
//!  "arrivals": [{"path": [1, 2], "demand_mbps": 2.0},
//!               {"path": [2, 3], "demand_mbps": 4.0}]}
//! ```
//!
//! Arrivals are evaluated in order against the background plus every
//! *previously admitted* arrival — exactly the answers a client would get
//! issuing the equivalent `admit` sequence one request at a time, but
//! solved in a single warm session sweep on the server.
//!
//! # Responses
//!
//! ```json
//! {"status": "ok", "id": 1, "query": "available_bandwidth",
//!  "result": { ... }, "cache": "hit", "elapsed_us": 42}
//! {"status": "error", "id": 1,
//!  "error": {"code": "overloaded", "message": "queue full (capacity 64)"}}
//! ```

use crate::spec::{DeltaSpec, SpecError, TopologySpec};
use serde_json::{Map, Value};

/// Structured error codes a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed JSON or an invalid field.
    BadRequest,
    /// The request queue is full; retry with backoff.
    Overloaded,
    /// The server is shutting down.
    ShuttingDown,
    /// The request's `deadline_ms` elapsed before completion.
    DeadlineExceeded,
    /// A single request frame exceeded the server's byte cap.
    FrameTooLarge,
    /// `topology` referenced a hash that was never registered.
    UnknownTopology,
    /// The background flows alone are infeasible.
    InfeasibleBackground,
    /// Any other solver-side failure.
    Internal,
}

impl ErrorCode {
    /// The wire form of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::UnknownTopology => "unknown_topology",
            ErrorCode::InfeasibleBackground => "infeasible_background",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parse- or service-level failure, rendered as an error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// Creates an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ServiceError {
        ServiceError {
            code,
            message: message.into(),
        }
    }

    /// Shorthand for [`ErrorCode::BadRequest`].
    pub fn bad_request(message: impl Into<String>) -> ServiceError {
        ServiceError::new(ErrorCode::BadRequest, message)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ServiceError {}

impl From<SpecError> for ServiceError {
    fn from(e: SpecError) -> ServiceError {
        ServiceError::bad_request(e.0)
    }
}

/// How a topology is named in a request.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyRef {
    /// Inline spec.
    Inline(TopologySpec),
    /// Content hash of a previously registered topology.
    Registered(u64),
}

/// A background flow: link-index path plus demand.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// Link indices of the flow's path, in order.
    pub path: Vec<usize>,
    /// Demand in Mbps.
    pub demand_mbps: f64,
}

/// The query kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Eq. 6 available bandwidth.
    AvailableBandwidth,
    /// Eq. 7/9 clique bounds plus the §3.3 lower bound.
    Bounds,
    /// Eq. 10–13/15 distributed estimates.
    Estimate,
    /// Admission control: does `demand_mbps` fit?
    Admit,
    /// A whole flow-arrival sequence admitted in one warm sweep.
    AdmitBatch,
    /// Metrics snapshot.
    Stats,
    /// Register a topology for by-hash reuse.
    RegisterTopology,
    /// Patch a topology with a delta, migrating its compiled instances.
    Update,
}

impl QueryKind {
    /// The wire form of the query name.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryKind::AvailableBandwidth => "available_bandwidth",
            QueryKind::Bounds => "bounds",
            QueryKind::Estimate => "estimate",
            QueryKind::Admit => "admit",
            QueryKind::AdmitBatch => "admit_batch",
            QueryKind::Stats => "stats",
            QueryKind::RegisterTopology => "register_topology",
            QueryKind::Update => "update",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id, echoed back verbatim.
    pub id: Value,
    /// Which computation to run.
    pub query: QueryKind,
    /// The topology (absent only for `stats`).
    pub topology: Option<TopologyRef>,
    /// Background flows (may be empty).
    pub background: Vec<FlowSpec>,
    /// The new flow's path, as link indices.
    pub path: Vec<usize>,
    /// The arrival sequence for `admit_batch` (empty otherwise).
    pub arrivals: Vec<FlowSpec>,
    /// The topology patch for `update` (`None` otherwise).
    pub delta: Option<DeltaSpec>,
    /// Candidate demand for `admit`.
    pub demand_mbps: Option<f64>,
    /// Enumerated set-size cap (`None` = unbounded).
    pub max_set_size: Option<usize>,
    /// Per-request deadline in milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] with [`ErrorCode::BadRequest`] on malformed input.
    pub fn parse(line: &str) -> Result<Request, ServiceError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| ServiceError::bad_request(format!("invalid JSON: {e}")))?;
        Request::from_value(&value)
    }

    /// Parses a request from its JSON tree.
    ///
    /// # Errors
    ///
    /// As [`Request::parse`].
    pub fn from_value(value: &Value) -> Result<Request, ServiceError> {
        let obj = value
            .as_object()
            .ok_or_else(|| ServiceError::bad_request("request must be a JSON object"))?;
        let query = match obj.get("query").and_then(Value::as_str) {
            Some("available_bandwidth") => QueryKind::AvailableBandwidth,
            Some("bounds") => QueryKind::Bounds,
            Some("estimate") => QueryKind::Estimate,
            Some("admit") => QueryKind::Admit,
            Some("admit_batch") => QueryKind::AdmitBatch,
            Some("stats") => QueryKind::Stats,
            Some("register_topology") => QueryKind::RegisterTopology,
            Some("update") => QueryKind::Update,
            Some(other) => {
                return Err(ServiceError::bad_request(format!(
                    "unknown query `{other}`"
                )))
            }
            None => return Err(ServiceError::bad_request("missing `query` field")),
        };
        let id = obj.get("id").cloned().unwrap_or(Value::Null);
        let topology = match obj.get("topology") {
            None | Some(Value::Null) => None,
            Some(Value::String(hex)) => Some(TopologyRef::Registered(
                u64::from_str_radix(hex, 16).map_err(|_| {
                    ServiceError::bad_request(format!("`topology` hash `{hex}` is not hex"))
                })?,
            )),
            Some(spec) => Some(TopologyRef::Inline(TopologySpec::from_value(spec)?)),
        };
        if topology.is_none() && query != QueryKind::Stats {
            return Err(ServiceError::bad_request(format!(
                "`{}` requires a `topology`",
                query.as_str()
            )));
        }
        let background = parse_flow_list(obj.get("background"), "background")?;
        let arrivals = parse_flow_list(obj.get("arrivals"), "arrivals")?;
        if query == QueryKind::AdmitBatch && arrivals.is_empty() {
            return Err(ServiceError::bad_request(
                "`admit_batch` requires a non-empty `arrivals` array",
            ));
        }
        let delta = match obj.get("delta") {
            None | Some(Value::Null) => None,
            Some(v) => Some(DeltaSpec::from_value(v)?),
        };
        if query == QueryKind::Update && delta.is_none() {
            return Err(ServiceError::bad_request(
                "`update` requires a `delta` object",
            ));
        }
        let path = match obj.get("path") {
            None | Some(Value::Null) => Vec::new(),
            Some(v) => parse_index_array(v)
                .ok_or_else(|| ServiceError::bad_request("`path` must be an array of links"))?,
        };
        let needs_path = matches!(
            query,
            QueryKind::AvailableBandwidth
                | QueryKind::Bounds
                | QueryKind::Estimate
                | QueryKind::Admit
        );
        if needs_path && path.is_empty() {
            return Err(ServiceError::bad_request(format!(
                "`{}` requires a non-empty `path`",
                query.as_str()
            )));
        }
        let demand_mbps = match obj.get("demand_mbps") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .filter(|d| d.is_finite() && *d >= 0.0)
                    .ok_or_else(|| {
                        ServiceError::bad_request("`demand_mbps` must be a non-negative number")
                    })?,
            ),
        };
        if query == QueryKind::Admit && demand_mbps.is_none() {
            return Err(ServiceError::bad_request("`admit` requires `demand_mbps`"));
        }
        let max_set_size = match obj.get("max_set_size") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().filter(|&n| n >= 1).ok_or_else(|| {
                ServiceError::bad_request("`max_set_size` must be a positive integer")
            })? as usize),
        };
        let deadline_ms = match obj.get("deadline_ms") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ServiceError::bad_request("`deadline_ms` must be a non-negative integer")
            })?),
        };
        Ok(Request {
            id,
            query,
            topology,
            background,
            path,
            arrivals,
            delta,
            demand_mbps,
            max_set_size,
            deadline_ms,
        })
    }
}

/// Parses an optional array of `{path, demand_mbps}` flow objects.
fn parse_flow_list(value: Option<&Value>, field: &str) -> Result<Vec<FlowSpec>, ServiceError> {
    match value {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| {
                let path = parse_index_array(item.get("path").unwrap_or(&Value::Null)).ok_or_else(
                    || ServiceError::bad_request(format!("`{field}` flows need a `path` array")),
                )?;
                let demand_mbps = item
                    .get("demand_mbps")
                    .and_then(Value::as_f64)
                    .filter(|d| d.is_finite() && *d >= 0.0)
                    .ok_or_else(|| {
                        ServiceError::bad_request(format!(
                            "`{field}` flows need a non-negative `demand_mbps`"
                        ))
                    })?;
                Ok(FlowSpec { path, demand_mbps })
            })
            .collect(),
        Some(_) => Err(ServiceError::bad_request(format!(
            "`{field}` must be an array"
        ))),
    }
}

fn parse_index_array(value: &Value) -> Option<Vec<usize>> {
    value
        .as_array()?
        .iter()
        .map(|v| v.as_u64().map(|n| n as usize))
        .collect()
}

/// How a query's answer was obtained, reported in the `cache` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Full result served from the result cache.
    Hit,
    /// Enumerated set pool reused; only the LP re-solved.
    SetsHit,
    /// Waited behind another request's enumeration of the same pool.
    Coalesced,
    /// Everything computed from scratch.
    Miss,
}

impl CacheStatus {
    /// The wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::SetsHit => "sets_hit",
            CacheStatus::Coalesced => "coalesced",
            CacheStatus::Miss => "miss",
        }
    }
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(
    id: &Value,
    query: QueryKind,
    result: Value,
    cache: Option<CacheStatus>,
    elapsed_us: u64,
) -> String {
    let mut m = Map::new();
    m.insert("status".into(), Value::String("ok".into()));
    m.insert("id".into(), id.clone());
    m.insert("query".into(), Value::String(query.as_str().into()));
    m.insert("result".into(), result);
    if let Some(cache) = cache {
        m.insert("cache".into(), Value::String(cache.as_str().into()));
    }
    m.insert("elapsed_us".into(), Value::Number(elapsed_us as f64));
    Value::Object(m).to_string()
}

/// Renders an error response line (no trailing newline).
pub fn error_response(id: &Value, error: &ServiceError) -> String {
    let mut e = Map::new();
    e.insert("code".into(), Value::String(error.code.as_str().into()));
    e.insert("message".into(), Value::String(error.message.clone()));
    let mut m = Map::new();
    m.insert("status".into(), Value::String("error".into()));
    m.insert("id".into(), id.clone());
    m.insert("error".into(), Value::Object(e));
    Value::Object(m).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAIN: &str = r#""topology": {
        "nodes": [[0,0],[50,0],[100,0]],
        "links": [[0,1],[1,2]],
        "alone_rates": [[54],[54]],
        "conflicts": [[0,1]]
    }"#;

    #[test]
    fn parses_a_full_request() {
        let line = format!(
            r#"{{"query": "admit", "id": 7, {CHAIN},
                "background": [{{"path": [0], "demand_mbps": 2.5}}],
                "path": [1], "demand_mbps": 1.25,
                "max_set_size": 2, "deadline_ms": 100}}"#
        );
        let r = Request::parse(&line).unwrap();
        assert_eq!(r.query, QueryKind::Admit);
        assert_eq!(r.id, Value::Number(7.0));
        assert!(matches!(r.topology, Some(TopologyRef::Inline(_))));
        assert_eq!(r.background.len(), 1);
        assert_eq!(r.background[0].path, vec![0]);
        assert_eq!(r.background[0].demand_mbps, 2.5);
        assert_eq!(r.path, vec![1]);
        assert_eq!(r.demand_mbps, Some(1.25));
        assert_eq!(r.max_set_size, Some(2));
        assert_eq!(r.deadline_ms, Some(100));
    }

    #[test]
    fn topology_hash_strings_become_refs() {
        let line = r#"{"query": "estimate", "topology": "00ff00ff00ff00ff", "path": [0]}"#;
        let r = Request::parse(line).unwrap();
        assert_eq!(
            r.topology,
            Some(TopologyRef::Registered(0x00ff_00ff_00ff_00ff))
        );
    }

    #[test]
    fn parses_an_update_request() {
        let line = r#"{"query": "update", "topology": "00ff00ff00ff00ff",
            "delta": {"moved_nodes": [[2, 120.0, 5.0]],
                      "rate_changed_links": [[1, [36]]],
                      "added_links": [[0, 2]]}}"#;
        let r = Request::parse(line).unwrap();
        assert_eq!(r.query, QueryKind::Update);
        let delta = r.delta.unwrap();
        assert_eq!(delta.moved_nodes, vec![(2, 120.0, 5.0)]);
        assert_eq!(delta.rate_changed_links, vec![(1, vec![36.0])]);
        assert_eq!(delta.added_links, vec![(0, 2)]);
        // update without a delta, and malformed delta entries, are rejected.
        for bad in [
            r#"{"query": "update", "topology": "00ff00ff00ff00ff"}"#,
            r#"{"query": "update", "topology": "00ff00ff00ff00ff", "delta": 5}"#,
            r#"{"query": "update", "topology": "00ff00ff00ff00ff",
                "delta": {"moved_nodes": [[2, 120.0]]}}"#,
            r#"{"query": "update", "topology": "00ff00ff00ff00ff",
                "delta": {"rate_changed_links": [[1, [-3]]]}}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn stats_needs_no_topology() {
        let r = Request::parse(r#"{"query": "stats"}"#).unwrap();
        assert_eq!(r.query, QueryKind::Stats);
        assert!(r.topology.is_none());
    }

    #[test]
    fn rejects_incomplete_requests() {
        for bad in [
            r#"not json"#,
            r#"[1, 2]"#,
            r#"{"query": "transmogrify"}"#,
            r#"{"id": 1}"#,
            r#"{"query": "available_bandwidth"}"#,
            r#"{"query": "estimate", "topology": "xyzzy", "path": [0]}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted: {bad}");
        }
        // admit without demand, and a query without a path
        let no_demand = format!(r#"{{"query": "admit", {CHAIN}, "path": [1]}}"#);
        assert!(Request::parse(&no_demand).is_err());
        let no_path = format!(r#"{{"query": "bounds", {CHAIN}}}"#);
        assert!(Request::parse(&no_path).is_err());
    }

    #[test]
    fn responses_render_as_single_json_lines() {
        let ok = ok_response(
            &Value::Number(3.0),
            QueryKind::Stats,
            Value::Object(Map::new()),
            Some(CacheStatus::Miss),
            42,
        );
        assert!(!ok.contains('\n'));
        let v: Value = serde_json::from_str(&ok).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("cache").and_then(Value::as_str), Some("miss"));
        assert_eq!(v.get("elapsed_us").and_then(Value::as_u64), Some(42));

        let err = error_response(
            &Value::Null,
            &ServiceError::new(ErrorCode::Overloaded, "queue full"),
        );
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v["error"].get("code").and_then(Value::as_str),
            Some("overloaded")
        );
    }
}
