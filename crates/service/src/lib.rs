//! `awb-service` — a concurrent admission-control daemon for the paper's
//! available-bandwidth pipeline (Chen, Zhai & Fang, ICDCS 2009).
//!
//! The expensive step of answering "how much bandwidth is available on this
//! path?" (Eq. 6) is enumerating the rate-coupled maximal independent sets
//! of the link universe — exponential in the number of links. This crate
//! wraps the workspace's solver crates in a long-lived service that
//! amortizes that cost:
//!
//! * **Topology registry** — clients register a topology once and refer to
//!   it by content hash afterwards ([`spec`]).
//! * **Two-level cache** — enumerated set pools and solved results, LRU
//!   ([`engine`]). Cached answers are byte-identical to direct library
//!   calls.
//! * **Coalescing** — concurrent requests on the same uncached pool share
//!   one enumeration ([`coalesce`]).
//! * **Backpressure** — a bounded queue rejects excess connections with a
//!   structured `overloaded` error instead of unbounded buffering
//!   ([`queue`], [`server`]).
//! * **Deadlines and graceful shutdown** — per-request `deadline_ms`
//!   checked between pipeline stages; shutdown drains in-flight work.
//! * **Metrics** — atomic counters and log2 latency histograms, via the
//!   `stats` query and the shutdown log ([`metrics`]).
//!
//! Wire protocol: newline-delimited JSON over TCP, or single-shot over
//! stdin/stdout ([`protocol`], [`server::serve_stdio`]).
//!
//! # Example
//!
//! ```
//! use awb_service::engine::{Engine, EngineConfig};
//! use awb_service::protocol::Request;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let request = Request::parse(
//!     r#"{"query": "available_bandwidth",
//!         "topology": {"nodes": [[0,0],[50,0],[100,0]],
//!                      "links": [[0,1],[1,2]],
//!                      "alone_rates": [[54],[54]],
//!                      "conflicts": [[0,1]]},
//!         "path": [0, 1]}"#,
//! )?;
//! let (result, _cache) = engine.handle(&request, None)?;
//! let mbps = result.get("bandwidth_mbps").and_then(|v| v.as_f64()).unwrap();
//! assert!((mbps - 27.0).abs() < 1e-6); // two conflicting 54 Mbps hops
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod engine;
mod lock;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod reactor_server;
pub mod server;
pub mod shards;
pub mod spec;

pub use engine::{Engine, EngineConfig};
pub use protocol::{CacheStatus, ErrorCode, QueryKind, Request, ServiceError};
pub use reactor_server::{serve_reactor, serve_reactor_with, ReactorServer, ReactorServerConfig};
pub use server::{serve, serve_stdio, ServerConfig, ServerHandle};
pub use spec::TopologySpec;
