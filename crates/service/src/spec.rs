//! Topology specifications: the JSON description of a network a client
//! sends, its canonical content hash, and model construction.

use awb_net::{
    DeclarativeModel, LinkId, LinkRateModel, NodeId, Path, SinrModel, Topology, TopologyDelta,
};
use awb_phy::{Phy, Rate};
use serde_json::{Map, Value};
use std::sync::Arc;

/// A model built from a [`TopologySpec`], ready to serve queries.
pub struct BuiltModel {
    /// The interference model (shared, thread-safe).
    pub model: Arc<dyn LinkRateModel + Send + Sync>,
    /// Content hash of the canonical spec — the topology part of every
    /// cache key.
    pub content_hash: u64,
}

/// A client-supplied network description.
///
/// ```json
/// {
///   "model": "declarative" | "sinr",
///   "nodes": [[x, y], ...],
///   "links": [[tx, rx], ...],
///   "alone_rates": [[mbps, ...], ...],        // declarative, per link
///   "conflicts": [[i, j], ...],               // declarative, all-rate
///   "rate_conflicts": [[i, ri, j, rj], ...],  // declarative, rate-specific
///   "hears": [[node, link], ...]              // declarative, carrier sense
/// }
/// ```
///
/// `sinr` ignores the declarative fields and derives rates and interference
/// from node geometry with the paper's radio model
/// ([`Phy::paper_default`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    model: ModelKind,
    nodes: Vec<(f64, f64)>,
    links: Vec<(usize, usize)>,
    alone_rates: Vec<Vec<f64>>,
    conflicts: Vec<(usize, usize)>,
    rate_conflicts: Vec<(usize, f64, usize, f64)>,
    hears: Vec<(usize, usize)>,
    /// Precomputed at construction — every request needs it (it keys all
    /// caches), and canonicalizing on each lookup would dominate the warm
    /// path.
    content_hash: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelKind {
    Declarative,
    Sinr,
}

/// A malformed or inconsistent topology spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

fn parse_pairs<A, B>(value: &Value, field: &str, what: &str) -> Result<Vec<(A, B)>, SpecError>
where
    A: TryFromValue,
    B: TryFromValue,
{
    match value.get(field) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| err(format!("`{field}` entries must be {what} pairs")))?;
                Ok((
                    A::try_from_value(&pair[0])
                        .ok_or_else(|| err(format!("bad first element in `{field}`")))?,
                    B::try_from_value(&pair[1])
                        .ok_or_else(|| err(format!("bad second element in `{field}`")))?,
                ))
            })
            .collect(),
        Some(_) => Err(err(format!("`{field}` must be an array"))),
    }
}

/// Narrow JSON extraction used by the spec parser.
trait TryFromValue: Sized {
    fn try_from_value(v: &Value) -> Option<Self>;
}

impl TryFromValue for f64 {
    fn try_from_value(v: &Value) -> Option<f64> {
        v.as_f64().filter(|n| n.is_finite())
    }
}

impl TryFromValue for usize {
    fn try_from_value(v: &Value) -> Option<usize> {
        v.as_u64().map(|n| n as usize)
    }
}

impl TopologySpec {
    /// Parses a spec from its JSON form.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on missing/malformed fields or indices out of range.
    pub fn from_value(value: &Value) -> Result<TopologySpec, SpecError> {
        let model = match value.get("model").and_then(Value::as_str) {
            None | Some("declarative") => ModelKind::Declarative,
            Some("sinr") => ModelKind::Sinr,
            Some(other) => return Err(err(format!("unknown model `{other}`"))),
        };
        let nodes: Vec<(f64, f64)> = parse_pairs(value, "nodes", "[x, y]")?;
        if nodes.len() < 2 {
            return Err(err("`nodes` must list at least two [x, y] positions"));
        }
        let links: Vec<(usize, usize)> = parse_pairs(value, "links", "[tx, rx]")?;
        if links.is_empty() {
            return Err(err("`links` must list at least one [tx, rx] pair"));
        }
        for &(tx, rx) in &links {
            if tx >= nodes.len() || rx >= nodes.len() {
                return Err(err(format!("link [{tx}, {rx}] references a missing node")));
            }
            if tx == rx {
                return Err(err(format!("link [{tx}, {rx}] is a self-loop")));
            }
        }
        let alone_rates = match value.get("alone_rates") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Array(items)) => {
                if items.len() != links.len() {
                    return Err(err(format!(
                        "`alone_rates` has {} entries for {} links",
                        items.len(),
                        links.len()
                    )));
                }
                items
                    .iter()
                    .map(|item| {
                        item.as_array()
                            .ok_or_else(|| err("`alone_rates` entries must be arrays"))?
                            .iter()
                            .map(|r| {
                                r.as_f64()
                                    .filter(|m| m.is_finite() && *m > 0.0)
                                    .ok_or_else(|| err("rates must be positive Mbps numbers"))
                            })
                            .collect()
                    })
                    .collect::<Result<_, _>>()?
            }
            Some(_) => return Err(err("`alone_rates` must be an array")),
        };
        let conflicts: Vec<(usize, usize)> = parse_pairs(value, "conflicts", "[i, j]")?;
        for &(i, j) in &conflicts {
            if i >= links.len() || j >= links.len() {
                return Err(err(format!(
                    "conflict [{i}, {j}] references a missing link"
                )));
            }
        }
        let rate_conflicts = match value.get("rate_conflicts") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(|item| {
                    let q = item
                        .as_array()
                        .filter(|a| a.len() == 4)
                        .ok_or_else(|| err("`rate_conflicts` entries must be [i, ri, j, rj]"))?;
                    let i = q[0]
                        .as_u64()
                        .ok_or_else(|| err("bad link index in `rate_conflicts`"))?
                        as usize;
                    let j = q[2]
                        .as_u64()
                        .ok_or_else(|| err("bad link index in `rate_conflicts`"))?
                        as usize;
                    let ri = q[1]
                        .as_f64()
                        .filter(|m| m.is_finite() && *m > 0.0)
                        .ok_or_else(|| err("bad rate in `rate_conflicts`"))?;
                    let rj = q[3]
                        .as_f64()
                        .filter(|m| m.is_finite() && *m > 0.0)
                        .ok_or_else(|| err("bad rate in `rate_conflicts`"))?;
                    if i >= links.len() || j >= links.len() {
                        return Err(err("`rate_conflicts` references a missing link"));
                    }
                    Ok((i, ri, j, rj))
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err(err("`rate_conflicts` must be an array")),
        };
        let hears: Vec<(usize, usize)> = parse_pairs(value, "hears", "[node, link]")?;
        for &(n, l) in &hears {
            if n >= nodes.len() || l >= links.len() {
                return Err(err(format!("hears [{n}, {l}] references a missing entity")));
            }
        }
        let mut spec = TopologySpec {
            model,
            nodes,
            links,
            alone_rates,
            conflicts,
            rate_conflicts,
            hears,
            content_hash: 0,
        };
        spec.content_hash = fnv1a(spec.canonical_json().as_bytes());
        Ok(spec)
    }

    /// A spec describing `topology` under the paper's SINR radio model —
    /// the round-trip inverse of [`TopologySpec::build`] for geometric
    /// models. Node and link ids are preserved (insertion order).
    pub fn sinr_for(topology: &Topology) -> TopologySpec {
        let mut spec = TopologySpec {
            model: ModelKind::Sinr,
            nodes: topology
                .nodes()
                .map(|n| (n.position().x, n.position().y))
                .collect(),
            links: topology
                .links()
                .map(|l| (l.tx().index(), l.rx().index()))
                .collect(),
            alone_rates: Vec::new(),
            conflicts: Vec::new(),
            rate_conflicts: Vec::new(),
            hears: Vec::new(),
            content_hash: 0,
        };
        spec.content_hash = fnv1a(spec.canonical_json().as_bytes());
        spec
    }

    /// The spec as JSON (sorted keys; empty declarative fields omitted).
    pub fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "model".into(),
            Value::String(
                match self.model {
                    ModelKind::Declarative => "declarative",
                    ModelKind::Sinr => "sinr",
                }
                .into(),
            ),
        );
        m.insert(
            "nodes".into(),
            Value::Array(
                self.nodes
                    .iter()
                    .map(|&(x, y)| Value::Array(vec![Value::Number(x), Value::Number(y)]))
                    .collect(),
            ),
        );
        m.insert(
            "links".into(),
            Value::Array(
                self.links
                    .iter()
                    .map(|&(tx, rx)| {
                        Value::Array(vec![Value::Number(tx as f64), Value::Number(rx as f64)])
                    })
                    .collect(),
            ),
        );
        if !self.alone_rates.is_empty() {
            m.insert(
                "alone_rates".into(),
                Value::Array(
                    self.alone_rates
                        .iter()
                        .map(|rs| Value::Array(rs.iter().map(|&r| Value::Number(r)).collect()))
                        .collect(),
                ),
            );
        }
        if !self.conflicts.is_empty() {
            m.insert(
                "conflicts".into(),
                Value::Array(
                    self.conflicts
                        .iter()
                        .map(|&(i, j)| {
                            Value::Array(vec![Value::Number(i as f64), Value::Number(j as f64)])
                        })
                        .collect(),
                ),
            );
        }
        if !self.rate_conflicts.is_empty() {
            m.insert(
                "rate_conflicts".into(),
                Value::Array(
                    self.rate_conflicts
                        .iter()
                        .map(|&(i, ri, j, rj)| {
                            Value::Array(vec![
                                Value::Number(i as f64),
                                Value::Number(ri),
                                Value::Number(j as f64),
                                Value::Number(rj),
                            ])
                        })
                        .collect(),
                ),
            );
        }
        if !self.hears.is_empty() {
            m.insert(
                "hears".into(),
                Value::Array(
                    self.hears
                        .iter()
                        .map(|&(n, l)| {
                            Value::Array(vec![Value::Number(n as f64), Value::Number(l as f64)])
                        })
                        .collect(),
                ),
            );
        }
        Value::Object(m)
    }

    /// Canonical rendering: compact JSON with sorted object keys. Two specs
    /// describing the same network byte-for-byte canonicalize identically,
    /// regardless of the key order or whitespace the client sent.
    pub fn canonical_json(&self) -> String {
        self.to_value().to_string()
    }

    /// FNV-1a hash of [`TopologySpec::canonical_json`], precomputed at
    /// construction — the topology part of every cache key.
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Number of links in the spec.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Builds the interference model.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when link construction fails (duplicate links).
    pub fn build(&self) -> Result<BuiltModel, SpecError> {
        let mut t = Topology::new();
        for &(x, y) in &self.nodes {
            t.add_node(x, y);
        }
        let mut links = Vec::with_capacity(self.links.len());
        let node_ids: Vec<_> = t.nodes().map(|n| n.id()).collect();
        for &(tx, rx) in &self.links {
            links.push(
                t.add_link(node_ids[tx], node_ids[rx])
                    .map_err(|e| err(format!("link [{tx}, {rx}]: {e}")))?,
            );
        }
        let model: Arc<dyn LinkRateModel + Send + Sync> = match self.model {
            ModelKind::Sinr => Arc::new(SinrModel::new(t, Phy::paper_default())),
            ModelKind::Declarative => {
                let all_nodes = node_ids.clone();
                let mut b = DeclarativeModel::builder(t);
                for (li, rates) in self.alone_rates.iter().enumerate() {
                    let rates: Vec<Rate> = rates.iter().map(|&m| Rate::from_mbps(m)).collect();
                    b = b.alone_rates(links[li], &rates);
                }
                for &(i, j) in &self.conflicts {
                    b = b.conflict_all(links[i], links[j]);
                }
                for &(i, ri, j, rj) in &self.rate_conflicts {
                    b = b.conflict_at(links[i], Rate::from_mbps(ri), links[j], Rate::from_mbps(rj));
                }
                for &(n, l) in &self.hears {
                    b = b.hears(all_nodes[n], links[l]);
                }
                Arc::new(b.build())
            }
        };
        Ok(BuiltModel {
            model,
            content_hash: self.content_hash(),
        })
    }

    /// Patches the spec with `delta`, preserving every existing node and
    /// link index (the stable-id scheme incremental recompilation relies
    /// on): moves rewrite positions in place, joins and link additions
    /// append, rate changes rewrite one link's rate list. Returns the
    /// patched spec plus the equivalent core [`TopologyDelta`], which is
    /// what `CompiledInstance::apply_delta` consumes.
    ///
    /// Link *removal* is deliberately unsupported — removing an entry
    /// would renumber every later link and invalidate all compiled state.
    /// Express a dead link as a rate change to an empty list (declarative)
    /// or by moving its endpoints out of range (SINR), exactly as the
    /// mobility generator does.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on out-of-range indices, rate edits against a SINR
    /// spec (rates there derive from geometry), or duplicate added links.
    pub fn apply_delta(
        &self,
        delta: &DeltaSpec,
    ) -> Result<(TopologySpec, TopologyDelta), SpecError> {
        let mut spec = self.clone();
        let mut core = TopologyDelta::default();
        for &(node, x, y) in &delta.moved_nodes {
            let slot = spec
                .nodes
                .get_mut(node)
                .ok_or_else(|| err(format!("moved node {node} out of range")))?;
            if *slot != (x, y) {
                *slot = (x, y);
                core.moved_nodes.push(NodeId::from_index(node));
            }
        }
        for &(x, y) in &delta.joined_nodes {
            core.joined_nodes.push(NodeId::from_index(spec.nodes.len()));
            spec.nodes.push((x, y));
        }
        for (link, rates) in &delta.rate_changed_links {
            if spec.model != ModelKind::Declarative {
                return Err(err("rate_changed_links only applies to declarative specs \
                     (SINR rates derive from geometry; move the nodes instead)"));
            }
            if *link >= spec.links.len() {
                return Err(err(format!("rate-changed link {link} out of range")));
            }
            if spec.alone_rates.is_empty() {
                spec.alone_rates = vec![Vec::new(); spec.links.len()];
            }
            if spec.alone_rates[*link] != *rates {
                spec.alone_rates[*link] = rates.clone();
                core.rate_changed_links.push(LinkId::from_index(*link));
            }
        }
        for &(tx, rx) in &delta.added_links {
            if tx >= spec.nodes.len() || rx >= spec.nodes.len() {
                return Err(err(format!(
                    "added link [{tx}, {rx}] references a missing node"
                )));
            }
            if tx == rx {
                return Err(err(format!("added link [{tx}, {rx}] is a self-loop")));
            }
            if spec.links.contains(&(tx, rx)) {
                return Err(err(format!("added link [{tx}, {rx}] already exists")));
            }
            core.added_links.push(LinkId::from_index(spec.links.len()));
            spec.links.push((tx, rx));
            if !spec.alone_rates.is_empty() {
                // New declarative links start dead until a rate change
                // brings them alive — index-stable, like the mobility
                // generator's ever-seen link table.
                spec.alone_rates.push(Vec::new());
            }
        }
        core.normalize();
        spec.content_hash = fnv1a(spec.canonical_json().as_bytes());
        Ok((spec, core))
    }

    /// Validates a link-index path against the built model's topology.
    ///
    /// # Errors
    ///
    /// [`SpecError`] when an index is out of range or the links do not chain.
    pub fn parse_path(topology: &Topology, links: &[usize]) -> Result<Path, SpecError> {
        let num = topology.num_links();
        let ids = links
            .iter()
            .map(|&l| {
                if l < num {
                    Ok(awb_net::LinkId::from_index(l))
                } else {
                    Err(err(format!("path link {l} out of range (have {num})")))
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Path::new(topology, ids).map_err(|e| err(format!("invalid path: {e}")))
    }
}

/// A client-supplied topology delta — the `delta` field of an `update`
/// request.
///
/// ```json
/// {
///   "moved_nodes": [[node, x, y], ...],
///   "joined_nodes": [[x, y], ...],
///   "rate_changed_links": [[link, [mbps, ...]], ...],
///   "added_links": [[tx, rx], ...]
/// }
/// ```
///
/// All fields optional; an absent field means "no change of that kind".
/// See [`TopologySpec::apply_delta`] for the semantics (index-preserving,
/// no link removal).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeltaSpec {
    /// Nodes repositioned to new coordinates.
    pub moved_nodes: Vec<(usize, f64, f64)>,
    /// Nodes appended to the topology.
    pub joined_nodes: Vec<(f64, f64)>,
    /// Links whose alone-rate list is replaced (declarative only; an empty
    /// list kills the link without renumbering anything).
    pub rate_changed_links: Vec<(usize, Vec<f64>)>,
    /// Links appended to the topology.
    pub added_links: Vec<(usize, usize)>,
}

impl DeltaSpec {
    /// Parses a delta from its JSON form.
    ///
    /// # Errors
    ///
    /// [`SpecError`] on malformed entries (range checks against the target
    /// spec happen later, in [`TopologySpec::apply_delta`]).
    pub fn from_value(value: &Value) -> Result<DeltaSpec, SpecError> {
        let obj = value
            .as_object()
            .ok_or_else(|| err("`delta` must be a JSON object"))?;
        let mut delta = DeltaSpec::default();
        if let Some(v) = obj.get("moved_nodes").filter(|v| !v.is_null()) {
            let items = v
                .as_array()
                .ok_or_else(|| err("`moved_nodes` must be an array"))?;
            for item in items {
                let t = item
                    .as_array()
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| err("`moved_nodes` entries must be [node, x, y]"))?;
                let node = t[0]
                    .as_u64()
                    .ok_or_else(|| err("bad node index in `moved_nodes`"))?
                    as usize;
                let x = t[1].as_f64().filter(|x| x.is_finite());
                let y = t[2].as_f64().filter(|y| y.is_finite());
                match (x, y) {
                    (Some(x), Some(y)) => delta.moved_nodes.push((node, x, y)),
                    _ => return Err(err("bad coordinates in `moved_nodes`")),
                }
            }
        }
        delta.joined_nodes = parse_pairs(value, "joined_nodes", "[x, y]")?;
        if let Some(v) = obj.get("rate_changed_links").filter(|v| !v.is_null()) {
            let items = v
                .as_array()
                .ok_or_else(|| err("`rate_changed_links` must be an array"))?;
            for item in items {
                let t = item.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                    err("`rate_changed_links` entries must be [link, [mbps, ...]]")
                })?;
                let link = t[0]
                    .as_u64()
                    .ok_or_else(|| err("bad link index in `rate_changed_links`"))?
                    as usize;
                let rates = t[1]
                    .as_array()
                    .ok_or_else(|| err("`rate_changed_links` rates must be an array"))?
                    .iter()
                    .map(|r| {
                        r.as_f64()
                            .filter(|m| m.is_finite() && *m > 0.0)
                            .ok_or_else(|| err("rates must be positive Mbps numbers"))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                delta.rate_changed_links.push((link, rates));
            }
        }
        delta.added_links = parse_pairs(value, "added_links", "[tx, rx]")?;
        Ok(delta)
    }

    /// Whether the delta describes no change at all.
    pub fn is_empty(&self) -> bool {
        self.moved_nodes.is_empty()
            && self.joined_nodes.is_empty()
            && self.rate_changed_links.is_empty()
            && self.added_links.is_empty()
    }

    /// A content hash over every field *including* coordinates and rates —
    /// unlike [`TopologyDelta::content_hash`], which only covers ids. This
    /// is the delta half of the update chain key: two updates of the same
    /// base topology coalesce iff they request byte-identical changes.
    pub fn chain_hash(&self) -> u64 {
        let mut h = FnvHasher::default();
        h.write_u64(self.moved_nodes.len() as u64);
        for &(n, x, y) in &self.moved_nodes {
            h.write_u64(n as u64).write_f64(x).write_f64(y);
        }
        h.write_u64(self.joined_nodes.len() as u64);
        for &(x, y) in &self.joined_nodes {
            h.write_f64(x).write_f64(y);
        }
        h.write_u64(self.rate_changed_links.len() as u64);
        for (l, rates) in &self.rate_changed_links {
            h.write_u64(*l as u64).write_u64(rates.len() as u64);
            for &r in rates {
                h.write_f64(r);
            }
        }
        h.write_u64(self.added_links.len() as u64);
        for &(tx, rx) in &self.added_links {
            h.write_u64(tx as u64).write_u64(rx as u64);
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Incremental FNV-1a over heterogeneous words — used to derive cache keys
/// from (hash, universe, options) tuples without string formatting.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl FnvHasher {
    /// Feeds one 64-bit word.
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Feeds an `f64` by bit pattern (distinguishes `0.0` from `-0.0`,
    /// which is fine for keying: they render differently anyway).
    pub fn write_f64(&mut self, x: f64) -> &mut Self {
        self.write_u64(x.to_bits())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_spec() -> Value {
        serde_json::from_str(
            r#"{
                "model": "declarative",
                "nodes": [[0,0],[50,0],[100,0]],
                "links": [[0,1],[1,2]],
                "alone_rates": [[54],[54]],
                "conflicts": [[0,1]]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn hash_is_invariant_to_key_order_and_whitespace() {
        let a = TopologySpec::from_value(&chain_spec()).unwrap();
        let reordered: Value = serde_json::from_str(
            r#"{"conflicts":[[0,1]],"alone_rates":[[54],[54]],
                "links":[[0,1],[1,2]],"nodes":[[0,0],[50,0],[100,0]],
                "model":"declarative"}"#,
        )
        .unwrap();
        let b = TopologySpec::from_value(&reordered).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn different_specs_hash_differently() {
        let a = TopologySpec::from_value(&chain_spec()).unwrap();
        let mut other = chain_spec();
        if let Value::Object(m) = &mut other {
            m.insert("conflicts".into(), Value::Array(vec![]));
        }
        let b = TopologySpec::from_value(&other).unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn builds_a_declarative_relay() {
        let spec = TopologySpec::from_value(&chain_spec()).unwrap();
        let built = spec.build().unwrap();
        let t = built.model.topology();
        assert_eq!((t.num_nodes(), t.num_links()), (3, 2));
        let path = TopologySpec::parse_path(t, &[0, 1]).unwrap();
        assert_eq!(path.len(), 2);
        assert!(TopologySpec::parse_path(t, &[7]).is_err());
        assert!(TopologySpec::parse_path(t, &[1, 0]).is_err());
    }

    #[test]
    fn sinr_round_trip_preserves_ids() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(40.0, 0.0);
        t.add_link(a, b).unwrap();
        t.add_link(b, a).unwrap();
        let spec = TopologySpec::sinr_for(&t);
        let rebuilt = spec.build().unwrap();
        let rt = rebuilt.model.topology();
        assert_eq!(rt.num_nodes(), 2);
        assert_eq!(rt.num_links(), 2);
        assert_eq!(
            rt.node(a).unwrap().position(),
            t.node(a).unwrap().position()
        );
        // Same spec → same hash, across independent constructions.
        assert_eq!(
            spec.content_hash(),
            TopologySpec::sinr_for(&t).content_hash()
        );
    }

    #[test]
    fn apply_delta_patches_in_place_and_matches_direct_construction() {
        let spec = TopologySpec::from_value(&chain_spec()).unwrap();
        let delta = DeltaSpec::from_value(
            &serde_json::from_str::<Value>(
                r#"{"moved_nodes": [[2, 120, 5]],
                    "rate_changed_links": [[1, [36]]],
                    "joined_nodes": [[60, 60]],
                    "added_links": [[1, 3]]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let (patched, core) = spec.apply_delta(&delta).unwrap();
        // The patched spec hashes identically to the same network sent
        // inline from scratch — the registry entry it creates is
        // indistinguishable from a fresh registration.
        let direct: Value = serde_json::from_str(
            r#"{
                "model": "declarative",
                "nodes": [[0,0],[50,0],[120,5],[60,60]],
                "links": [[0,1],[1,2],[1,3]],
                "alone_rates": [[54],[36],[]],
                "conflicts": [[0,1]]
            }"#,
        )
        .unwrap();
        let direct = TopologySpec::from_value(&direct).unwrap();
        assert_eq!(patched, direct);
        assert_eq!(patched.content_hash(), direct.content_hash());
        assert_ne!(patched.content_hash(), spec.content_hash());
        // The core delta names exactly what changed, under stable ids.
        assert_eq!(core.moved_nodes, vec![NodeId::from_index(2)]);
        assert_eq!(core.joined_nodes, vec![NodeId::from_index(3)]);
        assert_eq!(core.rate_changed_links, vec![LinkId::from_index(1)]);
        assert_eq!(core.added_links, vec![LinkId::from_index(2)]);
        // A no-op move (same position) registers no change.
        let noop = DeltaSpec {
            moved_nodes: vec![(0, 0.0, 0.0)],
            ..DeltaSpec::default()
        };
        let (same, core) = spec.apply_delta(&noop).unwrap();
        assert_eq!(same.content_hash(), spec.content_hash());
        assert!(core.is_empty());
    }

    #[test]
    fn apply_delta_rejects_invalid_patches() {
        let spec = TopologySpec::from_value(&chain_spec()).unwrap();
        let bad = [
            DeltaSpec {
                moved_nodes: vec![(9, 0.0, 0.0)],
                ..DeltaSpec::default()
            },
            DeltaSpec {
                rate_changed_links: vec![(7, vec![54.0])],
                ..DeltaSpec::default()
            },
            DeltaSpec {
                added_links: vec![(0, 0)],
                ..DeltaSpec::default()
            },
            DeltaSpec {
                added_links: vec![(0, 1)],
                ..DeltaSpec::default()
            },
        ];
        for delta in &bad {
            assert!(spec.apply_delta(delta).is_err(), "accepted: {delta:?}");
        }
        // Rate edits against SINR specs are meaningless: rates are geometry.
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(40.0, 0.0);
        t.add_link(a, b).unwrap();
        let sinr = TopologySpec::sinr_for(&t);
        let rate_edit = DeltaSpec {
            rate_changed_links: vec![(0, vec![54.0])],
            ..DeltaSpec::default()
        };
        assert!(sinr.apply_delta(&rate_edit).is_err());
    }

    #[test]
    fn delta_chain_hash_sees_coordinates() {
        let a = DeltaSpec {
            moved_nodes: vec![(2, 10.0, 0.0)],
            ..DeltaSpec::default()
        };
        let b = DeltaSpec {
            moved_nodes: vec![(2, 20.0, 0.0)],
            ..DeltaSpec::default()
        };
        // TopologyDelta::content_hash collapses these (same ids moved);
        // the chain hash must not, or two different updates would coalesce.
        assert_ne!(a.chain_hash(), b.chain_hash());
        assert_eq!(a.chain_hash(), a.clone().chain_hash());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            r#"{"nodes": [[0,0]], "links": [[0,1]]}"#,
            r#"{"nodes": [[0,0],[1,1]], "links": []}"#,
            r#"{"nodes": [[0,0],[1,1]], "links": [[0,5]]}"#,
            r#"{"nodes": [[0,0],[1,1]], "links": [[0,0]]}"#,
            r#"{"model": "quantum", "nodes": [[0,0],[1,1]], "links": [[0,1]]}"#,
            r#"{"nodes": [[0,0],[1,1]], "links": [[0,1]], "alone_rates": [[54],[54]]}"#,
            r#"{"nodes": [[0,0],[1,1]], "links": [[0,1]], "conflicts": [[0,9]]}"#,
        ] {
            let v: Value = serde_json::from_str(bad).unwrap();
            assert!(TopologySpec::from_value(&v).is_err(), "accepted: {bad}");
        }
    }
}
