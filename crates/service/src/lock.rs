//! Poison-tolerant locking helpers.
//!
//! A panicking worker must not cascade into every later request erroring on
//! a poisoned mutex. Every critical section in this crate leaves its data
//! structurally consistent before any operation that can panic, so
//! recovering the inner value is always sound here.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Waits on `cv`, recovering the guard if a holder panicked mid-wait.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recover_survives_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
    }
}
