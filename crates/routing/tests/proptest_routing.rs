//! Property tests for the routing layer: Dijkstra optimality against
//! brute-force path enumeration, and admission-experiment invariants.

use awb_core::Schedule;
use awb_estimate::IdleMap;
use awb_net::{DeclarativeModel, LinkId, NodeId, Topology};
use awb_phy::Rate;
use awb_routing::{admit_sequentially, shortest_path, AdmissionConfig, RoutingMetric};
use proptest::prelude::*;

fn r(m: f64) -> Rate {
    Rate::from_mbps(m)
}

/// A random small directed graph with per-link rates.
#[derive(Debug, Clone)]
struct Graph {
    n: usize,
    /// For each ordered pair (dense index), an optional rate in Mbps.
    edges: Vec<Option<f64>>,
}

fn graph() -> impl Strategy<Value = Graph> {
    (3usize..=6)
        .prop_flat_map(|n| {
            let pairs = n * (n - 1);
            (
                Just(n),
                proptest::collection::vec(
                    proptest::option::weighted(
                        0.55,
                        prop_oneof![Just(54.0), Just(36.0), Just(18.0), Just(6.0)],
                    ),
                    pairs,
                ),
            )
        })
        .prop_map(|(n, edges)| Graph { n, edges })
}

fn build(g: &Graph) -> (DeclarativeModel, Vec<NodeId>) {
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..g.n).map(|i| t.add_node(i as f64, 0.0)).collect();
    let mut rated: Vec<(LinkId, f64)> = Vec::new();
    let mut k = 0;
    for i in 0..g.n {
        for j in 0..g.n {
            if i == j {
                continue;
            }
            if let Some(rate) = g.edges[k] {
                let l = t.add_link(nodes[i], nodes[j]).expect("fresh pair");
                rated.push((l, rate));
            }
            k += 1;
        }
    }
    let mut b = DeclarativeModel::builder(t);
    for &(l, rate) in &rated {
        b = b.alone_rates(l, &[r(rate)]);
    }
    (b.build(), nodes)
}

/// Brute-force cheapest path cost by DFS over simple paths.
fn brute_force_cost(
    m: &DeclarativeModel,
    idle: &IdleMap,
    metric: RoutingMetric,
    src: NodeId,
    dst: NodeId,
) -> Option<f64> {
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        m: &DeclarativeModel,
        idle: &IdleMap,
        metric: RoutingMetric,
        cur: NodeId,
        dst: NodeId,
        visited: &mut Vec<bool>,
        cost: f64,
        best: &mut Option<f64>,
    ) {
        if cur == dst {
            if best.is_none() || cost < best.unwrap() {
                *best = Some(cost);
            }
            return;
        }
        let links: Vec<_> = m
            .topology()
            .links_from(cur)
            .map(|l| (l.id(), l.rx()))
            .collect();
        for (lid, next) in links {
            if visited[next.index()] {
                continue;
            }
            let Some(step) = metric.link_cost(m, idle, lid) else {
                continue;
            };
            visited[next.index()] = true;
            dfs(m, idle, metric, next, dst, visited, cost + step, best);
            visited[next.index()] = false;
        }
    }
    let mut visited = vec![false; m.topology().num_nodes()];
    visited[src.index()] = true;
    let mut best = None;
    dfs(m, idle, metric, src, dst, &mut visited, 0.0, &mut best);
    best
}

fn path_cost(
    m: &DeclarativeModel,
    idle: &IdleMap,
    metric: RoutingMetric,
    path: &awb_net::Path,
) -> f64 {
    path.links()
        .iter()
        .map(|&l| {
            metric
                .link_cost(m, idle, l)
                .expect("routed links are usable")
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dijkstra_matches_brute_force(g in graph()) {
        let (m, nodes) = build(&g);
        let idle = IdleMap::from_schedule(&m, &Schedule::empty());
        for metric in RoutingMetric::ALL {
            for &src in &nodes {
                for &dst in &nodes {
                    if src == dst { continue; }
                    let found = shortest_path(&m, &idle, metric, src, dst);
                    let expected = brute_force_cost(&m, &idle, metric, src, dst);
                    match (found, expected) {
                        (None, None) => {}
                        (Some(p), Some(c)) => {
                            let got = path_cost(&m, &idle, metric, &p);
                            prop_assert!(
                                (got - c).abs() < 1e-9,
                                "{metric}: cost {got} vs brute force {c}"
                            );
                            // The path must be well-formed src -> dst.
                            prop_assert_eq!(p.source(m.topology()).unwrap(), src);
                            prop_assert_eq!(p.destination(m.topology()).unwrap(), dst);
                        }
                        (a, b) => {
                            return Err(TestCaseError::fail(format!(
                                "{metric}: reachability mismatch {a:?} vs {b:?}"
                            )));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn admission_never_admits_below_demand(g in graph(), demand in 0.5f64..20.0) {
        let (m, nodes) = build(&g);
        let pairs: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .zip(nodes.iter().skip(1))
            .map(|(&a, &b)| (a, b))
            .collect();
        let out = admit_sequentially(
            &m,
            &pairs,
            RoutingMetric::E2eTransmissionDelay,
            &AdmissionConfig {
                demand_mbps: demand,
                stop_on_first_failure: false,
                ..AdmissionConfig::default()
            },
        ).expect("admission never errors on feasible backgrounds");
        prop_assert_eq!(out.len(), pairs.len());
        for o in &out {
            if o.admitted {
                prop_assert!(o.available_mbps + 1e-6 >= demand);
                prop_assert!(o.path.is_some());
            }
        }
    }

    #[test]
    fn admitted_sets_shrink_with_demand(g in graph()) {
        let (m, nodes) = build(&g);
        let pairs: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .zip(nodes.iter().skip(1))
            .map(|(&a, &b)| (a, b))
            .collect();
        let run = |demand: f64| {
            admit_sequentially(
                &m,
                &pairs,
                RoutingMetric::HopCount,
                &AdmissionConfig {
                    demand_mbps: demand,
                    stop_on_first_failure: false,
                    ..AdmissionConfig::default()
                },
            )
            .expect("admission runs")
            .iter()
            .filter(|o| o.admitted)
            .count()
        };
        prop_assert!(run(10.0) <= run(1.0));
    }
}
