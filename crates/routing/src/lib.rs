//! Distributed QoS routing (paper §4–§5.2): pluggable routing metrics over
//! carrier-sensed channel state, shortest-path search, and the sequential
//! flow-admission experiment behind Fig. 2 and Fig. 3.
//!
//! The three §5.2 metrics are bundled as [`RoutingMetric`]:
//!
//! * **hop count** — classic shortest path;
//! * **e2eTD** — end-to-end transmission delay `Σ 1/r_i`;
//! * **average-e2eD** — average end-to-end delay `Σ 1/(λ_i r_i)` (Eq. 14),
//!   which folds the background traffic (via idleness `λ_i`) into the cost
//!   and is the paper's best-performing metric.
//!
//! # Example
//!
//! ```
//! use awb_estimate::IdleMap;
//! use awb_core::Schedule;
//! use awb_net::LinkRateModel;
//! use awb_routing::{shortest_path, RoutingMetric};
//! use awb_workloads::chain_model;
//! use awb_phy::Phy;
//!
//! let (model, path) = chain_model(3, 50.0, Phy::paper_default());
//! let idle = IdleMap::from_schedule(&model, &Schedule::empty());
//! let t = model.topology();
//! let src = path.source(t)?;
//! let dst = path.destination(t)?;
//! let found = shortest_path(&model, &idle, RoutingMetric::HopCount, src, dst).unwrap();
//! assert_eq!(found.len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod dijkstra;
mod epochs;
mod kpaths;
mod metric;
mod widest;

pub use admission::{
    admit_sequentially, admit_sequentially_in_session, admit_sequentially_with_policy,
    AdmissionConfig, AdmissionError, FlowOutcome,
};
pub use dijkstra::shortest_path;
pub use epochs::{EpochOutcome, EpochRunner};
pub use kpaths::{k_shortest_paths, oracle_route, oracle_route_with_session};
pub use metric::RoutingMetric;
pub use widest::{widest_estimate_path, RoutePolicy};
