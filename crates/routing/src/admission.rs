//! The sequential flow-admission experiment of §5.2 (Fig. 2 and Fig. 3).
//!
//! Flows join the network one by one. For each new flow the router measures
//! channel idleness against the optimal schedule of the already-admitted
//! background, picks a path under the configured [`RoutingMetric`], and the
//! oracle computes the path's true available bandwidth (Eq. 6 LP). The flow
//! is admitted when the available bandwidth covers its demand.

use crate::metric::RoutingMetric;
use crate::widest::RoutePolicy;
use awb_core::{feasibility, AvailableBandwidthOptions, CoreError, Flow, Schedule, Session};
use awb_estimate::IdleMap;
use awb_net::{LinkRateModel, NodeId, Path};
use std::error::Error;
use std::fmt;

/// Configuration of [`admit_sequentially`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Demand of every flow in Mbps (the paper uses 2 Mbps).
    pub demand_mbps: f64,
    /// Stop at the first rejected flow (the paper's simulation "stops when
    /// the demand of one flow is not satisfied"); otherwise keep going and
    /// record every outcome.
    pub stop_on_first_failure: bool,
    /// LP options for the ground-truth available-bandwidth computation.
    pub available_options: AvailableBandwidthOptions,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            demand_mbps: 2.0,
            stop_on_first_failure: true,
            available_options: AvailableBandwidthOptions::default(),
        }
    }
}

/// The outcome of one flow's admission attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOutcome {
    /// Position in the arrival order (0-based).
    pub index: usize,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The path the metric chose, if any.
    pub path: Option<Path>,
    /// Ground-truth available bandwidth of that path (Eq. 6), in Mbps;
    /// 0.0 when no path was found.
    pub available_mbps: f64,
    /// Whether the flow was admitted.
    pub admitted: bool,
}

/// Error from [`admit_sequentially`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The ground-truth LP failed (should not happen for admitted-only
    /// backgrounds, which are feasible by construction).
    Core(CoreError),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Core(e) => write!(f, "admission experiment failed: {e}"),
        }
    }
}

impl Error for AdmissionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdmissionError::Core(e) => Some(e),
        }
    }
}

impl From<CoreError> for AdmissionError {
    fn from(e: CoreError) -> Self {
        AdmissionError::Core(e)
    }
}

/// Runs the sequential admission experiment for `pairs` of
/// (source, destination) under `metric`.
///
/// Returns one [`FlowOutcome`] per attempted flow (all pairs unless
/// `stop_on_first_failure` cuts the run short).
///
/// # Errors
///
/// [`AdmissionError::Core`] only on solver failure; rejected flows are
/// normal outcomes, not errors.
pub fn admit_sequentially<M: LinkRateModel>(
    model: &M,
    pairs: &[(NodeId, NodeId)],
    metric: RoutingMetric,
    config: &AdmissionConfig,
) -> Result<Vec<FlowOutcome>, AdmissionError> {
    admit_sequentially_with_policy(model, pairs, RoutePolicy::Additive(metric), config)
}

/// [`admit_sequentially`] generalized over any [`RoutePolicy`], including
/// the widest-estimate policies of §4.
///
/// # Errors
///
/// As [`admit_sequentially`].
pub fn admit_sequentially_with_policy<M: LinkRateModel>(
    model: &M,
    pairs: &[(NodeId, NodeId)],
    policy: RoutePolicy,
    config: &AdmissionConfig,
) -> Result<Vec<FlowOutcome>, AdmissionError> {
    // One compiled-query session serves the whole experiment: every
    // candidate evaluation — the policy's own oracle queries and the
    // ground-truth admission check — shares the per-universe compiled
    // instances instead of recompiling them per flow.
    let mut session = Session::new(model, config.available_options);
    admit_sequentially_in_session(&mut session, pairs, policy, config)
}

/// [`admit_sequentially_with_policy`] against a caller-owned [`Session`] —
/// the epoch-driven re-admission loop ([`crate::EpochRunner`]) threads one
/// session through many topology epochs so compiled instances and the unit
/// cache survive between them. The session's model and options are used for
/// every computation; `config.available_options` is ignored here in favor of
/// the options the session was built with.
///
/// # Errors
///
/// As [`admit_sequentially`].
pub fn admit_sequentially_in_session<M: LinkRateModel>(
    session: &mut Session<'_, M>,
    pairs: &[(NodeId, NodeId)],
    policy: RoutePolicy,
    config: &AdmissionConfig,
) -> Result<Vec<FlowOutcome>, AdmissionError> {
    let model = session.model();
    let mut admitted: Vec<Flow> = Vec::new();
    let mut outcomes = Vec::with_capacity(pairs.len());
    for (index, &(src, dst)) in pairs.iter().enumerate() {
        // Channel state as carrier sensing would see it: the optimal
        // (minimum-airtime) schedule of the admitted background.
        let schedule = if admitted.is_empty() {
            Schedule::empty()
        } else {
            feasibility::min_airtime(model, &admitted)
                .map_err(AdmissionError::from)?
                .1
        };
        let idle = IdleMap::from_schedule(model, &schedule);
        let path = policy.route_with_session(session, &idle, &admitted, src, dst);
        let (available_mbps, new_flow, chosen) = match path {
            None => (0.0, None, None),
            Some(p) => {
                let out = session.query(&admitted, &p)?;
                let flow = if out.bandwidth_mbps() + 1e-9 >= config.demand_mbps {
                    Some(Flow::new(p.clone(), config.demand_mbps).map_err(AdmissionError::from)?)
                } else {
                    None
                };
                (out.bandwidth_mbps(), flow, Some(p))
            }
        };
        let admitted_now = new_flow.is_some();
        if let Some(flow) = new_flow {
            admitted.push(flow);
        }
        outcomes.push(FlowOutcome {
            index,
            src,
            dst,
            path: chosen,
            available_mbps,
            admitted: admitted_now,
        });
        if !admitted_now && config.stop_on_first_failure {
            break;
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    /// A single shared channel: `k` parallel links that all conflict.
    fn shared_channel(k: usize, rate_mbps: f64) -> (DeclarativeModel, Vec<(NodeId, NodeId)>) {
        let mut t = Topology::new();
        let mut pairs = Vec::new();
        let mut links = Vec::new();
        for i in 0..k {
            let a = t.add_node(i as f64 * 10.0, 0.0);
            let b = t.add_node(i as f64 * 10.0 + 5.0, 0.0);
            links.push(t.add_link(a, b).unwrap());
            pairs.push((a, b));
        }
        let mut builder = DeclarativeModel::builder(t);
        for &l in &links {
            builder = builder.alone_rates(l, &[Rate::from_mbps(rate_mbps)]);
        }
        for i in 0..k {
            for j in (i + 1)..k {
                builder = builder.conflict_all(links[i], links[j]);
            }
        }
        (builder.build(), pairs)
    }

    #[test]
    fn admits_until_the_channel_saturates() {
        // 6 Mbps channel, 2 Mbps flows, full conflict: exactly 3 fit.
        let (m, pairs) = shared_channel(5, 6.0);
        let out = admit_sequentially(
            &m,
            &pairs,
            RoutingMetric::HopCount,
            &AdmissionConfig::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 4); // 3 admitted + the first failure
        assert!(out[..3].iter().all(|o| o.admitted));
        assert!(!out[3].admitted);
        // Available bandwidth decreases monotonically as flows join.
        for w in out.windows(2) {
            assert!(w[1].available_mbps <= w[0].available_mbps + 1e-9);
        }
    }

    #[test]
    fn continue_past_failures_when_configured() {
        let (m, pairs) = shared_channel(5, 6.0);
        let out = admit_sequentially(
            &m,
            &pairs,
            RoutingMetric::HopCount,
            &AdmissionConfig {
                stop_on_first_failure: false,
                ..AdmissionConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out.iter().filter(|o| o.admitted).count(), 3);
    }

    #[test]
    fn unroutable_pairs_are_recorded_not_admitted() {
        let (m, mut pairs) = shared_channel(2, 6.0);
        // Reverse a pair: no reverse links exist.
        pairs[0] = (pairs[0].1, pairs[0].0);
        let out = admit_sequentially(
            &m,
            &pairs,
            RoutingMetric::HopCount,
            &AdmissionConfig::default(),
        )
        .unwrap();
        assert!(!out[0].admitted);
        assert!(out[0].path.is_none());
        assert_eq!(out[0].available_mbps, 0.0);
    }
}
