//! Shortest-path search under a routing metric.

use crate::metric::RoutingMetric;
use awb_estimate::IdleMap;
use awb_net::{LinkRateModel, NodeId, Path};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry ordered by smallest cost first.
struct Entry {
    cost: f64,
    node: NodeId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest cost.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra's algorithm under `metric`: the cheapest path from `src` to
/// `dst`, or `None` when no usable-link path exists.
///
/// Links whose cost is `None` (dead, or zero idle share under average-e2eD)
/// are treated as absent. Ties are broken deterministically by node id.
pub fn shortest_path<M: LinkRateModel>(
    model: &M,
    idle: &IdleMap,
    metric: RoutingMetric,
    src: NodeId,
    dst: NodeId,
) -> Option<Path> {
    let t = model.topology();
    if src == dst || t.node(src).is_err() || t.node(dst).is_err() {
        return None;
    }
    let n = t.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<awb_net::LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[src.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry {
        cost: 0.0,
        node: src,
    });
    while let Some(Entry { cost, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        if node == dst {
            break;
        }
        for link in t.links_from(node) {
            let Some(step) = metric.link_cost(model, idle, link.id()) else {
                continue;
            };
            let v = link.rx();
            let next = cost + step;
            if next < dist[v.index()] {
                dist[v.index()] = next;
                prev[v.index()] = Some(link.id());
                heap.push(Entry {
                    cost: next,
                    node: v,
                });
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    // Reconstruct.
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let l = prev[cur.index()]?;
        links.push(l);
        cur = t.link(l).ok()?.tx();
    }
    links.reverse();
    Path::new(t, links).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_core::Schedule;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::{Phy, Rate};
    use awb_workloads::grid_model;

    fn empty_idle<M: LinkRateModel>(m: &M) -> IdleMap {
        IdleMap::from_schedule(m, &Schedule::empty())
    }

    #[test]
    fn grid_hop_count_route_is_direct() {
        let m = grid_model(2, 3, 100.0, Phy::paper_default());
        let t = m.topology();
        let nodes: Vec<_> = t.nodes().map(|n| n.id()).collect();
        // Corner (0,0) to corner (200,100): diagonal links exist (141 m), so
        // 2 hops suffice.
        let src = nodes[0];
        let dst = nodes[5];
        let p = shortest_path(&m, &empty_idle(&m), RoutingMetric::HopCount, src, dst).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(t).unwrap(), src);
        assert_eq!(p.destination(t).unwrap(), dst);
    }

    #[test]
    fn e2etd_avoids_slow_shortcuts() {
        // Two-node route with a direct slow link (6 Mbps) vs a 2-hop fast
        // detour (54 each): direct e2eTD = 1/6 > 2/54.
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let c = t.add_node(2.0, 0.0);
        let direct = t.add_link(a, c).unwrap();
        let h1 = t.add_link(a, b).unwrap();
        let h2 = t.add_link(b, c).unwrap();
        let r54 = Rate::from_mbps(54.0);
        let m = DeclarativeModel::builder(t)
            .alone_rates(direct, &[Rate::from_mbps(6.0)])
            .alone_rates(h1, &[r54])
            .alone_rates(h2, &[r54])
            .build();
        let idle = empty_idle(&m);
        let hop = shortest_path(&m, &idle, RoutingMetric::HopCount, a, c).unwrap();
        assert_eq!(hop.len(), 1);
        let td = shortest_path(&m, &idle, RoutingMetric::E2eTransmissionDelay, a, c).unwrap();
        assert_eq!(td.len(), 2);
    }

    #[test]
    fn average_e2ed_routes_around_busy_regions() {
        // Diamond: a->b->d busy, a->c->d idle, same rates.
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 1.0);
        let c = t.add_node(1.0, -1.0);
        let d = t.add_node(2.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let bd = t.add_link(b, d).unwrap();
        let ac = t.add_link(a, c).unwrap();
        let cd = t.add_link(c, d).unwrap();
        let r54 = Rate::from_mbps(54.0);
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[r54])
            .alone_rates(bd, &[r54])
            .alone_rates(ac, &[r54])
            .alone_rates(cd, &[r54])
            .build();
        // Busy schedule occupying b's links 80% of the time.
        let busy = Schedule::new(vec![(vec![(ab, r54)].into_iter().collect(), 0.8)]);
        let idle = IdleMap::from_schedule(&m, &busy);
        let p = shortest_path(&m, &idle, RoutingMetric::AverageE2eDelay, a, d).unwrap();
        assert_eq!(p.links(), &[ac, cd]);
        // Hop count is indifferent (both 2 hops) but e2eTD ties break by id:
        // either way it must find *a* 2-hop path.
        let p2 = shortest_path(&m, &idle, RoutingMetric::HopCount, a, d).unwrap();
        assert_eq!(p2.len(), 2);
    }

    #[test]
    fn unreachable_and_degenerate_cases() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[Rate::from_mbps(6.0)])
            .build();
        let idle = empty_idle(&m);
        // Reverse direction has no link.
        assert!(shortest_path(&m, &idle, RoutingMetric::HopCount, b, a).is_none());
        // src == dst yields no path (paths have ≥ 1 hop).
        assert!(shortest_path(&m, &idle, RoutingMetric::HopCount, a, a).is_none());
    }

    #[test]
    fn dead_links_are_invisible() {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let m = DeclarativeModel::builder(t).build(); // ab has no rates
        let idle = empty_idle(&m);
        let _ = ab;
        assert!(shortest_path(&m, &idle, RoutingMetric::HopCount, a, b).is_none());
    }
}
