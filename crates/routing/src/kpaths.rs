//! K-shortest loopless paths (Yen's algorithm) and oracle routing.
//!
//! The joint QoS-routing/link-scheduling problem of §4 is NP-hard; the paper
//! studies distributed heuristics. As a *reference point* this module routes
//! by brute strength: enumerate the `k` best candidate paths under a cheap
//! additive metric, evaluate the true Eq. 6 available bandwidth of each, and
//! pick the best. The gap between this oracle and the §5.2 metrics measures
//! how much the heuristics leave on the table.

use crate::dijkstra::shortest_path;
use crate::metric::RoutingMetric;
use awb_core::{AvailableBandwidthOptions, Flow, Session};
use awb_estimate::IdleMap;
use awb_net::{LinkId, LinkRateModel, NodeId, Path};

/// Computes up to `k` loopless shortest paths from `src` to `dst` under
/// `metric`, best first (Yen's algorithm over the [`shortest_path`]
/// subroutine).
///
/// Returns fewer than `k` paths when the graph does not contain that many,
/// and an empty vector when `dst` is unreachable.
pub fn k_shortest_paths<M: LinkRateModel>(
    model: &M,
    idle: &IdleMap,
    metric: RoutingMetric,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Vec<Path> {
    let Some(first) = shortest_path(model, idle, metric, src, dst) else {
        return Vec::new();
    };
    let mut found = vec![first];
    let mut candidates: Vec<Path> = Vec::new();
    let t = model.topology();

    while found.len() < k {
        let Some(last) = found.last().cloned() else {
            break;
        };
        // Spur from every prefix of the last found path.
        for spur_idx in 0..last.len() {
            let spur_node = if spur_idx == 0 {
                src
            } else {
                match t.link(last.links()[spur_idx - 1]) {
                    Ok(link) => link.rx(),
                    Err(_) => continue,
                }
            };
            let root: Vec<LinkId> = last.links()[..spur_idx].to_vec();
            // Ban the next edge of every found path sharing this root, and
            // every node already on the root (looplessness).
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in &found {
                if p.links().len() > spur_idx && p.links()[..spur_idx] == root[..] {
                    banned_links.push(p.links()[spur_idx]);
                }
            }
            let mut banned_nodes: Vec<NodeId> = vec![src];
            for &l in &root {
                if let Ok(link) = t.link(l) {
                    banned_nodes.push(link.rx());
                }
            }
            banned_nodes.retain(|&n| n != spur_node);

            let Some(spur) = shortest_path_with_bans(
                model,
                idle,
                metric,
                spur_node,
                dst,
                &banned_links,
                &banned_nodes,
            ) else {
                continue;
            };
            let mut links = root.clone();
            links.extend_from_slice(spur.links());
            if let Ok(candidate) = Path::new(t, links) {
                if !found.contains(&candidate) && !candidates.contains(&candidate) {
                    candidates.push(candidate);
                }
            }
        }
        // Promote the cheapest candidate.
        let Some((best_idx, _)) = candidates
            .iter()
            .enumerate()
            .map(|(i, p)| (i, path_cost(model, idle, metric, p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        else {
            break;
        };
        found.push(candidates.swap_remove(best_idx));
    }
    found
}

fn path_cost<M: LinkRateModel>(
    model: &M,
    idle: &IdleMap,
    metric: RoutingMetric,
    path: &Path,
) -> f64 {
    path.links()
        .iter()
        .map(|&l| metric.link_cost(model, idle, l).unwrap_or(f64::INFINITY))
        .sum()
}

/// Dijkstra with banned links/nodes, used for Yen's spur searches. Bans are
/// implemented by masking costs rather than rebuilding the topology.
fn shortest_path_with_bans<M: LinkRateModel>(
    model: &M,
    idle: &IdleMap,
    metric: RoutingMetric,
    src: NodeId,
    dst: NodeId,
    banned_links: &[LinkId],
    banned_nodes: &[NodeId],
) -> Option<Path> {
    // Small graphs: reuse the public Dijkstra over a masked adapter would
    // need a model wrapper; instead run a local Dijkstra here.
    let t = model.topology();
    if src == dst {
        return None;
    }
    let n = t.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<LinkId>> = vec![None; n];
    let mut done = vec![false; n];
    for &b in banned_nodes {
        if b.index() < n {
            done[b.index()] = true;
        }
    }
    done[src.index()] = false;
    dist[src.index()] = 0.0;
    let mut heap = std::collections::BinaryHeap::new();
    heap.push((std::cmp::Reverse(ordered(0.0)), src));
    while let Some((std::cmp::Reverse(d), node)) = heap.pop() {
        let d = d.0;
        if done[node.index()] || d > dist[node.index()] + 1e-15 {
            continue;
        }
        done[node.index()] = true;
        if node == dst {
            break;
        }
        for link in t.links_from(node) {
            if banned_links.contains(&link.id()) {
                continue;
            }
            let v = link.rx();
            if done[v.index()] && v != dst {
                continue;
            }
            let Some(step) = metric.link_cost(model, idle, link.id()) else {
                continue;
            };
            let next = d + step;
            if next < dist[v.index()] {
                dist[v.index()] = next;
                prev[v.index()] = Some(link.id());
                heap.push((std::cmp::Reverse(ordered(next)), v));
            }
        }
    }
    if dist[dst.index()].is_infinite() {
        return None;
    }
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let l = prev[cur.index()]?;
        links.push(l);
        cur = t.link(l).ok()?.tx();
    }
    links.reverse();
    Path::new(t, links).ok()
}

#[derive(PartialEq, PartialOrd)]
struct Ordered(f64);
impl Eq for Ordered {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
fn ordered(v: f64) -> Ordered {
    Ordered(v)
}

/// Oracle routing: evaluates the true Eq. 6 available bandwidth of the `k`
/// best e2eTD candidates and returns the path with the largest value (and
/// that value). `None` when no path exists.
///
/// This is exponential-free but only as good as its candidate pool — it is
/// an upper-bound *heuristic* for the NP-hard joint problem, strong in
/// practice for small `k`.
pub fn oracle_route<M: LinkRateModel>(
    model: &M,
    idle: &IdleMap,
    background: &[Flow],
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Option<(Path, f64)> {
    let mut session = Session::new(model, AvailableBandwidthOptions::default());
    oracle_route_with_session(&mut session, idle, background, src, dst, k)
}

/// [`oracle_route`] through a caller-owned [`Session`]: the `k` candidates
/// are evaluated against one shared session instead of `k` independent
/// solves, so candidates sharing a link universe (the common case — they
/// connect the same endpoints through overlapping links) reuse the compiled
/// instance, as do later calls for the same endpoints. Results are
/// bit-for-bit identical to [`oracle_route`] when the session uses default
/// options.
pub fn oracle_route_with_session<M: LinkRateModel>(
    session: &mut Session<'_, M>,
    idle: &IdleMap,
    background: &[Flow],
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> Option<(Path, f64)> {
    let candidates = k_shortest_paths(
        session.model(),
        idle,
        RoutingMetric::E2eTransmissionDelay,
        src,
        dst,
        k,
    );
    let mut best: Option<(Path, f64)> = None;
    for p in candidates {
        let Ok(out) = session.query(background, &p) else {
            continue;
        };
        let v = out.bandwidth_mbps();
        if best.as_ref().is_none_or(|(_, b)| v > *b) {
            best = Some((p, v));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_core::Schedule;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// A 4-node graph with three distinct a->d routes of different lengths.
    fn multi_route() -> (DeclarativeModel, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 1.0);
        let c = t.add_node(1.0, -1.0);
        let d = t.add_node(2.0, 0.0);
        let mut links = Vec::new();
        for (x, y) in [(a, b), (b, d), (a, c), (c, d), (a, d), (b, c)] {
            links.push(t.add_link(x, y).unwrap());
        }
        let mut builder = DeclarativeModel::builder(t);
        for &l in &links {
            builder = builder.alone_rates(l, &[r(54.0)]);
        }
        (builder.build(), a, d)
    }

    fn empty_idle<M: LinkRateModel>(m: &M) -> IdleMap {
        IdleMap::from_schedule(m, &Schedule::empty())
    }

    #[test]
    fn yen_enumerates_distinct_loopless_paths_in_order() {
        let (m, a, d) = multi_route();
        let idle = empty_idle(&m);
        let paths = k_shortest_paths(&m, &idle, RoutingMetric::HopCount, a, d, 5);
        // Routes: a-d (1 hop), a-b-d and a-c-d (2 hops), a-b-c-d (3 hops).
        assert_eq!(paths.len(), 4);
        let lens: Vec<usize> = paths.iter().map(Path::len).collect();
        assert_eq!(lens, vec![1, 2, 2, 3]);
        // All distinct.
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert_ne!(paths[i], paths[j]);
            }
        }
        // All valid a->d paths.
        for p in &paths {
            assert_eq!(p.source(m.topology()).unwrap(), a);
            assert_eq!(p.destination(m.topology()).unwrap(), d);
        }
    }

    #[test]
    fn yen_respects_k_and_unreachability() {
        let (m, a, d) = multi_route();
        let idle = empty_idle(&m);
        assert_eq!(
            k_shortest_paths(&m, &idle, RoutingMetric::HopCount, a, d, 2).len(),
            2
        );
        // d has no outgoing links: d -> a unreachable.
        assert!(k_shortest_paths(&m, &idle, RoutingMetric::HopCount, d, a, 3).is_empty());
    }

    #[test]
    fn oracle_beats_or_matches_hop_count() {
        // Make the direct a-d link slow so hop count picks a bad path while
        // the oracle detours.
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 1.0);
        let d = t.add_node(2.0, 0.0);
        let direct = t.add_link(a, d).unwrap();
        let ab = t.add_link(a, b).unwrap();
        let bd = t.add_link(b, d).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(direct, &[r(6.0)])
            .alone_rates(ab, &[r(54.0)])
            .alone_rates(bd, &[r(54.0)])
            // Adjacent hops share node b and cannot run concurrently.
            .conflict_all(ab, bd)
            .build();
        let idle = empty_idle(&m);
        let (path, value) = oracle_route(&m, &idle, &[], a, d, 4).unwrap();
        // The 2-hop fast route carries 27; the direct link only 6.
        assert_eq!(path.links(), &[ab, bd]);
        assert!((value - 27.0).abs() < 1e-6);
    }
}
