//! Widest-path routing by estimated available bandwidth (paper §4).
//!
//! The paper proposes using "the minimum value of estimated available
//! bandwidth ... for all (local) maximal cliques as routing metrics": each
//! intermediate node estimates the available bandwidth of the path prefix
//! from the source to itself and routes to maximize it.
//!
//! Unlike the additive metrics, a prefix's estimate depends on the *whole*
//! prefix (its local cliques), not just a per-link cost, so exact search is
//! exponential. [`widest_estimate_path`] implements the distributed
//! label-setting heuristic the paper sketches: each node keeps the best
//! known prefix estimate and extends it — exact when the estimate is
//! determined by a bounded local window, heuristic in general.

use crate::metric::RoutingMetric;
use awb_core::{Flow, Session};
use awb_estimate::{Estimator, Hop, IdleMap};
use awb_net::{LinkRateModel, NodeId, Path};
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct Label {
    estimate: f64,
    node: NodeId,
    links: Vec<awb_net::LinkId>,
}

impl Eq for Label {}
impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Label {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by estimate; deterministic tie-break by node id.
        self.estimate
            .total_cmp(&other.estimate)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Finds a path from `src` to `dst` maximizing the chosen estimator's value
/// for the whole path (a maximin/widest-path search over prefix estimates).
///
/// Prefix estimates are non-increasing as hops are appended (appending a
/// hop can only add clique members and reduce minima), which makes the
/// label-setting search well-founded; it is exact whenever the best
/// prefix estimate at each node extends to the best full path — the
/// standard widest-path assumption, heuristic here because estimates are
/// not purely local. Returns `None` when no live-link path exists.
pub fn widest_estimate_path<M: LinkRateModel>(
    model: &M,
    idle: &IdleMap,
    estimator: Estimator,
    src: NodeId,
    dst: NodeId,
) -> Option<Path> {
    let t = model.topology();
    if src == dst || t.node(src).is_err() || t.node(dst).is_err() {
        return None;
    }
    let mut best = vec![f64::NEG_INFINITY; t.num_nodes()];
    let mut heap = BinaryHeap::new();
    heap.push(Label {
        estimate: f64::INFINITY,
        node: src,
        links: Vec::new(),
    });
    best[src.index()] = f64::INFINITY;
    while let Some(Label {
        estimate,
        node,
        links,
    }) = heap.pop()
    {
        if estimate < best[node.index()] {
            continue; // stale label
        }
        if node == dst {
            return Path::new(t, links).ok();
        }
        for link in t.links_from(node) {
            let next = link.rx();
            if links.contains(&link.id()) {
                continue;
            }
            // Avoid revisiting nodes (simple paths only).
            if links
                .iter()
                .any(|&l| t.link(l).is_ok_and(|link| link.tx() == next))
                || next == src
            {
                continue;
            }
            let Some(hop) = Hop::for_link(model, idle, link.id()) else {
                continue;
            };
            let mut ext = links.clone();
            ext.push(link.id());
            let hops: Option<Vec<Hop>> =
                ext.iter().map(|&l| Hop::for_link(model, idle, l)).collect();
            let Some(hops) = hops else { continue };
            let _ = hop;
            let e = estimator.estimate(model, &hops);
            if e > best[next.index()] {
                best[next.index()] = e;
                heap.push(Label {
                    estimate: e,
                    node: next,
                    links: ext,
                });
            }
        }
    }
    None
}

/// Convenience: route with an additive metric, a widest-estimate policy, or
/// the k-best Eq. 6 oracle under one name, for experiment sweeps mixing the
/// families.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutePolicy {
    /// One of the paper's additive metrics (§5.2).
    Additive(RoutingMetric),
    /// Widest path under a §4 estimator.
    WidestEstimate(Estimator),
    /// Evaluate the true Eq. 6 available bandwidth of the `k` best e2eTD
    /// candidates through a shared [`Session`] and pick the widest (see
    /// [`crate::oracle_route_with_session`]).
    OracleKBest(usize),
}

impl RoutePolicy {
    /// Runs the policy without background knowledge. For
    /// [`RoutePolicy::OracleKBest`] this evaluates candidates against an
    /// empty background with a one-shot session; admission loops that know
    /// the admitted background should use
    /// [`RoutePolicy::route_with_session`] instead.
    pub fn route<M: LinkRateModel>(
        self,
        model: &M,
        idle: &IdleMap,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Path> {
        let mut session = Session::new(model, awb_core::AvailableBandwidthOptions::default());
        self.route_with_session(&mut session, idle, &[], src, dst)
    }

    /// Runs the policy through a caller-owned [`Session`] against the given
    /// background flows. The additive and widest-estimate families only use
    /// the session's model (their metrics come from the idle map);
    /// [`RoutePolicy::OracleKBest`] evaluates every candidate path's Eq. 6
    /// LP through the shared session, reusing its compiled instances.
    pub fn route_with_session<M: LinkRateModel>(
        self,
        session: &mut Session<'_, M>,
        idle: &IdleMap,
        background: &[Flow],
        src: NodeId,
        dst: NodeId,
    ) -> Option<Path> {
        match self {
            RoutePolicy::Additive(m) => crate::shortest_path(session.model(), idle, m, src, dst),
            RoutePolicy::WidestEstimate(e) => {
                widest_estimate_path(session.model(), idle, e, src, dst)
            }
            RoutePolicy::OracleKBest(k) => {
                crate::oracle_route_with_session(session, idle, background, src, dst, k)
                    .map(|(path, _)| path)
            }
        }
    }

    /// A label for reports.
    pub fn label(self) -> String {
        match self {
            RoutePolicy::Additive(m) => m.label().to_string(),
            RoutePolicy::WidestEstimate(e) => format!("widest[{e}]"),
            RoutePolicy::OracleKBest(k) => format!("oracle[k={k}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_core::Schedule;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn r(m: f64) -> Rate {
        Rate::from_mbps(m)
    }

    /// Diamond: a -> {b, c} -> d. Upper route has a slow hop; lower route
    /// is fast but busy.
    fn diamond() -> (DeclarativeModel, NodeId, NodeId, [awb_net::LinkId; 4]) {
        let mut t = Topology::new();
        let a = t.add_node(0.0, 0.0);
        let b = t.add_node(1.0, 1.0);
        let c = t.add_node(1.0, -1.0);
        let d = t.add_node(2.0, 0.0);
        let ab = t.add_link(a, b).unwrap();
        let bd = t.add_link(b, d).unwrap();
        let ac = t.add_link(a, c).unwrap();
        let cd = t.add_link(c, d).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(ab, &[r(54.0)])
            .alone_rates(bd, &[r(6.0)]) // slow hop on the upper route
            .alone_rates(ac, &[r(54.0)])
            .alone_rates(cd, &[r(54.0)])
            .build();
        (m, a, d, [ab, bd, ac, cd])
    }

    #[test]
    fn widest_path_prefers_high_bottleneck() {
        let (m, a, d, [_, _, ac, cd]) = diamond();
        let idle = IdleMap::from_schedule(&m, &Schedule::empty());
        let p = widest_estimate_path(&m, &idle, Estimator::BottleneckNode, a, d).unwrap();
        assert_eq!(p.links(), &[ac, cd]);
    }

    #[test]
    fn widest_path_avoids_busy_fast_route() {
        let (m, a, d, [ab, bd, ac, cd]) = diamond();
        // Make the fast lower route nearly saturated.
        let busy = Schedule::new(vec![
            (vec![(ac, r(54.0))].into_iter().collect(), 0.5),
            (vec![(cd, r(54.0))].into_iter().collect(), 0.49),
        ]);
        let idle = IdleMap::from_schedule(&m, &busy);
        // Lower route bottleneck: ~0.01·54 ≈ 0.54; upper: 6 Mbps.
        let p = widest_estimate_path(&m, &idle, Estimator::ConservativeClique, a, d).unwrap();
        assert_eq!(p.links(), &[ab, bd]);
    }

    #[test]
    fn unreachable_returns_none() {
        let (m, a, _, _) = diamond();
        let idle = IdleMap::from_schedule(&m, &Schedule::empty());
        let lonely = NodeId::from_index(99);
        assert!(widest_estimate_path(&m, &idle, Estimator::BottleneckNode, a, lonely).is_none());
        assert!(widest_estimate_path(&m, &idle, Estimator::BottleneckNode, a, a).is_none());
    }

    #[test]
    fn route_policy_dispatches_both_families() {
        let (m, a, d, _) = diamond();
        let idle = IdleMap::from_schedule(&m, &Schedule::empty());
        let add = RoutePolicy::Additive(RoutingMetric::HopCount)
            .route(&m, &idle, a, d)
            .unwrap();
        assert_eq!(add.len(), 2);
        let wide = RoutePolicy::WidestEstimate(Estimator::CliqueConstraint)
            .route(&m, &idle, a, d)
            .unwrap();
        assert_eq!(wide.len(), 2);
        assert_eq!(
            RoutePolicy::WidestEstimate(Estimator::CliqueConstraint).label(),
            "widest[clique constraint]"
        );
        assert_eq!(
            RoutePolicy::Additive(RoutingMetric::HopCount).label(),
            "hop count"
        );
        // The oracle policy picks the route whose Eq. 6 value is widest:
        // the un-conflicted 54 Mbps lower route, not the 6 Mbps upper hop.
        let oracle = RoutePolicy::OracleKBest(4).route(&m, &idle, a, d).unwrap();
        assert_eq!(oracle.len(), 2);
        assert_eq!(RoutePolicy::OracleKBest(4).label(), "oracle[k=4]");
    }
}
