//! Routing metrics (paper §4, Eq. 14 and §5.2).

use awb_estimate::IdleMap;
use awb_net::{LinkId, LinkRateModel};
use std::fmt;

/// The additive routing metrics compared in the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RoutingMetric {
    /// Fewest hops: every live link costs 1.
    HopCount,
    /// End-to-end transmission delay (e2eTD): a link costs `1/r_i`, the
    /// time to push one unit of traffic at its effective data rate.
    E2eTransmissionDelay,
    /// Average end-to-end delay (average-e2eD, Eq. 14): a link costs
    /// `1/(λ_i · r_i)` — the expected per-unit delay when only the idle
    /// share `λ_i` of the channel is usable.
    AverageE2eDelay,
}

impl RoutingMetric {
    /// The metrics in the order Fig. 3 presents them.
    pub const ALL: [RoutingMetric; 3] = [
        RoutingMetric::HopCount,
        RoutingMetric::E2eTransmissionDelay,
        RoutingMetric::AverageE2eDelay,
    ];

    /// The additive cost of routing across `link`, or `None` when the link
    /// is unusable under this metric (dead link, or zero idle share for
    /// average-e2eD).
    pub fn link_cost<M: LinkRateModel>(
        self,
        model: &M,
        idle: &IdleMap,
        link: LinkId,
    ) -> Option<f64> {
        let rate = model.max_alone_rate(link)?;
        match self {
            RoutingMetric::HopCount => Some(1.0),
            RoutingMetric::E2eTransmissionDelay => Some(1.0 / rate.as_mbps()),
            RoutingMetric::AverageE2eDelay => {
                let lambda = idle.link(model, link);
                if lambda <= 0.0 {
                    None
                } else {
                    Some(1.0 / (lambda * rate.as_mbps()))
                }
            }
        }
    }

    /// The paper's label for this metric.
    pub fn label(self) -> &'static str {
        match self {
            RoutingMetric::HopCount => "hop count",
            RoutingMetric::E2eTransmissionDelay => "e2eTD",
            RoutingMetric::AverageE2eDelay => "average-e2eD",
        }
    }
}

impl fmt::Display for RoutingMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_core::Schedule;
    use awb_net::{DeclarativeModel, Topology};
    use awb_phy::Rate;

    fn fixture() -> (DeclarativeModel, LinkId, LinkId) {
        let mut t = Topology::new();
        let n: Vec<_> = (0..4).map(|i| t.add_node(f64::from(i), 0.0)).collect();
        let fast = t.add_link(n[0], n[1]).unwrap();
        let slow = t.add_link(n[2], n[3]).unwrap();
        let m = DeclarativeModel::builder(t)
            .alone_rates(fast, &[Rate::from_mbps(54.0)])
            .alone_rates(slow, &[Rate::from_mbps(6.0)])
            .build();
        (m, fast, slow)
    }

    #[test]
    fn hop_count_is_uniform() {
        let (m, fast, slow) = fixture();
        let idle = IdleMap::from_schedule(&m, &Schedule::empty());
        assert_eq!(
            RoutingMetric::HopCount.link_cost(&m, &idle, fast),
            Some(1.0)
        );
        assert_eq!(
            RoutingMetric::HopCount.link_cost(&m, &idle, slow),
            Some(1.0)
        );
    }

    #[test]
    fn e2etd_prefers_fast_links() {
        let (m, fast, slow) = fixture();
        let idle = IdleMap::from_schedule(&m, &Schedule::empty());
        let cf = RoutingMetric::E2eTransmissionDelay
            .link_cost(&m, &idle, fast)
            .unwrap();
        let cs = RoutingMetric::E2eTransmissionDelay
            .link_cost(&m, &idle, slow)
            .unwrap();
        assert!((cf - 1.0 / 54.0).abs() < 1e-12);
        assert!((cs - 1.0 / 6.0).abs() < 1e-12);
        assert!(cf < cs);
    }

    #[test]
    fn average_e2ed_folds_in_idleness() {
        let (m, fast, _) = fixture();
        // Busy background on the fast link's endpoints: idle 0.25.
        let busy = Schedule::new(vec![(
            vec![(fast, Rate::from_mbps(54.0))].into_iter().collect(),
            0.75,
        )]);
        let idle = IdleMap::from_schedule(&m, &busy);
        let c = RoutingMetric::AverageE2eDelay
            .link_cost(&m, &idle, fast)
            .unwrap();
        assert!((c - 1.0 / (0.25 * 54.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_idle_links_are_unusable_under_average_e2ed() {
        let (m, fast, _) = fixture();
        let saturated = Schedule::new(vec![(
            vec![(fast, Rate::from_mbps(54.0))].into_iter().collect(),
            1.0,
        )]);
        let idle = IdleMap::from_schedule(&m, &saturated);
        assert_eq!(
            RoutingMetric::AverageE2eDelay.link_cost(&m, &idle, fast),
            None
        );
        // But hop count and e2eTD ignore idleness.
        assert!(RoutingMetric::HopCount.link_cost(&m, &idle, fast).is_some());
        assert!(RoutingMetric::E2eTransmissionDelay
            .link_cost(&m, &idle, fast)
            .is_some());
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(RoutingMetric::HopCount.to_string(), "hop count");
        assert_eq!(RoutingMetric::E2eTransmissionDelay.to_string(), "e2eTD");
        assert_eq!(RoutingMetric::AverageE2eDelay.to_string(), "average-e2eD");
        assert_eq!(RoutingMetric::ALL.len(), 3);
    }
}
