//! Epoch-driven re-admission over a changing topology.
//!
//! Static admission (§5.2, [`crate::admit_sequentially`]) assumes the
//! topology outlives the experiment. Under mobility the topology is a
//! sequence of epochs, each a full model snapshot plus a
//! [`TopologyDelta`] against its predecessor. [`EpochRunner`] threads one
//! long-lived [`Session`] through that sequence: at each epoch boundary it
//! calls [`Session::apply_delta`], which migrates every cached compiled
//! instance by recompiling only the components the delta touched, then
//! re-runs sequential admission for the epoch's demand matrix against the
//! fresh topology. The per-epoch [`DeltaReuse`] counters quantify how much
//! compiled state survived the move — the number the mobility benches
//! compare against from-scratch recompilation.
//!
//! Re-admission is deliberately stateless across epochs at the *flow* level
//! (every epoch admits its demand matrix from an empty background): the
//! experiment isolates how admission capacity and recompilation cost evolve
//! with the topology, not flow churn policy.

use crate::admission::{
    admit_sequentially_in_session, AdmissionConfig, AdmissionError, FlowOutcome,
};
use crate::widest::RoutePolicy;
use awb_core::{DeltaReuse, Session, SessionStats};
use awb_net::{LinkRateModel, NodeId, TopologyDelta};

/// One epoch's re-admission outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochOutcome {
    /// 0-based epoch index (increments per [`EpochRunner::run_epoch`]).
    pub epoch: usize,
    /// Flows attempted this epoch.
    pub attempted: usize,
    /// Flows admitted this epoch.
    pub admitted: usize,
    /// Component-reuse counters of this epoch's delta application (all zero
    /// for the first epoch, which has no predecessor).
    pub reuse: DeltaReuse,
    /// Per-flow outcomes, in arrival order.
    pub outcomes: Vec<FlowOutcome>,
}

/// Threads one [`Session`] through a sequence of topology epochs,
/// re-admitting a demand matrix per epoch (see module docs).
///
/// The caller owns the epoch models (they must all outlive the runner) and
/// supplies the delta between consecutive snapshots — typically
/// [`TopologyDelta::between`] over a
/// `awb_workloads::mobility::WaypointMobility` trace.
#[derive(Debug)]
pub struct EpochRunner<'m, M: LinkRateModel> {
    session: Session<'m, M>,
    policy: RoutePolicy,
    config: AdmissionConfig,
    epoch: usize,
}

impl<'m, M: LinkRateModel> EpochRunner<'m, M> {
    /// Creates a runner whose session compiles against `model` (the first
    /// epoch's snapshot) under `config.available_options`.
    pub fn new(model: &'m M, policy: RoutePolicy, config: AdmissionConfig) -> EpochRunner<'m, M> {
        EpochRunner {
            session: Session::new(model, config.available_options),
            policy,
            config,
            epoch: 0,
        }
    }

    /// The session's accumulated compile/warm-hit/delta-reuse counters.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Epochs run so far.
    pub fn epochs_run(&self) -> usize {
        self.epoch
    }

    /// Runs one epoch: migrates the session to `model` via `delta` (pass
    /// `None` for the first epoch — the session already points at the first
    /// snapshot), then re-admits `pairs` sequentially from an empty
    /// background.
    ///
    /// # Errors
    ///
    /// As [`crate::admit_sequentially`]; rejected or unroutable flows are
    /// outcomes, not errors.
    pub fn run_epoch(
        &mut self,
        model: &'m M,
        delta: Option<&TopologyDelta>,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<EpochOutcome, AdmissionError> {
        let reuse = match delta {
            Some(delta) => self.session.apply_delta(model, delta),
            None => DeltaReuse::default(),
        };
        let outcomes =
            admit_sequentially_in_session(&mut self.session, pairs, self.policy, &self.config)?;
        let outcome = EpochOutcome {
            epoch: self.epoch,
            attempted: outcomes.len(),
            admitted: outcomes.iter().filter(|o| o.admitted).count(),
            reuse,
            outcomes,
        };
        self.epoch += 1;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::RoutingMetric;
    use awb_core::AvailableBandwidthOptions;
    use awb_workloads::mobility::{demand_pairs, DemandPattern, WaypointConfig, WaypointMobility};

    fn trace_models(epochs: usize, cfg: WaypointConfig) -> Vec<awb_net::SinrModel> {
        let mut trace = WaypointMobility::new(cfg);
        let mut models = Vec::with_capacity(epochs);
        for e in 0..epochs {
            if e > 0 {
                trace.advance();
            }
            models.push(trace.snapshot());
        }
        models
    }

    /// Epoch-threaded admission must admit exactly what a cold, from-scratch
    /// admission over the same snapshot admits — bandwidth answers included.
    #[test]
    fn epoch_readmission_matches_cold_admission_per_epoch() {
        let cfg = WaypointConfig {
            num_nodes: 14,
            width: 250.0,
            height: 250.0,
            mobile_fraction: 0.15,
            speed_min: 8.0,
            speed_max: 8.0,
            seed: 21,
            ..WaypointConfig::default()
        };
        let models = trace_models(3, cfg);
        let options = AvailableBandwidthOptions {
            decompose: true,
            ..AvailableBandwidthOptions::default()
        };
        let config = AdmissionConfig {
            stop_on_first_failure: false,
            available_options: options,
            ..AdmissionConfig::default()
        };
        let policy = RoutePolicy::Additive(RoutingMetric::HopCount);
        let mut runner = EpochRunner::new(&models[0], policy, config);
        for (e, model) in models.iter().enumerate() {
            let pairs = demand_pairs(model.topology(), DemandPattern::Unidir, 4, 100 + e as u64);
            let delta = if e == 0 {
                None
            } else {
                Some(TopologyDelta::between(&models[e - 1], model))
            };
            let warm = runner.run_epoch(model, delta.as_ref(), &pairs).unwrap();
            let cold =
                crate::admission::admit_sequentially_with_policy(model, &pairs, policy, &config)
                    .unwrap();
            assert_eq!(warm.outcomes.len(), cold.len(), "epoch {e}");
            for (w, c) in warm.outcomes.iter().zip(&cold) {
                assert_eq!(w.admitted, c.admitted, "epoch {e} flow {}", w.index);
                assert_eq!(
                    w.available_mbps.to_bits(),
                    c.available_mbps.to_bits(),
                    "epoch {e} flow {} answers must be bit-identical",
                    w.index
                );
            }
        }
        assert_eq!(runner.epochs_run(), 3);
        let stats = runner.stats();
        assert_eq!(stats.delta_applications, 2);
    }

    /// An anchored trace (empty deltas) must reuse every compiled component.
    #[test]
    fn static_epochs_reuse_everything() {
        let cfg = WaypointConfig {
            num_nodes: 10,
            width: 200.0,
            height: 200.0,
            mobile_fraction: 0.0,
            seed: 5,
            ..WaypointConfig::default()
        };
        let models = trace_models(2, cfg);
        let options = AvailableBandwidthOptions {
            decompose: true,
            ..AvailableBandwidthOptions::default()
        };
        let config = AdmissionConfig {
            stop_on_first_failure: false,
            available_options: options,
            ..AdmissionConfig::default()
        };
        let policy = RoutePolicy::Additive(RoutingMetric::HopCount);
        let mut runner = EpochRunner::new(&models[0], policy, config);
        let pairs = demand_pairs(models[0].topology(), DemandPattern::SinkTree, 3, 9);
        runner.run_epoch(&models[0], None, &pairs).unwrap();
        let delta = TopologyDelta::between(&models[0], &models[1]);
        assert!(delta.is_empty());
        let out = runner.run_epoch(&models[1], Some(&delta), &pairs).unwrap();
        assert_eq!(out.reuse.units_compiled, 0);
        assert_eq!(out.reuse.unit_cache_hits, 0);
        assert_eq!(out.reuse.dirty_links, 0);
    }
}
