//! `awb` — command-line interface to the available-bandwidth toolkit.
//!
//! ```text
//! awb topology  [--nodes 30] [--width 400] [--height 600] [--seed 7] [--json]
//! awb available [--hops 4] [--hop-length 70] [--background 0]
//!               [--solver full|colgen] [--pricing heuristic|exact]
//!               [--stab-alpha A] [--pricing-threads N] [--json]
//! awb admission [--flows 8] [--metric average-e2eD] [--demand 2]
//!               [--seed 7] [--pairs-seed 5] [--json]
//! awb simulate  [--hops 3] [--hop-length 70] [--slots 50000] [--demand sat]
//!               [--contention ordered|p0.5|dcf] [--json]
//! awb mobility  [--nodes 30] [--epochs 6] [--mobile 0.1] [--speed M/S]
//!               [--pattern sink|hot|unidir|bidir] [--flows 6] [--demand 2]
//!               [--seed 7] [--json]
//! awb scenario2 [--json]
//! awb serve     [--addr 127.0.0.1:4810] [--workers N] [--queue N] [--stdio]
//!               [--blocking] [--shards 8] [--max-frame BYTES] [--drain-ms 5000]
//!               [--enum-engine auto|generic|compiled[:N]] [--solver full|colgen]
//!               [--pricing heuristic|exact] [--stab-alpha A] [--pricing-threads N]
//! awb query     [--addr host:port] [--request '<json>'] [--solver full|colgen]
//!               [--pricing heuristic|exact] [--stab-alpha A] [--pricing-threads N]
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "usage: awb <command> [--flag value]...

commands:
  topology    generate the paper's random topology and print nodes/links
  available   available bandwidth of an n-hop chain (Eq. 6), with bottlenecks
  admission   sequential flow admission on the random topology (Fig. 3)
  simulate    run the CSMA/CA simulator on a chain
  mobility    epoch-driven re-admission over a random-waypoint trace
              (incremental recompilation via Session::apply_delta;
              --pattern picks the demand matrix, --mobile the moving
              fraction, --speed pins the waypoint leg speed)
  scenario2   the paper's clique-invalidity counterexample (16.2 Mbps)
  serve       run the admission-control daemon (JSON lines over TCP;
              nonblocking reactor by default — SIGTERM drains and exits 0;
              --blocking for the legacy thread-pool server;
              --stdio for single-shot stdin/stdout mode;
              --shards N instance-cache shards, --max-frame BYTES frame cap;
              --enum-engine auto|generic|compiled[:N] picks the enumerator;
              --solver full|colgen picks the LP strategy;
              --pricing heuristic|exact, --stab-alpha A, and
              --pricing-threads N tune colgen column pricing)
  query       send one request to a server (--addr) or answer it in-process

common flags: --json for machine-readable output, --help for this text";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.has("help") || args.command().is_none() {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match args.command().expect("checked above") {
        "topology" => commands::topology(&args),
        "available" => commands::available(&args),
        "admission" => commands::admission(&args),
        "simulate" => commands::simulate(&args),
        "mobility" => commands::mobility(&args),
        "scenario2" => commands::scenario2(&args),
        "serve" => commands::serve(&args),
        "query" => commands::query(&args),
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
