//! A small dependency-free flag parser: `--name value` pairs plus a leading
//! subcommand.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand and its `--flag value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Error raised while parsing or reading arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` appeared at the end without a value and is not a known
    /// boolean flag.
    MissingValue(String),
    /// A value could not be parsed as the requested type.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// An unexpected free-standing token.
    Unexpected(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgsError::BadValue { flag, value } => {
                write!(f, "cannot parse --{flag} value {value:?}")
            }
            ArgsError::Unexpected(tok) => write!(f, "unexpected argument {tok:?}"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["json", "help", "stdio", "reactor", "blocking"];

impl Args {
    /// Parses a token stream (excluding the program name).
    ///
    /// # Errors
    ///
    /// [`ArgsError`] on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgsError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        if let Some(first) = it.peek() {
            if !first.starts_with("--") {
                out.command = it.next();
            }
        }
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgsError::Unexpected(tok));
            };
            if BOOLEAN_FLAGS.contains(&name) {
                out.flags.push(name.to_string());
                continue;
            }
            match it.next() {
                Some(v) if !v.starts_with("--") => {
                    out.options.insert(name.to_string(), v);
                }
                _ => return Err(ArgsError::MissingValue(name.to_string())),
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Whether a boolean flag was present.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// A string option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// [`ArgsError::BadValue`] when present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgsError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(toks.iter().map(|s| s.to_string()))
    }

    #[test]
    fn command_and_options() {
        let a = parse(&["admission", "--flows", "8", "--metric", "e2eTD", "--json"]).unwrap();
        assert_eq!(a.command(), Some("admission"));
        assert_eq!(a.get_or("flows", 0usize).unwrap(), 8);
        assert_eq!(a.get("metric"), Some("e2eTD"));
        assert!(a.has("json"));
        assert!(!a.has("help"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["topology"]).unwrap();
        assert_eq!(a.get_or("nodes", 30usize).unwrap(), 30);
        assert_eq!(a.get_or("width", 400.0f64).unwrap(), 400.0);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(matches!(
            parse(&["x", "--seed"]),
            Err(ArgsError::MissingValue(f)) if f == "seed"
        ));
        assert!(matches!(
            parse(&["x", "--seed", "--json"]),
            Err(ArgsError::MissingValue(_))
        ));
    }

    #[test]
    fn bad_value_is_an_error() {
        let a = parse(&["x", "--seed", "abc"]).unwrap();
        assert!(matches!(
            a.get_or("seed", 0u64),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn unexpected_positional_is_an_error() {
        assert!(matches!(
            parse(&["cmd", "stray"]),
            Err(ArgsError::Unexpected(_))
        ));
    }

    #[test]
    fn no_command_means_none() {
        let a = parse(&["--json"]).unwrap();
        assert_eq!(a.command(), None);
        assert!(a.has("json"));
    }
}
