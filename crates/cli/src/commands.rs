//! Implementations of the CLI subcommands.

use crate::args::Args;
use awb_core::{available_bandwidth, AvailableBandwidthOptions, Flow};
use awb_net::Path;
use awb_phy::Phy;
use awb_routing::{admit_sequentially, AdmissionConfig, RoutingMetric};
use awb_sim::{Contention, SimConfig, SimEngine, Simulator};
use awb_workloads::{chain_model, connected_pairs, RandomTopology, RandomTopologyConfig};
use serde::Serialize;
use std::error::Error;

type CmdResult = Result<(), Box<dyn Error>>;

fn emit<T: Serialize>(args: &Args, value: &T, text: impl FnOnce()) -> CmdResult {
    if args.has("json") {
        println!("{}", serde_json::to_string_pretty(value)?);
    } else {
        text();
    }
    Ok(())
}

#[derive(Serialize)]
struct TopologyOut {
    nodes: Vec<(f64, f64)>,
    links: Vec<(usize, usize)>,
}

pub fn topology(args: &Args) -> CmdResult {
    let config = RandomTopologyConfig {
        num_nodes: args.get_or("nodes", 30usize)?,
        width: args.get_or("width", 400.0f64)?,
        height: args.get_or("height", 600.0f64)?,
        seed: args.get_or("seed", RandomTopologyConfig::default().seed)?,
    };
    let rt = RandomTopology::generate(config);
    let t = rt.model().topology();
    let out = TopologyOut {
        nodes: t
            .nodes()
            .map(|n| (n.position().x, n.position().y))
            .collect(),
        links: t
            .links()
            .map(|l| (l.tx().index(), l.rx().index()))
            .collect(),
    };
    emit(args, &out, || {
        println!(
            "{} nodes in {} m x {} m (seed {}), {} directed links",
            config.num_nodes,
            config.width,
            config.height,
            config.seed,
            out.links.len()
        );
        for (i, (x, y)) in out.nodes.iter().enumerate() {
            println!("  n{i}: ({x:.1}, {y:.1})");
        }
    })
}

#[derive(Serialize)]
struct AvailableOut {
    hops: usize,
    hop_length_m: f64,
    background_mbps: f64,
    available_mbps: f64,
    airtime_shadow_price: f64,
    bottlenecks: Vec<(usize, f64)>,
    schedule: String,
}

pub fn available(args: &Args) -> CmdResult {
    let hops = args.get_or("hops", 4usize)?;
    let hop_length = args.get_or("hop-length", 70.0f64)?;
    let background_mbps = args.get_or("background", 0.0f64)?;
    let (model, path) = chain_model(hops, hop_length, Phy::paper_default());
    // Background, if requested, loads the first hop.
    let background = if background_mbps > 0.0 {
        let first = Path::new(model.topology(), vec![path.links()[0]])?;
        vec![Flow::new(first, background_mbps)?]
    } else {
        Vec::new()
    };
    let (pricing, stab_alpha, pricing_threads, column_pool_cap) = pricing_args(args)?;
    let options = AvailableBandwidthOptions {
        solver: parse_solver_kind(args.get("solver").unwrap_or("full"))?,
        pricing,
        stab_alpha,
        pricing_threads,
        column_pool_cap,
        ..AvailableBandwidthOptions::default()
    };
    let out = available_bandwidth(&model, &background, &path, &options)?;
    let view = AvailableOut {
        hops,
        hop_length_m: hop_length,
        background_mbps,
        available_mbps: out.bandwidth_mbps(),
        airtime_shadow_price: out.airtime_shadow_price(),
        bottlenecks: out
            .bottleneck_links()
            .into_iter()
            .map(|(l, s)| (l.index(), s))
            .collect(),
        schedule: out.schedule().to_string(),
    };
    emit(args, &view, || {
        println!(
            "{hops}-hop chain at {hop_length} m/hop, {background_mbps} Mbps background on hop 0"
        );
        println!("available bandwidth: {:.3} Mbps", view.available_mbps);
        println!(
            "airtime shadow price: {:.3} Mbps per unit time",
            view.airtime_shadow_price
        );
        if !view.bottlenecks.is_empty() {
            println!("bottleneck links (scarcity):");
            for (l, s) in &view.bottlenecks {
                println!("  L{l}: {s:.3}");
            }
        }
        println!("schedule:\n{}", view.schedule);
    })
}

#[derive(Serialize)]
struct AdmissionRow {
    flow: usize,
    hops: usize,
    available_mbps: f64,
    admitted: bool,
}

pub fn admission(args: &Args) -> CmdResult {
    let metric = match args.get("metric").unwrap_or("average-e2eD") {
        "hop-count" | "hop count" => RoutingMetric::HopCount,
        "e2eTD" => RoutingMetric::E2eTransmissionDelay,
        "average-e2eD" => RoutingMetric::AverageE2eDelay,
        other => return Err(format!("unknown metric {other:?}").into()),
    };
    let rt = RandomTopology::generate(RandomTopologyConfig {
        seed: args.get_or("seed", RandomTopologyConfig::default().seed)?,
        ..RandomTopologyConfig::default()
    });
    let pairs = connected_pairs(
        rt.model(),
        args.get_or("flows", 8usize)?,
        2..=4,
        args.get_or("pairs-seed", 5u64)?,
    );
    let outcomes = admit_sequentially(
        rt.model(),
        &pairs,
        metric,
        &AdmissionConfig {
            demand_mbps: args.get_or("demand", 2.0f64)?,
            stop_on_first_failure: false,
            ..AdmissionConfig::default()
        },
    )?;
    let rows: Vec<AdmissionRow> = outcomes
        .iter()
        .map(|o| AdmissionRow {
            flow: o.index + 1,
            hops: o.path.as_ref().map_or(0, Path::len),
            available_mbps: o.available_mbps,
            admitted: o.admitted,
        })
        .collect();
    emit(args, &rows, || {
        println!("admission under {metric}:");
        for r in &rows {
            println!(
                "  flow {}: {} hops, {:.3} Mbps available — {}",
                r.flow,
                r.hops,
                r.available_mbps,
                if r.admitted { "admitted" } else { "REJECTED" }
            );
        }
        let n = rows.iter().filter(|r| r.admitted).count();
        println!("{n}/{} admitted", rows.len());
    })
}

#[derive(Serialize)]
struct SimulateOut {
    hops: usize,
    slots: u64,
    engine: String,
    seeds: usize,
    /// Mean end-to-end throughput across seeds (the single seed's value
    /// when `--seeds 1`).
    throughput_mbps: f64,
    per_seed_mbps: Vec<f64>,
    /// Collision slots and idle ratios of the first seed's run.
    collision_slots: u64,
    node_idle_ratios: Vec<f64>,
}

pub fn simulate(args: &Args) -> CmdResult {
    let hops = args.get_or("hops", 3usize)?;
    let hop_length = args.get_or("hop-length", 70.0f64)?;
    let slots = args.get_or("slots", 50_000u64)?;
    let engine = match args.get("sim-engine").unwrap_or("compiled") {
        "compiled" => SimEngine::Compiled,
        "generic" => SimEngine::Generic,
        other => {
            return Err(
                format!("unknown --sim-engine {other:?} (expected compiled or generic)").into(),
            )
        }
    };
    let base_seed = args.get_or("seed", SimConfig::default().seed)?;
    let num_seeds = args.get_or("seeds", 1usize)?.max(1);
    let sim_threads = args.get_or("sim-threads", 1usize)?;
    let contention = match args.get("contention").unwrap_or("ordered") {
        "ordered" => Contention::OrderedCsma,
        "dcf" => Contention::Dcf {
            cw_min: 16,
            cw_max: 1024,
        },
        other => match other.strip_prefix('p').and_then(|p| p.parse::<f64>().ok()) {
            Some(p) if (0.0..=1.0).contains(&p) => Contention::PPersistent(p),
            _ => return Err(format!("unknown contention {other:?}").into()),
        },
    };
    let demand = match args.get("demand") {
        None | Some("sat") => None,
        Some(v) => Some(v.parse::<f64>().map_err(|_| format!("bad demand {v:?}"))?),
    };
    let (model, path) = chain_model(hops, hop_length, Phy::paper_default());
    // One job per seed, fanned out deterministically: results are merged in
    // seed order, so the report is identical for any --sim-threads.
    let reports = awb_sim::campaign::fan_out(num_seeds, sim_threads, |i| {
        let mut sim = Simulator::new(
            &model,
            SimConfig {
                slots,
                contention,
                engine,
                seed: base_seed + i as u64,
                ..SimConfig::default()
            },
        );
        let f = sim.add_flow(path.clone(), demand);
        let report = sim.run(&model);
        (report.flow_throughput_mbps[f], report)
    });
    let per_seed_mbps: Vec<f64> = reports.iter().map(|(t, _)| *t).collect();
    let first = &reports[0].1;
    let out = SimulateOut {
        hops,
        slots,
        engine: format!("{engine:?}").to_lowercase(),
        seeds: num_seeds,
        throughput_mbps: per_seed_mbps.iter().sum::<f64>() / per_seed_mbps.len() as f64,
        per_seed_mbps,
        collision_slots: first.link_collision_slots.iter().sum(),
        node_idle_ratios: first.node_idle_ratio.clone(),
    };
    emit(args, &out, || {
        println!(
            "{hops}-hop chain, {slots} slots, contention {:?}, {} engine, {} seed(s)",
            contention, out.engine, out.seeds
        );
        println!("end-to-end throughput: {:.3} Mbps", out.throughput_mbps);
        if out.seeds > 1 {
            println!(
                "per-seed: {}",
                out.per_seed_mbps
                    .iter()
                    .map(|t| format!("{t:.3}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        println!("collision slots: {}", out.collision_slots);
        println!(
            "node idle ratios: {}",
            out.node_idle_ratios
                .iter()
                .map(|r| format!("{r:.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    })
}

#[derive(Serialize)]
struct Scenario2Out {
    optimal_mbps: f64,
    all54_bound_mbps: f64,
    l1_36_bound_mbps: f64,
    schedule: String,
}

/// Parses `--enum-engine`: `auto`, `generic`, or `compiled[:threads]`
/// (`compiled` alone means one worker per core).
fn parse_engine_kind(s: &str) -> Result<awb_sets::EngineKind, Box<dyn Error>> {
    use awb_sets::EngineKind;
    match s {
        "auto" => Ok(EngineKind::Auto),
        "generic" => Ok(EngineKind::Generic),
        "compiled" => Ok(EngineKind::Compiled(0)),
        other => {
            if let Some(threads) = other.strip_prefix("compiled:") {
                let threads: usize = threads
                    .parse()
                    .map_err(|_| format!("cannot parse --enum-engine value {other:?}"))?;
                Ok(EngineKind::Compiled(threads))
            } else {
                Err(format!(
                    "unknown --enum-engine {other:?} (expected auto, generic, or compiled[:N])"
                )
                .into())
            }
        }
    }
}

/// Parses `--solver`: `full` (enumerate every independent set, the
/// default) or `colgen` (column generation — price sets in on demand).
/// Both certify the same optimum; the choice is a pure performance knob.
fn parse_solver_kind(s: &str) -> Result<awb_core::SolverKind, Box<dyn Error>> {
    use awb_core::SolverKind;
    match s {
        "full" | "enumerate" => Ok(SolverKind::FullEnumeration),
        "colgen" | "column-generation" => Ok(SolverKind::ColumnGeneration),
        other => Err(format!("unknown --solver {other:?} (expected full or colgen)").into()),
    }
}

/// Parses `--pricing`: `heuristic` (greedy-plus-local-search first, exact
/// branch-and-bound only as the fallback and final certificate — the
/// default) or `exact` (exact oracle on every pricing round). Both certify
/// the same optimum; the choice is a pure performance knob.
fn parse_pricing_mode(s: &str) -> Result<awb_core::PricingMode, Box<dyn Error>> {
    use awb_core::PricingMode;
    match s {
        "heuristic" | "heuristic-first" => Ok(PricingMode::HeuristicFirst),
        "exact" | "exact-only" => Ok(PricingMode::ExactOnly),
        other => Err(format!("unknown --pricing {other:?} (expected heuristic or exact)").into()),
    }
}

/// Reads the colgen pricing knobs shared by `available`, `serve`, and
/// `query`: `--pricing heuristic|exact`, `--stab-alpha A` (dual smoothing,
/// 1.0 disables), `--pricing-threads N` (0 = all cores), `--pool-cap N`
/// (per-component stage-B column cap, 0 = unbounded).
fn pricing_args(args: &Args) -> Result<(awb_core::PricingMode, f64, usize, usize), Box<dyn Error>> {
    let defaults = AvailableBandwidthOptions::default();
    Ok((
        parse_pricing_mode(args.get("pricing").unwrap_or("heuristic"))?,
        args.get_or("stab-alpha", defaults.stab_alpha)?,
        args.get_or("pricing-threads", defaults.pricing_threads)?,
        args.get_or("pool-cap", defaults.column_pool_cap)?,
    ))
}

/// `awb serve` — run the admission-control daemon ([`awb_service`]).
///
/// With `--stdio`, serves newline-delimited JSON requests from stdin to
/// stdout and exits at EOF (single-shot mode). Otherwise binds a TCP
/// listener (default `127.0.0.1:4810`; `--addr host:0` picks a free port).
/// The default server is the nonblocking reactor (epoll event loop plus a
/// worker pool): it installs a SIGTERM/SIGINT handler, drains in-flight
/// and queued requests within `--drain-ms`, and exits 0. `--blocking`
/// selects the legacy thread-per-connection-style server instead (kept
/// for differential testing; it serves until killed).
/// `--enum-engine auto|generic|compiled[:N]` selects the set-enumeration
/// engine and `--solver full|colgen` the LP strategy (both pure
/// performance knobs; results are identical); `--shards N` splits the
/// compiled-instance cache and `--max-frame BYTES` caps request frames.
pub fn serve(args: &Args) -> CmdResult {
    use awb_service::{Engine, EngineConfig, ReactorServerConfig, ServerConfig};
    let (pricing, stab_alpha, pricing_threads, column_pool_cap) = pricing_args(args)?;
    let engine_config = EngineConfig {
        enumeration_engine: parse_engine_kind(args.get("enum-engine").unwrap_or("auto"))?,
        solver: parse_solver_kind(args.get("solver").unwrap_or("full"))?,
        shards: args.get_or("shards", 8usize)?.max(1),
        pricing,
        stab_alpha,
        pricing_threads,
        column_pool_cap,
        ..EngineConfig::default()
    };
    if args.has("stdio") {
        let engine = Engine::new(engine_config);
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout();
        let served = awb_service::serve_stdio(&engine, stdin.lock(), &mut stdout)?;
        eprintln!(
            "awb-service stdio: served {served} request(s); {}",
            engine.metrics.summary()
        );
        return Ok(());
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:4810").to_string();
    let max_frame_len = args.get_or("max-frame", 1usize << 20)?.max(1);
    if args.has("blocking") {
        let config = ServerConfig {
            addr,
            workers: args.get_or("workers", 4usize)?.max(1),
            queue_capacity: args.get_or("queue", 64usize)?.max(1),
            max_frame_len,
            engine: engine_config,
        };
        let server = awb_service::serve(config)?;
        eprintln!(
            "awb-service (blocking) listening on {}",
            server.local_addr()
        );
        server.join();
        return Ok(());
    }
    let defaults = ReactorServerConfig::default();
    let config = ReactorServerConfig {
        addr,
        workers: args.get_or("workers", defaults.workers)?.max(1),
        queue_capacity: args.get_or("queue", defaults.queue_capacity)?.max(1),
        max_frame_len,
        drain_deadline: std::time::Duration::from_millis(args.get_or("drain-ms", 5000u64)?),
        install_signal_handler: true,
        engine: engine_config,
        ..defaults
    };
    let server = awb_service::serve_reactor(config)?;
    eprintln!("awb-service (reactor) listening on {}", server.local_addr());
    // Returns once a SIGTERM/SIGINT-triggered drain completes.
    let engine = std::sync::Arc::clone(server.engine());
    server.join()?;
    eprintln!("awb-service drained: {}", engine.metrics.summary());
    Ok(())
}

/// `awb query` — send one protocol request line and print the response.
///
/// The request comes from `--request '<json>'` or, failing that, one line
/// of stdin. With `--addr` the request goes to a running server; without
/// it the answer is computed in-process (handy for scripting without a
/// daemon).
pub fn query(args: &Args) -> CmdResult {
    let request = match args.get("request") {
        Some(r) => r.to_string(),
        None => {
            let mut line = String::new();
            std::io::stdin().read_line(&mut line)?;
            line.trim().to_string()
        }
    };
    if request.is_empty() {
        return Err("no request given (use --request or pipe a JSON line)".into());
    }
    let response = match args.get("addr") {
        Some(addr) => awb_service::server::query_once(addr, &request)?,
        None => {
            use awb_service::{Engine, EngineConfig};
            let (pricing, stab_alpha, pricing_threads, column_pool_cap) = pricing_args(args)?;
            let engine = Engine::new(EngineConfig {
                solver: parse_solver_kind(args.get("solver").unwrap_or("full"))?,
                pricing,
                stab_alpha,
                pricing_threads,
                column_pool_cap,
                ..EngineConfig::default()
            });
            awb_service::server::handle_line(&engine, &request)
        }
    };
    println!("{response}");
    Ok(())
}

pub fn scenario2(args: &Args) -> CmdResult {
    use awb_workloads::ScenarioTwo;
    let s = ScenarioTwo::new();
    let out = available_bandwidth(
        s.model(),
        &[],
        &s.path(),
        &AvailableBandwidthOptions::default(),
    )?;
    let view = Scenario2Out {
        optimal_mbps: out.bandwidth_mbps(),
        all54_bound_mbps: ScenarioTwo::ALL_54_CLIQUE_BOUND_MBPS,
        l1_36_bound_mbps: ScenarioTwo::L1_36_CLIQUE_BOUND_MBPS,
        schedule: out.schedule().to_string(),
    };
    emit(args, &view, || {
        println!(
            "optimal end-to-end throughput: {:.3} Mbps (fixed-rate clique bounds: {:.3}, {:.3})",
            view.optimal_mbps, view.all54_bound_mbps, view.l1_36_bound_mbps
        );
        println!("schedule:\n{}", view.schedule);
    })
}

#[derive(Serialize)]
struct MobilityEpochOut {
    epoch: usize,
    links: usize,
    attempted: usize,
    admitted: usize,
    dirty_links: usize,
    units_reused: usize,
    unit_cache_hits: usize,
    units_compiled: usize,
}

#[derive(Serialize)]
struct MobilityOut {
    nodes: usize,
    mobile_nodes: usize,
    pattern: String,
    epochs: Vec<MobilityEpochOut>,
    compiles: usize,
    warm_queries: usize,
    delta_applications: usize,
}

/// `awb mobility` — epoch-driven re-admission over a random-waypoint trace:
/// one compiled-query session is migrated across epochs by
/// `Session::apply_delta`, recompiling only the conflict components each
/// epoch's movers touched.
pub fn mobility(args: &Args) -> CmdResult {
    use awb_core::SolverKind;
    use awb_net::TopologyDelta;
    use awb_routing::{EpochRunner, RoutePolicy};
    use awb_workloads::mobility::{demand_pairs, DemandPattern, WaypointConfig, WaypointMobility};

    let pattern_name = args.get("pattern").unwrap_or("sink");
    let pattern = match pattern_name {
        "sink" => DemandPattern::SinkTree,
        "hot" => DemandPattern::HotDest,
        "unidir" => DemandPattern::Unidir,
        "bidir" => DemandPattern::Bidir,
        other => {
            return Err(format!(
                "unknown --pattern {other:?} (expected sink, hot, unidir, or bidir)"
            )
            .into())
        }
    };
    let default = WaypointConfig::default();
    let speed = args.get_or("speed", 0.0f64)?;
    let config = WaypointConfig {
        width: args.get_or("width", default.width)?,
        height: args.get_or("height", default.height)?,
        num_nodes: args.get_or("nodes", default.num_nodes)?,
        mobile_fraction: args.get_or("mobile", default.mobile_fraction)?,
        speed_min: if speed > 0.0 {
            speed
        } else {
            default.speed_min
        },
        speed_max: if speed > 0.0 {
            speed
        } else {
            default.speed_max
        },
        epoch_seconds: args.get_or("epoch-seconds", default.epoch_seconds)?,
        seed: args.get_or("seed", default.seed)?,
    };
    let epochs = args.get_or("epochs", 6usize)?;
    let flows = args.get_or("flows", 6usize)?;
    let mut trace = WaypointMobility::new(config);
    let mobile_nodes = trace.mobile_nodes().len();
    let mut models = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        if epoch > 0 {
            trace.advance();
        }
        models.push(trace.snapshot());
    }
    let deltas: Vec<TopologyDelta> = models
        .windows(2)
        .map(|w| TopologyDelta::between(&w[0], &w[1]))
        .collect();
    let admission = AdmissionConfig {
        demand_mbps: args.get_or("demand", 2.0f64)?,
        stop_on_first_failure: false,
        available_options: AvailableBandwidthOptions {
            solver: SolverKind::ColumnGeneration,
            decompose: true,
            ..AvailableBandwidthOptions::default()
        },
    };
    let policy = RoutePolicy::Additive(RoutingMetric::AverageE2eDelay);
    let mut runner = EpochRunner::new(&models[0], policy, admission);
    let mut rows = Vec::with_capacity(epochs);
    for (epoch, model) in models.iter().enumerate() {
        let pairs = demand_pairs(model.topology(), pattern, flows, config.seed ^ epoch as u64);
        let delta = (epoch > 0).then(|| &deltas[epoch - 1]);
        let outcome = runner.run_epoch(model, delta, &pairs)?;
        rows.push(MobilityEpochOut {
            epoch,
            links: model.topology().num_links(),
            attempted: outcome.attempted,
            admitted: outcome.admitted,
            dirty_links: outcome.reuse.dirty_links,
            units_reused: outcome.reuse.units_reused,
            unit_cache_hits: outcome.reuse.unit_cache_hits,
            units_compiled: outcome.reuse.units_compiled,
        });
    }
    let stats = runner.stats();
    let out = MobilityOut {
        nodes: config.num_nodes,
        mobile_nodes,
        pattern: pattern_name.to_string(),
        epochs: rows,
        compiles: stats.compiles,
        warm_queries: stats.warm_queries,
        delta_applications: stats.delta_applications,
    };
    emit(args, &out, || {
        println!(
            "{} nodes ({} mobile), {} demand, {} epochs:",
            out.nodes,
            out.mobile_nodes,
            out.pattern,
            out.epochs.len()
        );
        for e in &out.epochs {
            println!(
                "  epoch {}: {:>3} links, admitted {}/{}, delta dirtied {} links \
                 (reused {} + {} cached, compiled {} units)",
                e.epoch,
                e.links,
                e.admitted,
                e.attempted,
                e.dirty_links,
                e.units_reused,
                e.unit_cache_hits,
                e.units_compiled,
            );
        }
        println!(
            "session: {} compiles, {} warm queries, {} delta applications",
            out.compiles, out.warm_queries, out.delta_applications
        );
    })
}
