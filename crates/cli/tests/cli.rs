//! End-to-end tests of the `awb` binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_awb"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_and_no_command_print_usage() {
    let (ok, stdout, _) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("usage: awb"));
    let (ok, stdout, _) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("commands:"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn scenario2_prints_the_headline_number() {
    let (ok, stdout, _) = run(&["scenario2"]);
    assert!(ok);
    assert!(stdout.contains("16.200 Mbps"));
    assert!(stdout.contains("13.500"));
}

#[test]
fn scenario2_json_is_parseable() {
    let (ok, stdout, _) = run(&["scenario2", "--json"]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    let f = v["optimal_mbps"].as_f64().expect("field present");
    assert!((f - 16.2).abs() < 1e-6);
}

#[test]
fn available_reports_chain_capacity() {
    let (ok, stdout, _) = run(&["available", "--hops", "2", "--hop-length", "50"]);
    assert!(ok, "{stdout}");
    // Two 54 Mbps hops sharing the channel: 27 Mbps.
    assert!(
        stdout.contains("available bandwidth: 27.000 Mbps"),
        "{stdout}"
    );
}

#[test]
fn topology_json_has_requested_node_count() {
    let (ok, stdout, _) = run(&["topology", "--nodes", "12", "--json"]);
    assert!(ok);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(v["nodes"].as_array().expect("nodes array").len(), 12);
}

#[test]
fn admission_runs_each_metric() {
    for metric in ["hop-count", "e2eTD", "average-e2eD"] {
        let (ok, stdout, stderr) = run(&["admission", "--flows", "4", "--metric", metric]);
        assert!(ok, "{metric}: {stderr}");
        assert!(stdout.contains("admitted"), "{metric}: {stdout}");
    }
    let (ok, _, stderr) = run(&["admission", "--metric", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown metric"));
}

#[test]
fn simulate_reports_throughput() {
    let (ok, stdout, _) = run(&[
        "simulate",
        "--hops",
        "1",
        "--hop-length",
        "50",
        "--slots",
        "4000",
    ]);
    assert!(ok);
    assert!(stdout.contains("end-to-end throughput"), "{stdout}");
    // Contention variants parse.
    for c in ["ordered", "p0.5", "dcf"] {
        let (ok, _, stderr) = run(&[
            "simulate",
            "--hops",
            "1",
            "--hop-length",
            "50",
            "--slots",
            "1000",
            "--contention",
            c,
        ]);
        assert!(ok, "{c}: {stderr}");
    }
    let (ok, _, stderr) = run(&[
        "simulate",
        "--hops",
        "1",
        "--hop-length",
        "50",
        "--contention",
        "p1.5",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown contention"));
}

#[test]
fn bad_flag_values_fail_cleanly() {
    let (ok, _, stderr) = run(&["topology", "--nodes", "many"]);
    assert!(!ok);
    assert!(stderr.contains("cannot parse"));
    let (ok, _, stderr) = run(&["topology", "--nodes"]);
    assert!(!ok);
    assert!(stderr.contains("needs a value"));
}
