//! The compiled-engine contract: [`SimEngine::Compiled`] reproduces
//! [`SimEngine::Generic`] **bit for bit** — same RNG consumption order, same
//! float operation order, `assert_eq!` on the whole [`SimReport`] — across
//! random declarative and SINR models, all three contention modes, and mixed
//! saturated/rate-limited traffic. Plus: the campaign fan-out is
//! bit-identical to the sequential loop for any thread count.

use awb_net::{DeclarativeModel, LinkId, LinkRateModel, Path, Topology};
use awb_phy::{Phy, Rate};
use awb_sim::{campaign, Contention, SimConfig, SimEngine, Simulator};
use awb_workloads::{chain_model, RandomTopology, RandomTopologyConfig};
use proptest::prelude::*;

fn contention() -> impl Strategy<Value = Contention> {
    prop_oneof![
        Just(Contention::OrderedCsma),
        (0.05f64..=0.95).prop_map(Contention::PPersistent),
        (1u32..=4, 0u32..=4).prop_map(|(min_exp, extra)| Contention::Dcf {
            cw_min: 1 << min_exp,
            cw_max: 1 << (min_exp + extra),
        }),
    ]
}

/// Runs the same configured simulation under both engines and demands exact
/// report equality.
fn assert_engines_agree<M: awb_net::LinkRateModel>(
    model: &M,
    flows: &[(Path, Option<f64>)],
    contention: Contention,
    seed: u64,
    slots: u64,
) {
    let run = |engine| {
        let mut sim = Simulator::new(
            model,
            SimConfig {
                slots,
                seed,
                contention,
                engine,
                ..SimConfig::default()
            },
        );
        for (path, demand) in flows {
            sim.add_flow(path.clone(), *demand);
        }
        sim.run(model)
    };
    let generic = run(SimEngine::Generic);
    let compiled = run(SimEngine::Compiled);
    assert_eq!(generic, compiled, "{contention:?} seed {seed}");
}

/// A random declarative chain: per-link rates, conflicts within a window,
/// hearing within a (possibly different) window — the pairwise kernel path.
#[derive(Debug, Clone)]
struct DeclarativeInstance {
    rates: Vec<f64>,
    conflict_spread: usize,
    hear_spread: usize,
    demands: Vec<Option<f64>>,
}

fn declarative_instance() -> impl Strategy<Value = DeclarativeInstance> {
    (2usize..=6).prop_flat_map(|n| {
        (
            proptest::collection::vec(
                prop_oneof![Just(54.0), Just(36.0), Just(18.0), Just(6.0)],
                n,
            ),
            0usize..=2,
            0usize..=2,
            proptest::collection::vec(
                prop_oneof![Just(None), (1.0f64..=30.0).prop_map(Some)],
                1..=3,
            ),
        )
            .prop_map(|(rates, conflict_spread, hear_spread, demands)| {
                DeclarativeInstance {
                    rates,
                    conflict_spread,
                    hear_spread,
                    demands,
                }
            })
    })
}

fn build_declarative(inst: &DeclarativeInstance) -> (DeclarativeModel, Vec<(Path, Option<f64>)>) {
    let n = inst.rates.len();
    let mut t = Topology::new();
    let nodes: Vec<_> = (0..=n).map(|i| t.add_node(i as f64 * 10.0, 0.0)).collect();
    let links: Vec<LinkId> = nodes
        .windows(2)
        .map(|w| t.add_link(w[0], w[1]).expect("fresh nodes"))
        .collect();
    let mut b = DeclarativeModel::builder(t);
    for (i, &l) in links.iter().enumerate() {
        b = b.alone_rates(l, &[Rate::from_mbps(inst.rates[i])]);
    }
    for i in 0..n {
        for j in (i + 1)..n.min(i + inst.conflict_spread + 1) {
            b = b.conflict_all(links[i], links[j]);
        }
        // Each link is heard by the endpoints of links within the hearing
        // window (always by its own transmitter).
        for j in i.saturating_sub(inst.hear_spread)..n.min(i + inst.hear_spread + 1) {
            b = b.hears(nodes[j], links[i]);
            b = b.hears(nodes[j + 1], links[i]);
        }
    }
    let model = b.build();
    let t = model.topology();
    // One flow along the whole chain, plus per-demand single-hop flows
    // spread over the links.
    let mut flows = vec![(
        Path::new(t, links.clone()).expect("chain is contiguous"),
        inst.demands[0],
    )];
    for (k, d) in inst.demands.iter().enumerate().skip(1) {
        let l = links[k % n];
        flows.push((Path::new(t, vec![l]).expect("single link"), *d));
    }
    (model, flows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_matches_generic_on_declarative_models(
        inst in declarative_instance(),
        contention in contention(),
        seed in 0u64..1_000,
    ) {
        let (model, flows) = build_declarative(&inst);
        assert_engines_agree(&model, &flows, contention, seed, 400);
    }

    #[test]
    fn compiled_matches_generic_on_sinr_chains(
        hops in 1usize..=5,
        hop_length in 40.0f64..=90.0,
        demand in prop_oneof![Just(None), (1.0f64..=40.0).prop_map(Some)],
        contention in contention(),
        seed in 0u64..1_000,
    ) {
        let (model, path) = chain_model(hops, hop_length, Phy::paper_default());
        let flows = vec![(path.clone(), demand), (path, None)];
        assert_engines_agree(&model, &flows, contention, seed, 400);
    }

    #[test]
    fn compiled_matches_generic_on_random_sinr_fields(
        num_nodes in 8usize..=16,
        side in 150.0f64..=400.0,
        topo_seed in 0u64..1_000,
        contention in contention(),
        seed in 0u64..1_000,
    ) {
        let topo = RandomTopology::generate_with_phy(
            RandomTopologyConfig {
                width: side,
                height: side,
                num_nodes,
                seed: topo_seed,
            },
            Phy::paper_default(),
        );
        let model = topo.into_model();
        let t = model.topology();
        // Saturated single-hop flows on the first few live links: enough
        // concurrency to exercise carrier sense and capture.
        let flows: Vec<(Path, Option<f64>)> = t
            .links()
            .map(|l| l.id())
            .filter(|&l| model.max_alone_rate(l).is_some())
            .take(4)
            .enumerate()
            .map(|(i, l)| {
                let demand = if i % 2 == 0 { None } else { Some(8.0 + i as f64) };
                (Path::new(t, vec![l]).expect("single link"), demand)
            })
            .collect();
        assert_engines_agree(&model, &flows, contention, seed, 400);
    }

    #[test]
    fn fan_out_is_bit_identical_for_any_thread_count(
        num_jobs in 0usize..=9,
        threads in 0usize..=8,
        contention in contention(),
    ) {
        let (model, path) = chain_model(2, 60.0, Phy::paper_default());
        let job = |i: usize| {
            let mut sim = Simulator::new(
                &model,
                SimConfig {
                    slots: 300,
                    seed: i as u64,
                    contention,
                    ..SimConfig::default()
                },
            );
            sim.add_flow(path.clone(), None);
            sim.run(&model)
        };
        let sequential = campaign::fan_out(num_jobs, 1, job);
        let parallel = campaign::fan_out(num_jobs, threads, job);
        prop_assert_eq!(sequential, parallel);
    }
}
