//! Reproducibility: a simulation is a pure function of (model, config).

use awb_phy::Phy;
use awb_sim::{Contention, SimConfig, Simulator};
use awb_workloads::chain_model;

fn run(seed: u64, contention: Contention) -> awb_sim::SimReport {
    let (model, path) = chain_model(3, 70.0, Phy::paper_default());
    let mut sim = Simulator::new(
        &model,
        SimConfig {
            slots: 5_000,
            seed,
            contention,
            ..SimConfig::default()
        },
    );
    sim.add_flow(path.clone(), Some(4.0));
    sim.add_flow(path, None);
    sim.run(&model)
}

#[test]
fn same_seed_same_report() {
    for contention in [
        Contention::OrderedCsma,
        Contention::PPersistent(0.4),
        Contention::Dcf {
            cw_min: 8,
            cw_max: 64,
        },
    ] {
        let a = run(7, contention);
        let b = run(7, contention);
        assert_eq!(a, b, "{contention:?} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(1, Contention::OrderedCsma);
    let b = run(2, Contention::OrderedCsma);
    assert_ne!(a, b);
    // But aggregate throughput stays in the same ballpark.
    let ta: f64 = a.flow_throughput_mbps.iter().sum();
    let tb: f64 = b.flow_throughput_mbps.iter().sum();
    assert!((ta - tb).abs() < 0.25 * ta.max(tb));
}

#[test]
fn report_accessors_are_consistent() {
    let r = run(3, Contention::OrderedCsma);
    assert_eq!(r.slots, 5_000);
    assert!((r.duration_seconds() - 5.0).abs() < 1e-9);
    for idle in &r.node_idle_ratio {
        assert!((0.0..=1.0).contains(idle));
    }
    for li in 0..r.link_tx_slots.len() {
        assert!(r.link_collision_slots[li] <= r.link_tx_slots[li]);
        let _ = r.collision_ratio(awb_net::LinkId::from_index(li));
    }
}
