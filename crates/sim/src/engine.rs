//! The slotted CSMA/CA engine.

use crate::report::SimReport;
use awb_net::{LinkId, LinkRateModel, Path};
use awb_phy::Rate;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How a transmitting link picks its rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RatePolicy {
    /// The maximum rate the link supports alone — aggressive, collides when
    /// concurrent interference is high (802.11-style fixed selection by
    /// receiver sensitivity).
    #[default]
    AloneMax,
    /// The lowest rate of the link's table — robust, slow.
    Lowest,
}

/// How backlogged links contend for the channel each slot.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Contention {
    /// Idealized CSMA: contenders are visited in random order and a link
    /// transmits iff its transmitter hears no already-granted link —
    /// collision-free among mutual hearers, like a perfect backoff.
    #[default]
    OrderedCsma,
    /// p-persistent slotted CSMA: every backlogged link whose transmitter
    /// sensed the channel idle in the *previous* slot transmits with the
    /// given probability. Mutual hearers can fire together and collide —
    /// the classic contention-loss regime.
    PPersistent(f64),
    /// 802.11 DCF-style binary exponential backoff: each backlogged link
    /// draws a backoff uniform in `[0, cw)`, decrements it in slots whose
    /// previous slot its transmitter sensed idle, and transmits at zero.
    /// Successes reset `cw` to `cw_min`; collisions double it up to
    /// `cw_max`.
    Dcf {
        /// Minimum contention window (802.11a uses 16).
        cw_min: u32,
        /// Maximum contention window (802.11a uses 1024).
        cw_max: u32,
    },
}

/// Which per-slot implementation [`Simulator::run`] executes.
///
/// Both engines simulate the **same** slot process and consume the RNG in
/// the same order, so their reports are bit-for-bit identical (this is
/// property-tested); the choice is a pure performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimEngine {
    /// The reference implementation: per-slot scans that call the model's
    /// `node_hears`/`victim_max_rate` for every contender.
    Generic,
    /// Compiled slot kernels (§5j): hearing, interference and conflict
    /// relations precompiled into word-packed `u64` masks, per-slot checks
    /// reduced to AND/OR/popcount over a reused scratch arena — no per-slot
    /// allocation.
    #[default]
    Compiled,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// Slot duration in seconds (default 1 ms; with Mbps rates, a 54 Mbps
    /// link moves 0.054 Mbit per slot).
    pub slot_seconds: f64,
    /// Rate-selection policy.
    pub rate_policy: RatePolicy,
    /// Contention resolution model.
    pub contention: Contention,
    /// RNG seed for contention order and arrival phases.
    pub seed: u64,
    /// Per-slot implementation (bit-identical results either way).
    pub engine: SimEngine,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            slots: 50_000,
            slot_seconds: 1e-3,
            rate_policy: RatePolicy::AloneMax,
            contention: Contention::OrderedCsma,
            seed: 1,
            engine: SimEngine::Compiled,
        }
    }
}

pub(crate) struct SimFlow {
    pub(crate) hops: Vec<LinkId>,
    /// Probability of a full-slot packet arriving each slot; `None` =
    /// saturated source.
    pub(crate) arrival_probability: Option<f64>,
    /// Mbit queued at each hop.
    pub(crate) queues: Vec<f64>,
    /// Mbit delivered end-to-end.
    pub(crate) delivered_mbit: f64,
}

/// A configured simulation: add flows, then [`run`](Simulator::run).
///
/// See the [crate-level documentation](crate) for the slot model.
#[derive(Debug)]
pub struct Simulator {
    pub(crate) config: SimConfig,
    /// Per-link chosen transmission rate (Mbps), `None` for dead links.
    pub(crate) link_rate: Vec<Option<Rate>>,
    pub(crate) flows: Vec<FlowSpec>,
}

#[derive(Debug, Clone)]
pub(crate) struct FlowSpec {
    path: Path,
    demand_mbps: Option<f64>,
}

impl Simulator {
    /// Creates a simulator over `model`'s links.
    pub fn new<M: LinkRateModel>(model: &M, config: SimConfig) -> Simulator {
        assert!(config.slots > 0, "simulate at least one slot");
        assert!(
            config.slot_seconds > 0.0 && config.slot_seconds.is_finite(),
            "slot duration must be positive"
        );
        let link_rate = model
            .topology()
            .links()
            .map(|l| {
                let rates = model.alone_rates(l.id());
                match config.rate_policy {
                    RatePolicy::AloneMax => rates.first().copied(),
                    RatePolicy::Lowest => rates.last().copied(),
                }
            })
            .collect();
        Simulator {
            config,
            link_rate,
            flows: Vec::new(),
        }
    }

    /// Adds a flow along `path` with the given demand in Mbps (`None` =
    /// saturated source). Returns the flow's index in the report.
    pub fn add_flow(&mut self, path: Path, demand_mbps: Option<f64>) -> usize {
        assert!(
            demand_mbps.is_none_or(|d| d.is_finite() && d >= 0.0),
            "demand must be finite and non-negative"
        );
        self.flows.push(FlowSpec { path, demand_mbps });
        self.flows.len() - 1
    }

    /// Runs the simulation and returns the measurements.
    ///
    /// `model` must be the same model the simulator was built over.
    pub fn run<M: LinkRateModel>(&self, model: &M) -> SimReport {
        match self.config.engine {
            SimEngine::Generic => self.run_generic(model),
            SimEngine::Compiled => crate::kernel::run_compiled(self, model),
        }
    }

    /// Builds the per-flow runtime state shared by both engines.
    pub(crate) fn sim_flows(&self) -> Vec<SimFlow> {
        self.flows
            .iter()
            .map(|f| {
                // A rate-limited source emits full-slot packets as a
                // Bernoulli process with mean rate = demand: random phases
                // across flows, so independent flows overlap only by
                // chance (the Scenario I phenomenon).
                let first_rate = self.link_rate[f.path.links()[0].index()];
                let arrival_probability = f.demand_mbps.map(|d| match first_rate {
                    Some(r) => (d / r.as_mbps()).min(1.0),
                    None => 0.0,
                });
                SimFlow {
                    hops: f.path.links().to_vec(),
                    arrival_probability,
                    queues: vec![0.0; f.path.len()],
                    delivered_mbit: 0.0,
                }
            })
            .collect()
    }

    /// Which flow+hop feeds each link (multiple flows may share a link;
    /// they are drained in arrival order).
    pub(crate) fn feeders(flows: &[SimFlow], num_links: usize) -> Vec<Vec<(usize, usize)>> {
        let mut feeders: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_links];
        for (fi, f) in flows.iter().enumerate() {
            for (hi, &l) in f.hops.iter().enumerate() {
                feeders[l.index()].push((fi, hi));
            }
        }
        feeders
    }

    /// Validated DCF window bounds; `(1, 1)` for the other contention
    /// modes (whose backoff state is never consulted).
    pub(crate) fn cw_bounds(&self) -> (u32, u32) {
        match self.config.contention {
            Contention::Dcf { cw_min, cw_max } => {
                assert!(
                    cw_min >= 1 && cw_max >= cw_min,
                    "need 1 <= cw_min <= cw_max"
                );
                (cw_min, cw_max)
            }
            _ => (1, 1),
        }
    }

    /// The reference per-slot implementation ([`SimEngine::Generic`]).
    fn run_generic<M: LinkRateModel>(&self, model: &M) -> SimReport {
        let t = model.topology();
        let num_links = t.num_links();
        let num_nodes = t.num_nodes();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);

        let mut flows = self.sim_flows();
        let feeders = Simulator::feeders(&flows, num_links);

        // Precompute hearing: for each link, the nodes that hear it.
        let hearers: Vec<Vec<usize>> = t
            .links()
            .map(|l| {
                t.nodes()
                    .filter(|n| model.node_hears(n.id(), l.id()))
                    .map(|n| n.id().index())
                    .collect()
            })
            .collect();

        let mut node_busy_slots = vec![0u64; num_nodes];
        let mut link_delivered_mbit = vec![0.0f64; num_links];
        let mut link_tx_slots = vec![0u64; num_links];
        let mut link_collision_slots = vec![0u64; num_links];

        let mut busy_last_slot = vec![false; num_nodes];
        // DCF state: current contention window and pending backoff counter.
        let (cw_min, cw_max) = self.cw_bounds();
        let mut cw = vec![cw_min; num_links];
        let mut backoff: Vec<Option<u32>> = vec![None; num_links];
        for _ in 0..self.config.slots {
            // Arrivals.
            for f in &mut flows {
                let Some(r) = self.link_rate[f.hops[0].index()] else {
                    continue;
                };
                let need = r.as_mbps() * self.config.slot_seconds;
                match f.arrival_probability {
                    Some(p) => {
                        if rng.gen_bool(p) {
                            f.queues[0] += need;
                        }
                    }
                    None => {
                        // Saturated: first hop always has a slot's worth.
                        if f.queues[0] < need {
                            f.queues[0] = need;
                        }
                    }
                }
            }

            // Backlogged links: a link contends only when its feeders have a
            // full slot's payload queued (smaller residues wait — a slot is
            // indivisible channel time).
            let backlogged: Vec<bool> = (0..num_links)
                .map(|li| {
                    let Some(rate) = self.link_rate[li] else {
                        return false;
                    };
                    let need = rate.as_mbps() * self.config.slot_seconds;
                    let queued: f64 = feeders[li]
                        .iter()
                        .map(|&(fi, hi)| flows[fi].queues[hi])
                        .sum();
                    queued + 1e-12 >= need
                })
                .collect();

            // Contention resolution.
            let mut granted: Vec<LinkId> = Vec::new();
            match self.config.contention {
                Contention::OrderedCsma => {
                    // Contenders are visited in a uniformly random order;
                    // only backlogged links enter the draw, so the shuffle
                    // cost tracks the offered load, not the topology size.
                    let mut contenders: Vec<usize> =
                        (0..num_links).filter(|&li| backlogged[li]).collect();
                    contenders.shuffle(&mut rng);
                    for &li in &contenders {
                        let link = LinkId::from_index(li);
                        let Ok(tx) = t.link(link).map(|l| l.tx()) else {
                            continue;
                        };
                        let blocked = granted.iter().any(|&g| model.node_hears(tx, g));
                        if !blocked {
                            granted.push(link);
                        }
                    }
                }
                Contention::PPersistent(p) => {
                    for (li, &queued) in backlogged.iter().enumerate() {
                        if !queued {
                            continue;
                        }
                        let link = LinkId::from_index(li);
                        let Ok(tx) = t.link(link).map(|l| l.tx()) else {
                            continue;
                        };
                        if !busy_last_slot[tx.index()] && rng.gen_bool(p.clamp(0.0, 1.0)) {
                            granted.push(link);
                        }
                    }
                }
                Contention::Dcf { .. } => {
                    for (li, &queued) in backlogged.iter().enumerate() {
                        if !queued {
                            backoff[li] = None; // nothing to send: drop state
                            continue;
                        }
                        let link = LinkId::from_index(li);
                        let Ok(tx) = t.link(link).map(|l| l.tx()) else {
                            continue;
                        };
                        let counter = backoff[li].get_or_insert_with(|| rng.gen_range(0..cw[li]));
                        if busy_last_slot[tx.index()] {
                            continue; // counter frozen while the medium is busy
                        }
                        if *counter == 0 {
                            granted.push(link);
                        } else {
                            *counter -= 1;
                        }
                    }
                }
            }

            // Outcomes: SINR capture against the full granted set.
            // Dead links are never backlogged, so every granted link has a
            // live rate; `filter_map` keeps that invariant panic-free.
            let assignment: Vec<(LinkId, Rate)> = granted
                .iter()
                .filter_map(|&l| self.link_rate[l.index()].map(|rate| (l, rate)))
                .collect();
            for &(link, rate) in &assignment {
                let li = link.index();
                link_tx_slots[li] += 1;
                // Per-link capture test: does *this* link survive the
                // concurrent set? (Victims and aggressors are judged
                // independently.)
                let ok = is_capture_ok(model, link, rate, &assignment);
                if matches!(self.config.contention, Contention::Dcf { .. }) {
                    // Post-transmission DCF bookkeeping.
                    if ok {
                        cw[li] = cw_min;
                    } else {
                        cw[li] = (cw[li] * 2).min(cw_max);
                    }
                    backoff[li] = None; // re-draw next slot if still backlogged
                }
                if ok {
                    let cap_mbit = rate.as_mbps() * self.config.slot_seconds;
                    let mut remaining = cap_mbit;
                    for &(fi, hi) in &feeders[li] {
                        if remaining <= 0.0 {
                            break;
                        }
                        let q = flows[fi].queues[hi];
                        let moved = q.min(remaining);
                        if moved > 0.0 {
                            flows[fi].queues[hi] -= moved;
                            remaining -= moved;
                            link_delivered_mbit[li] += moved;
                            if hi + 1 < flows[fi].hops.len() {
                                flows[fi].queues[hi + 1] += moved;
                            } else {
                                flows[fi].delivered_mbit += moved;
                            }
                        }
                    }
                } else {
                    link_collision_slots[li] += 1;
                }
            }

            // Busy accounting (also feeds next slot's carrier-sense state).
            let mut busy = vec![false; num_nodes];
            for &g in &granted {
                for &n in &hearers[g.index()] {
                    busy[n] = true;
                }
            }
            for (n, &b) in busy.iter().enumerate() {
                if b {
                    node_busy_slots[n] += 1;
                }
            }
            busy_last_slot = busy;
        }

        let total = self.config.slots as f64;
        let duration = total * self.config.slot_seconds;
        SimReport {
            node_idle_ratio: node_busy_slots
                .iter()
                .map(|&b| 1.0 - b as f64 / total)
                .collect(),
            link_throughput_mbps: link_delivered_mbit.iter().map(|&m| m / duration).collect(),
            flow_throughput_mbps: flows.iter().map(|f| f.delivered_mbit / duration).collect(),
            link_tx_slots,
            link_collision_slots,
            slots: self.config.slots,
            slot_seconds: self.config.slot_seconds,
        }
    }
}

/// Whether `link` at `rate` survives the concurrent set `assignment`
/// (capture test for one victim; the aggressors' own fates are judged
/// separately via [`LinkRateModel::victim_max_rate`]).
pub(crate) fn is_capture_ok<M: LinkRateModel>(
    model: &M,
    link: LinkId,
    rate: Rate,
    assignment: &[(LinkId, Rate)],
) -> bool {
    model
        .victim_max_rate(link, assignment)
        .is_some_and(|max| rate <= max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awb_phy::Phy;
    use awb_workloads::{chain_model, ScenarioOne};

    #[test]
    fn saturated_single_link_approaches_line_rate() {
        let (m, p) = chain_model(1, 50.0, Phy::paper_default());
        let mut sim = Simulator::new(
            &m,
            SimConfig {
                slots: 5_000,
                ..SimConfig::default()
            },
        );
        let f = sim.add_flow(p, None);
        let report = sim.run(&m);
        assert!((report.flow_throughput_mbps[f] - 54.0).abs() < 1.0);
        assert_eq!(report.collision_ratio(awb_net::LinkId::from_index(0)), 0.0);
    }

    #[test]
    fn rate_limited_flow_delivers_its_demand() {
        let (m, p) = chain_model(1, 50.0, Phy::paper_default());
        let mut sim = Simulator::new(
            &m,
            SimConfig {
                slots: 20_000,
                ..SimConfig::default()
            },
        );
        let f = sim.add_flow(p, Some(10.0));
        let report = sim.run(&m);
        assert!((report.flow_throughput_mbps[f] - 10.0).abs() < 0.5);
        // The link is busy roughly 10/54 of the time.
        let tx_share = report.link_tx_slots[0] as f64 / report.slots as f64;
        assert!((tx_share - 10.0 / 54.0).abs() < 0.05, "tx share {tx_share}");
    }

    #[test]
    fn two_hop_relay_halves_saturated_throughput() {
        let (m, p) = chain_model(2, 50.0, Phy::paper_default());
        let mut sim = Simulator::new(
            &m,
            SimConfig {
                slots: 20_000,
                ..SimConfig::default()
            },
        );
        let f = sim.add_flow(p, None);
        let report = sim.run(&m);
        // The two hops share the channel; ideal is 27. The contention MAC
        // should land in the right ballpark.
        let got = report.flow_throughput_mbps[f];
        assert!(got > 18.0 && got <= 27.5, "throughput {got}");
    }

    #[test]
    fn independent_background_overlaps_only_by_chance() {
        let s1 = ScenarioOne::new();
        let m = s1.model();
        let lambda = 0.4;
        let mut sim = Simulator::new(
            m,
            SimConfig {
                slots: 50_000,
                ..SimConfig::default()
            },
        );
        for flow in s1.background(lambda) {
            sim.add_flow(flow.path().clone(), Some(flow.demand_mbps()));
        }
        let report = sim.run(m);
        let t = m.topology();
        let l3_tx = t.link(s1.links()[2]).unwrap().tx();
        let idle = report.node_idle_ratio[l3_tx.index()];
        // Independent λ-loads overlap with probability ≈ λ², so the
        // observer's idle ≈ (1-λ)² = 0.36, well below the optimal 0.6.
        assert!(idle < 0.55, "idle {idle}");
        assert!(idle > 0.2, "idle {idle}");
        // Background links deliver their demand regardless.
        for (i, f) in report.flow_throughput_mbps.iter().enumerate() {
            assert!((f - lambda * 54.0).abs() < 1.5, "flow {i}: {f}");
        }
    }

    #[test]
    fn conflicting_links_share_the_channel() {
        // Two saturated links that hear each other: throughputs sum to ~54.
        let s1 = ScenarioOne::new();
        let m = s1.model();
        let t = m.topology();
        let [_, _, l3] = s1.links();
        let p3 = awb_net::Path::new(t, vec![l3]).unwrap();
        let p1 = awb_net::Path::new(t, vec![s1.links()[0]]).unwrap();
        let mut sim = Simulator::new(
            m,
            SimConfig {
                slots: 30_000,
                ..SimConfig::default()
            },
        );
        let a = sim.add_flow(p3, None);
        let b = sim.add_flow(p1, None);
        let report = sim.run(m);
        let total = report.flow_throughput_mbps[a] + report.flow_throughput_mbps[b];
        assert!(
            (total - 54.0).abs() < 3.0,
            "sum {total} should be near line rate"
        );
    }

    #[test]
    fn p_persistent_contention_loses_to_collisions() {
        // Two saturated, mutually-hearing links: ordered CSMA is
        // collision-free; p-persistent at p = 0.5 collides whenever both
        // fire, so total goodput drops.
        let s1 = ScenarioOne::new();
        let m = s1.model();
        let t = m.topology();
        let p1 = awb_net::Path::new(t, vec![s1.links()[0]]).unwrap();
        let p3 = awb_net::Path::new(t, vec![s1.links()[2]]).unwrap();
        let run = |contention| {
            let mut sim = Simulator::new(
                m,
                SimConfig {
                    slots: 20_000,
                    contention,
                    ..SimConfig::default()
                },
            );
            let a = sim.add_flow(p1.clone(), None);
            let b = sim.add_flow(p3.clone(), None);
            let r = sim.run(m);
            (
                r.flow_throughput_mbps[a] + r.flow_throughput_mbps[b],
                r.link_collision_slots.iter().sum::<u64>(),
            )
        };
        let (ideal, ideal_coll) = run(Contention::OrderedCsma);
        let (lossy, lossy_coll) = run(Contention::PPersistent(0.5));
        assert_eq!(ideal_coll, 0);
        assert!(lossy_coll > 0, "p-persistent should collide");
        assert!(
            lossy < ideal - 2.0,
            "p-persistent {lossy} should lose goodput vs {ideal}"
        );
    }

    #[test]
    fn dcf_backoff_outperforms_p_persistent_under_contention() {
        // Four saturated mutually-hearing links: DCF's exponential backoff
        // should waste fewer slots on collisions than p = 0.5 persistence.
        let mut t = awb_net::Topology::new();
        let mut links = Vec::new();
        let mut nodes = Vec::new();
        for i in 0..4 {
            let a = t.add_node(f64::from(i) * 10.0, 0.0);
            let b = t.add_node(f64::from(i) * 10.0 + 5.0, 0.0);
            nodes.push(a);
            nodes.push(b);
            links.push(t.add_link(a, b).unwrap());
        }
        let mut builder = awb_net::DeclarativeModel::builder(t);
        for &l in &links {
            builder = builder.alone_rates(l, &[Rate::from_mbps(54.0)]);
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                builder = builder.conflict_all(links[i], links[j]);
            }
        }
        // Everyone hears everyone (a single collision domain).
        for &n in &nodes {
            for &l in &links {
                builder = builder.hears(n, l);
            }
        }
        let m = builder.build();
        let paths: Vec<awb_net::Path> = links
            .iter()
            .map(|&l| awb_net::Path::new(m.topology(), vec![l]).unwrap())
            .collect();
        let run = |contention| {
            let mut sim = Simulator::new(
                &m,
                SimConfig {
                    slots: 20_000,
                    contention,
                    ..SimConfig::default()
                },
            );
            for p in &paths {
                sim.add_flow(p.clone(), None);
            }
            let r = sim.run(&m);
            let goodput: f64 = r.flow_throughput_mbps.iter().sum();
            let collisions: u64 = r.link_collision_slots.iter().sum();
            (goodput, collisions)
        };
        let (g_dcf, c_dcf) = run(Contention::Dcf {
            cw_min: 16,
            cw_max: 1024,
        });
        let (g_pp, c_pp) = run(Contention::PPersistent(0.5));
        assert!(
            g_dcf > g_pp,
            "DCF goodput {g_dcf} should beat p-persistent {g_pp}"
        );
        assert!(
            c_dcf < c_pp,
            "DCF collisions {c_dcf} should undercut p-persistent {c_pp}"
        );
        // With one packet per slot the per-packet overhead (DIFS slot +
        // residual backoff) is proportionally large; DCF still must clear a
        // sane floor of the 54 Mbps channel.
        assert!(g_dcf > 0.15 * 54.0, "DCF goodput {g_dcf} too low");
    }

    #[test]
    fn p_persistent_single_link_scales_with_p() {
        let (m, p) = chain_model(1, 50.0, Phy::paper_default());
        let run = |prob| {
            let mut sim = Simulator::new(
                &m,
                SimConfig {
                    slots: 20_000,
                    contention: Contention::PPersistent(prob),
                    ..SimConfig::default()
                },
            );
            let f = sim.add_flow(p.clone(), None);
            sim.run(&m).flow_throughput_mbps[f]
        };
        // A lone link with attempt probability p transmits ~p of slots
        // once its own busy slots gate it: steady state share p(1-share)...
        // just assert monotonicity and sane ranges.
        let lo = run(0.2);
        let hi = run(0.9);
        assert!(lo < hi);
        assert!(hi <= 54.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let (m, _) = chain_model(1, 50.0, Phy::paper_default());
        let _ = Simulator::new(
            &m,
            SimConfig {
                slots: 0,
                ..SimConfig::default()
            },
        );
    }
}
